//! The paper's motivating scenario (Figure 1): *mobile phone brands*.
//!
//! Positive seeds alone are ambiguous — {Motorola, Microsoft Mobile,
//! Google} could mean "Android brands" or "American brands". This example
//! shows how negative seeds disambiguate: the same positive seeds with two
//! different negative seed sets produce two different expansions.
//!
//! ```sh
//! cargo run --release --example phone_brands
//! ```

use ultrawiki::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small()).expect("world generation");

    // The generated analogue of "Mobile phone brands": two attributes,
    // <loc-continent> and <status>.
    let (class_idx, class) = world
        .classes
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == "Mobile phone brands")
        .expect("phone brand class exists");
    println!(
        "fine-grained class '{}': {} entities, attributes {:?}",
        class.name,
        class.entities.len(),
        class
            .attributes
            .iter()
            .map(|&a| world.attributes[a.index()].name.clone())
            .collect::<Vec<_>>()
    );

    // Find two ultra classes over this fine class with *different* negative
    // constraints — the "same positives, different negatives" contrast.
    let ultras: Vec<&UltraClass> = world
        .ultra_classes
        .iter()
        .filter(|u| u.fine.index() == class_idx)
        .collect();
    assert!(ultras.len() >= 2, "need at least two ultra classes");

    let ret = RetExpan::train(&world, EncoderConfig::default(), RetExpanConfig::default());
    for u in ultras.iter().take(2) {
        let attr_name = |a: ultra_core::AttributeId| world.attributes[a.index()].name.clone();
        println!("\n== {}", u.describe(&class.name, attr_name));
        let q = &u.queries[0];
        let names = |ids: &[EntityId]| {
            ids.iter()
                .map(|&e| world.entity(e).name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("  pos seeds: {}", names(&q.pos_seeds));
        println!("  neg seeds: {}", names(&q.neg_seeds));
        let out = ret.expand(&world, q);
        let top: Vec<String> = out
            .entities()
            .take(8)
            .map(|e| {
                let tag = if u.pos_targets.contains(&e) {
                    "+"
                } else if u.neg_targets.contains(&e) {
                    "-"
                } else {
                    "."
                };
                format!("{}{}", tag, world.entity(e).name)
            })
            .collect();
        println!("  expansion: {}", top.join(", "));
        let hits = out
            .entities()
            .take(10)
            .filter(|e| u.pos_targets.contains(e))
            .count();
        println!("  positive targets in top-10: {hits}");
    }

    println!(
        "\nThe same encoder served both queries; the negative seeds steered \
         each expansion toward its own ultra-fine-grained class."
    );
}

//! Quickstart: generate a world, train both frameworks, expand one query,
//! and score the result with the paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ultrawiki::prelude::*;

fn main() {
    // 1. A deterministic UltraWiki-style world (small profile: 10
    //    fine-grained classes, ~2k candidate entities, ~12k sentences).
    let world = World::generate(WorldConfig::small()).expect("world generation");
    println!(
        "world: {} entities, {} sentences, {} ultra-fine-grained classes",
        world.num_entities(),
        world.corpus.len(),
        world.ultra_classes.len()
    );

    // 2. Pick one query: positive + negative seeds of the same fine class.
    let (ultra, query) = world.queries().next().expect("at least one query");
    let fine = &world.classes[ultra.fine.index()];
    println!("\nquery on '{}':", fine.name);
    let names = |ids: &[EntityId]| {
        ids.iter()
            .map(|&e| world.entity(e).name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("  positive seeds: {}", names(&query.pos_seeds));
    println!("  negative seeds: {}", names(&query.neg_seeds));

    // 3. RetExpan: representation → expansion → re-ranking.
    let ret = RetExpan::train(&world, EncoderConfig::default(), RetExpanConfig::default());
    let expansion = ret.expand(&world, query);
    println!("\nRetExpan top-10:");
    for (i, e) in expansion.entities().take(10).enumerate() {
        let mark = if ultra.pos_targets.contains(&e) {
            "+++"
        } else if ultra.neg_targets.contains(&e) {
            "---"
        } else {
            "   "
        };
        println!("  {:2} {mark} {}", i + 1, world.entity(e).name);
    }

    // 4. GenExpan: constrained generation → selection → re-ranking.
    let gen = GenExpan::train(&world, GenExpanConfig::default());
    let expansion = gen.expand(&world, ultra, query);
    println!("\nGenExpan top-10:");
    for (i, e) in expansion.entities().take(10).enumerate() {
        let mark = if ultra.pos_targets.contains(&e) {
            "+++"
        } else if ultra.neg_targets.contains(&e) {
            "---"
        } else {
            "   "
        };
        println!("  {:2} {mark} {}", i + 1, world.entity(e).name);
    }

    // 5. Full evaluation over every query (Table 2 metrics).
    let report = evaluate_method(&world, |_u, q| ret.expand(&world, q));
    println!(
        "\nRetExpan over all {} queries: PosAvg {:.2}  NegAvg {:.2}  CombAvg {:.2}",
        report.num_queries,
        report.avg_pos(),
        report.avg_neg(),
        report.avg_comb()
    );
}

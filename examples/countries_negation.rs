//! "Unwanted" semantics (the paper's second motivating issue): *countries
//! not on a given continent* cannot be expressed by enumerating positives,
//! but one negative seed set expresses it directly.
//!
//! Demonstrates the `A^pos ≠ A^neg` regime (Table 4's hard case) with
//! GenExpan, and measures how much the negative-seed re-ranking of the
//! expansion helps.
//!
//! ```sh
//! cargo run --release --example countries_negation
//! ```

use ultrawiki::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small()).expect("world generation");
    // Pick an ultra class over 'Countries' whose positive and negative
    // attributes differ (pure "unwanted" semantics).
    let u = world
        .ultra_classes
        .iter()
        .find(|u| world.classes[u.fine.index()].name == "Countries" && !u.same_attribute_sets())
        .expect("a Countries class with A_pos != A_neg");
    let attr_name = |a: ultra_core::AttributeId| world.attributes[a.index()].name.clone();
    println!("== {}", u.describe("Countries", attr_name));
    println!(
        "|P| = {} positive targets, |N| = {} negative (unwanted) targets",
        u.pos_targets.len(),
        u.neg_targets.len()
    );

    let gen = GenExpan::train(&world, GenExpanConfig::default());
    let mut gen_no_rerank = GenExpan::train(
        &world,
        GenExpanConfig {
            rerank: false,
            ..GenExpanConfig::default()
        },
    );
    gen_no_rerank.config.rerank = false;

    for q in &u.queries {
        let with = gen.expand(&world, u, q);
        let without = gen_no_rerank.expand(&world, u, q);
        let neg_rank_sum = |list: &RankedList| -> f64 {
            let ranks: Vec<usize> = u
                .neg_targets
                .iter()
                .filter_map(|e| list.rank_of(*e))
                .collect();
            if ranks.is_empty() {
                f64::INFINITY
            } else {
                ranks.iter().sum::<usize>() as f64 / ranks.len() as f64
            }
        };
        println!(
            "query: mean rank of unwanted entities {:.1} (reranked) vs {:.1} (plain); lower rank = nearer the top = worse",
            neg_rank_sum(&with),
            neg_rank_sum(&without)
        );
    }

    // Aggregate over all A_pos != A_neg Countries queries.
    let report = evaluate_method_filtered(
        &world,
        |uc| world.classes[uc.fine.index()].name == "Countries" && !uc.same_attribute_sets(),
        |uc, q| gen.expand(&world, uc, q),
    );
    println!(
        "\nGenExpan on 'Countries' with A_pos != A_neg ({} queries): \
         PosMAP avg {:.2}, NegMAP avg {:.2}, CombMAP avg {:.2}",
        report.num_queries,
        report.avg_pos_map(),
        report.avg_neg_map(),
        report.avg_comb_map()
    );
}

//! Section 6.5's exploration: the retrieval-based and generation-based
//! paradigms reinforce each other. RetExpan recalls a wide candidate pool;
//! GenExpan re-expands inside it (and vice versa).
//!
//! ```sh
//! cargo run --release --example paradigm_interaction
//! ```

use ultrawiki::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small()).expect("world generation");
    let ret = RetExpan::train(&world, EncoderConfig::default(), RetExpanConfig::default());
    let gen = GenExpan::train(&world, GenExpanConfig::default());

    // Wide-recall RetExpan: no rerank, big top-k.
    let mut recall = RetExpan::from_encoder(&world, ret.encoder.clone(), RetExpanConfig::default());
    recall.config.top_k = world.num_entities() / 10;
    recall.config.rerank = false;

    let solo_ret = evaluate_method(&world, |_u, q| ret.expand(&world, q));
    let solo_gen = evaluate_method(&world, |u, q| gen.expand(&world, u, q));
    let composed = evaluate_method(&world, |u, q| {
        let pool: Vec<EntityId> = recall
            .preliminary_list(&world, q, None)
            .entities()
            .collect();
        let pooled = GenExpan::train_with_pool(&world, GenExpanConfig::default(), Some(pool));
        pooled.expand(&world, u, q)
    });
    let composed_rev = evaluate_method(&world, |u, q| {
        let pool: Vec<EntityId> = gen
            .expand(&world, u, q)
            .entities()
            .filter(|e| e.index() < world.num_entities())
            .collect();
        ret.expand_restricted(&world, q, Some(&pool))
    });

    println!("CombMAP avg over {} queries:", solo_ret.num_queries);
    println!("  RetExpan alone        {:.2}", solo_ret.avg_comb_map());
    println!("  GenExpan alone        {:.2}", solo_gen.avg_comb_map());
    println!("  RetExpan -> GenExpan  {:.2}", composed.avg_comb_map());
    println!("  GenExpan -> RetExpan  {:.2}", composed_rev.avg_comb_map());
    println!(
        "\nEach paradigm contributes what the other lacks: dense-similarity \
         recall (retrieval) and knowledge-guided precision (generation)."
    );
}

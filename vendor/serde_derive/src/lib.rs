//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the item by walking raw
//! [`proc_macro::TokenTree`]s and emits code by formatting a source string.
//! Supported shapes — exactly what the workspace uses:
//!
//! - structs with named fields (serialized as an object in field order),
//! - tuple structs (newtypes serialize transparently as the inner value;
//!   wider tuples as an array),
//! - enums with only unit variants (serialized as the variant-name string).
//!
//! Generics, data-carrying enum variants, and `#[serde(...)]` attributes are
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! literal"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde_derive stub: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive stub: expected item name, got {other:?}"
            ))
        }
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is not supported"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            } else {
                Ok(Shape::UnitEnum {
                    name,
                    variants: parse_unit_variants(&body)?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Shape::TupleStruct {
                name,
                arity: count_tuple_fields(&body),
            })
        }
        other => Err(format!(
            "serde_derive stub: unsupported {kind} body for `{name}`: {other:?}"
        )),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub`/`pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Parses `field: Type, ...` bodies into the ordered field-name list.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => {
                return Err(format!(
                    "serde_derive stub: expected field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive stub: expected `:`, got {other:?}")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = body.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // the comma (or one past the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Counts comma-separated fields of a tuple struct body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_field_token = false;
    for tok in body {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_field_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_field_token = true;
    }
    if !saw_field_token {
        count -= 1; // trailing comma
    }
    count
}

/// Parses an enum body, requiring every variant to be a unit variant.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive stub: expected variant, got {other:?}"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive stub: variant `{name}` carries data; only unit variants are supported"
                ))
            }
            other => return Err(format!("serde_derive stub: unexpected token {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::de::seq_field(v, {i})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         Ok({name}({items}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::de::Error::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::de::Error::mismatch(\"string\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

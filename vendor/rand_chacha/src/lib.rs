//! Offline vendored ChaCha RNG.
//!
//! Implements the actual ChaCha stream cipher keystream (D. J. Bernstein)
//! as a random number generator, exposed under the same names the workspace
//! imports from the real `rand_chacha` crate. Output is a genuine ChaCha12
//! keystream — high statistical quality, splittable by seed, portable across
//! platforms — though stream positions are not guaranteed bit-compatible
//! with upstream `rand_chacha` (this workspace only requires internal
//! reproducibility).

use rand::{RngCore, SeedableRng};

/// ChaCha with 12 rounds: the quality/speed point `rand` chose for `StdRng`.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 8 rounds (faster, still far beyond statistical needs here).
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 20 rounds (the original cipher strength).
pub type ChaCha20Rng = ChaChaRng<10>;

/// A ChaCha keystream generator with `DOUBLE_ROUNDS` double-rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Cipher input state: constants, 256-bit key (the seed), counter, nonce.
    state: [u32; 16],
    /// One generated 64-byte block, consumed word by word.
    block: [u32; 16],
    /// Next unconsumed word index in `block`; 16 means "regenerate".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13 (words 14–15 stay the nonce).
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            for (d, s) in chunk.iter_mut().zip(bytes) {
                *d = s;
            }
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0u32; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 8439 §2.3.2 test vector, run at 20 rounds: verifies the core
    /// permutation is the real ChaCha, not an approximation.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        // RFC state uses counter=1 and nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        rng.state[12] = 1;
        rng.state[13] = 0x0900_0000;
        rng.state[14] = 0x4a00_0000;
        rng.state[15] = 0;
        rng.refill();
        assert_eq!(rng.block[0], 0xe4e7_f110);
        assert_eq!(rng.block[1], 0x1559_3bd1);
        assert_eq!(rng.block[15], 0x4e3c_50a2);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(123);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 set; allow ±3%.
        assert!((31_000..33_000).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline vendored stub of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements exactly the API subset the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). Algorithms are deterministic and portable but are **not**
//! bit-compatible with upstream `rand` — reproducibility within this
//! workspace is the contract, not cross-crate stream equality.
//!
//! `thread_rng`/`from_entropy` are deliberately omitted: the workspace's
//! `ultra-lint` forbids unseeded randomness outside tests, and not vendoring
//! the constructors makes the rule unrepresentable rather than merely
//! checked.

pub mod seq;

/// Low-level random number generation: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Implemented generically over [`SampleUniform`] (as in upstream `rand`) so
/// that integer-literal ranges unify with the surrounding type context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a bounded interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = widening_reduce(rng.next_u64() as u128, span);
                (lo as i128 + draw as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = widening_reduce(rng.next_u64() as u128, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform 64-bit draw onto `[0, span)` by 128-bit multiply-shift
/// (Lemire reduction without rejection: the bias is < 2⁻⁶⁴·span, far below
/// anything observable in this workspace, and the mapping stays portable).
#[inline]
fn widening_reduce(draw: u128, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (draw * span) >> 64
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = <$t>::sample_standard(rng);
                lo + (hi - lo) * u
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // The endpoint has measure zero; the half-open draw suffices.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64 so that
    /// consecutive small seeds map to well-separated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: decent mixing for the statistical assertions.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(w) {
                    *b = s;
                }
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Counter(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should appear");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }
}

//! Sequence-related randomness: shuffling and element choice.

use crate::{Rng, RngCore};

/// Extension trait on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(w) {
                    *b = s;
                }
            }
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Lcg::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        a.shuffle(&mut Lcg::seed_from_u64(42));
        b.shuffle(&mut Lcg::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_on_empty_is_none() {
        let v: Vec<u32> = vec![];
        assert_eq!(v.choose(&mut Lcg::seed_from_u64(1)), None);
    }
}

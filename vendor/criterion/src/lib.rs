//! Offline vendored micro-benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! `criterion` API subset the workspace's benches use: [`Criterion`] with
//! `sample_size`, `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Reporting is a simple min/median/mean line per
//! benchmark — no statistical analysis, plots, or baselines.

use std::time::Instant;

/// How batched inputs are grouped between measurements (accepted for API
/// compatibility; this harness always materializes one input per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver: runs registered functions and prints timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark closure under `id` and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples_ns: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<32} (no samples)");
            return;
        }
        self.samples_ns.sort_unstable();
        let n = self.samples_ns.len();
        let min = self.samples_ns[0];
        let median = self.samples_ns[n / 2];
        let mean = self.samples_ns.iter().sum::<u128>() / n as u128;
        println!(
            "{id:<32} min {:>12}  median {:>12}  mean {:>12}  ({n} samples)",
            format_ns(min),
            format_ns(median),
            format_ns(mean),
        );
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group as a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut total = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    total = total.wrapping_add(x);
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert!(format_ns(1_500).contains("µs"));
        assert!(format_ns(2_000_000).contains("ms"));
        assert!(format_ns(3_000_000_000).contains(" s"));
    }

    criterion_group!(simple_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("group_noop", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        simple_group();
    }
}

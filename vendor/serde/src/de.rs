//! Deserialization error type and helpers used by derive-generated code.

use crate::value::Value;
use crate::Deserialize;
use std::fmt;

/// A structural deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Creates a "expected X, got Y" error.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self::new(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Extracts and deserializes a named struct field.
///
/// A missing key is treated as `Value::Null`, which lets `Option` fields
/// default to `None` while all other types report a mismatch.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => {
            let entry = v.get(name).unwrap_or(&Value::Null);
            T::from_value(entry).map_err(|e| Error::new(format!("field `{name}`: {e}")))
        }
        other => Err(Error::mismatch("object", other)),
    }
}

/// Extracts and deserializes the `idx`-th element of a tuple-struct array.
pub fn seq_field<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => {
            let entry = items
                .get(idx)
                .ok_or_else(|| Error::new(format!("missing tuple element {idx}")))?;
            T::from_value(entry).map_err(|e| Error::new(format!("tuple element {idx}: {e}")))
        }
        other => Err(Error::mismatch("array", other)),
    }
}

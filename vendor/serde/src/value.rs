//! The serialization data model: a JSON-shaped value tree.

/// A dynamically typed serialized value.
///
/// Objects preserve insertion order (like `serde_json` with its
/// `preserve_order` feature), which keeps derive-generated struct output —
/// and therefore every exported artifact — deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or explicitly signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// A numeric view as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// A numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array element lookup by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|items| items.get(idx))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(-3).as_i64(), Some(-3));
        assert_eq!(Value::Int(-3).as_u64(), None);
        assert_eq!(Value::UInt(7).as_f64(), Some(7.0));
    }
}

//! Offline vendored stub of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! minimal serialization framework the workspace needs. It deliberately
//! replaces serde's visitor-based data model with a much simpler one: every
//! [`Serialize`] type renders itself to a [`value::Value`] tree, and every
//! [`Deserialize`] type reconstructs itself from one. `serde_json` (also
//! vendored) turns `Value` trees into JSON text and back.
//!
//! The derive macros re-exported here are implemented in `serde_derive`
//! without `syn`/`quote` (see that crate) and support exactly the shapes
//! this workspace uses: named-field structs, tuple structs, and unit-variant
//! enums.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a `Value`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value, or reports a structural mismatch.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Maps serialize as objects with stringified keys, in sorted key order so
/// that `HashMap` serialization is deterministic.
impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::mismatch("bool", other)),
        }
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(de::Error::mismatch("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => return Err(de::Error::mismatch("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::mismatch("float", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::mismatch("array", other)),
        }
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::new(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(de::Error::mismatch(
                        concat!("array of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5; 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f32), (3, 4.5)];
        let round: Vec<(u32, f32)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        let back: [f64; 4] = <[f64; 4]>::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_value() {
            Value::Object(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::UInt(1)).is_err());
    }
}

//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::Value;

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape (cursor on the `u`),
    /// including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // the `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.eat_keyword("\\u") {
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("invalid float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| self.err(format!("invalid integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, -2, 3.5, null, true], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str().unwrap(), "d");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""line\n\t\"q\" é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\n\t\"q\" é 😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_variants() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }
}

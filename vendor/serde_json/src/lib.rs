//! Offline vendored stub of `serde_json`: JSON text over the vendored
//! `serde` stub's [`Value`] data model.
//!
//! Supports the workspace's API surface: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`to_writer_pretty`], [`from_str`], [`from_slice`], [`Value`],
//! and [`Error`]. Writing is
//! deterministic (object order is preserved; `HashMap`s are sorted by the
//! serde stub before reaching this crate). Non-finite floats serialize as
//! `null`, matching upstream `serde_json`.

mod parse;

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;

/// A JSON serialization/deserialization error.
#[derive(Debug)]
pub enum Error {
    /// An I/O failure while writing.
    Io(std::io::Error),
    /// A syntax error while parsing, with byte offset.
    Syntax { offset: usize, message: String },
    /// A structural mismatch while deserializing a parsed value.
    Data(serde::de::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "JSON io error: {e}"),
            Error::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            Error::Data(e) => write!(f, "JSON data error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value).map_err(Error::Data)
}

/// Parses JSON bytes (must be UTF-8) into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::Syntax {
        offset: e.valid_up_to(),
        message: "invalid UTF-8".to_string(),
    })?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, level, ('[', ']'), |o, x, l| {
                write_value(o, x, indent, l)
            })
        }
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, x), l| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, l);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on f64 prints the shortest representation that round-trips,
        // but renders integral floats without a fraction; add `.0` so the
        // value re-parses as a float.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; upstream serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("α \"quoted\"\n".into())),
            (
                "scores".into(),
                Value::Array(vec![Value::Float(1.5), Value::UInt(2), Value::Int(-3)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "round-trip failed for: {text}");
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: Value = from_str("2.0").unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn byte_apis_round_trip() {
        let bytes = to_vec(&vec![1u32, 2]).unwrap();
        assert_eq!(bytes, b"[1,2]");
        let back: Vec<u32> = from_slice(&bytes).unwrap();
        assert_eq!(back, vec![1, 2]);
        assert!(
            from_slice::<Value>(&[0xff, 0xfe]).is_err(),
            "non-UTF-8 input"
        );
    }

    #[test]
    fn writer_api_works() {
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &vec![1u32, 2]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "[\n  1,\n  2\n]");
    }
}

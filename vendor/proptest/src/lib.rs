//! Offline vendored property-testing harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the `proptest` API subset the workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, the [`Strategy`] trait with
//! `.prop_map`, range and tuple strategies, `prop::collection::{vec,
//! hash_set}`, and `&str` character-class patterns like `"[a-z]{1,8}"`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! sampled inputs via the panic message of the underlying assertion), and a
//! fixed deterministic case count seeded per test name, so CI failures
//! always reproduce locally.

use std::ops::Range;

/// Number of cases each property runs.
pub const CASES: u32 = 64;

/// Deterministic RNG driving strategy sampling (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, so each property gets a distinct but
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            state ^= *b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `&str` strategies interpret a small pattern language: a sequence of
/// literal characters or character classes `[a-z0-9]`, each optionally
/// followed by a `{min,max}` repetition. This covers the regex-style
/// patterns the workspace's properties use.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let (lo, hi) = atom.reps;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    reps: (usize, usize),
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "inverted class range in {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let reps = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                None => {
                    let n = body.trim().parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        atoms.push(Atom {
            chars: alphabet,
            reps,
        });
    }
    atoms
}

/// Strategy combinators namespaced like upstream `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// Vectors of `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Hash sets of `element`; up to `size` insertion attempts, so the
        /// result can be smaller than `size.start` under collisions (upstream
        /// proptest retries; for these tests the weaker contract suffices).
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        /// Strategy returned by [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `CASES` sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for _ in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking; panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_patterns_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..500 {
            let x = crate::Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let s = crate::Strategy::sample(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #[test]
        fn macro_generates_runnable_tests(
            xs in prop::collection::vec(0u32..100, 0..20),
            set in prop::collection::hash_set(0u32..10, 0..8),
            f in -1.0f64..1.0,
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(set.len() < 8);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }
}

//! Property-based tests of the core data structures and metrics.

use proptest::prelude::*;
use std::collections::HashSet;
use ultrawiki::core::{segmented_rerank, EntityId, RankedList, TokenId};
use ultrawiki::eval::{average_precision_at, precision_at};
use ultrawiki::lm::{NgramLm, Smoothing};
use ultrawiki::text::{Bm25Index, Bm25Params, PrefixTrie, Tokenizer, Vocab};

fn entity_scores() -> impl Strategy<Value = Vec<(EntityId, f32)>> {
    prop::collection::vec((0u32..500, -100.0f32..100.0), 0..120)
        .prop_map(|v| v.into_iter().map(|(e, s)| (EntityId::new(e), s)).collect())
}

proptest! {
    #[test]
    fn ranked_list_is_sorted_and_unique(scores in entity_scores()) {
        let list = RankedList::from_scores(scores.clone());
        // Non-increasing scores.
        let entries = list.entries();
        prop_assert!(entries.windows(2).all(|w| w[0].1 >= w[1].1 || w[0].1.is_nan() || w[1].1.is_nan()));
        // Unique entities, all from the input.
        let mut seen = HashSet::new();
        for (e, _) in entries {
            prop_assert!(seen.insert(*e));
            prop_assert!(scores.iter().any(|(x, _)| x == e));
        }
    }

    #[test]
    fn truncate_and_without_preserve_order(scores in entity_scores(), k in 0usize..50) {
        let list = RankedList::from_scores(scores);
        let truncated = list.truncated(k);
        prop_assert!(truncated.len() <= k);
        let full: Vec<_> = list.entities().collect();
        let cut: Vec<_> = truncated.entities().collect();
        prop_assert_eq!(&full[..cut.len()], &cut[..]);
    }

    #[test]
    fn precision_and_ap_are_bounded(
        scores in entity_scores(),
        relevant in prop::collection::hash_set(0u32..500, 0..60),
        k in 1usize..120,
    ) {
        let list = RankedList::from_scores(scores);
        let relevant: HashSet<EntityId> = relevant.into_iter().map(EntityId::new).collect();
        let p = precision_at(&list, &relevant, k);
        let ap = average_precision_at(&list, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p), "P@K out of range: {p}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap), "AP@K out of range: {ap}");
        // AP of a perfect prefix equals 1.
        if !relevant.is_empty() {
            let perfect = RankedList::from_scores(
                relevant.iter().enumerate().map(|(i, &e)| (e, 100.0 - i as f32)).collect(),
            );
            let ap_perfect = average_precision_at(&perfect, &relevant, k);
            prop_assert!(ap_perfect > 1.0 - 1e-9);
        }
    }

    #[test]
    fn segmented_rerank_is_a_permutation(
        scores in entity_scores(),
        seg in 0usize..40,
        salt in 0u32..1000,
    ) {
        let list = RankedList::from_scores(scores);
        let reranked = segmented_rerank(&list, seg, |e| ((e.0.wrapping_mul(salt)) % 97) as f32);
        prop_assert_eq!(reranked.len(), list.len());
        let mut a: Vec<_> = list.entities().collect();
        let mut b: Vec<_> = reranked.entities().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "rerank must permute, not add/remove");
    }

    #[test]
    fn segment_boundaries_are_respected(
        scores in entity_scores(),
        seg in 1usize..30,
    ) {
        // Every entity stays within its original segment.
        let list = RankedList::from_scores(scores);
        let reranked = segmented_rerank(&list, seg, |e| (e.0 % 13) as f32);
        for (old_rank, e) in list.entities().enumerate() {
            let new_rank = reranked.rank_of(e).unwrap();
            prop_assert_eq!(old_rank / seg, new_rank / seg, "entity crossed a segment");
        }
    }

    #[test]
    fn trie_completes_exactly_what_was_inserted(
        names in prop::collection::vec(prop::collection::vec(0u32..40, 1..5), 1..40)
    ) {
        let mut trie = PrefixTrie::new();
        let mut last: std::collections::HashMap<Vec<u32>, u32> = Default::default();
        for (i, name) in names.iter().enumerate() {
            let toks: Vec<TokenId> = name.iter().map(|&t| TokenId::new(t)).collect();
            trie.insert(&toks, EntityId::new(i as u32));
            last.insert(name.clone(), i as u32);
        }
        for (name, id) in &last {
            let toks: Vec<TokenId> = name.iter().map(|&t| TokenId::new(t)).collect();
            prop_assert_eq!(trie.complete(&toks), Some(EntityId::new(*id)));
            // Every proper prefix is a valid path.
            for cut in 1..toks.len() {
                prop_assert!(trie.is_valid_prefix(&toks[..cut]));
            }
        }
        prop_assert_eq!(trie.len(), last.len());
    }

    #[test]
    fn ngram_distributions_sum_to_one(
        docs in prop::collection::vec(prop::collection::vec(0u32..12, 1..15), 1..10),
        order in 1usize..4,
        ctx in prop::collection::vec(0u32..12, 0..4),
        discount in 0.1f64..0.9,
    ) {
        for smoothing in [Smoothing::WittenBell, Smoothing::AbsoluteDiscount(discount)] {
            let mut lm = NgramLm::new(order, smoothing, 12);
            let docs_t: Vec<Vec<TokenId>> = docs
                .iter()
                .map(|d| d.iter().map(|&t| TokenId::new(t)).collect())
                .collect();
            lm.train(docs_t.iter().map(Vec::as_slice));
            let ctx_t: Vec<TokenId> = ctx.iter().map(|&t| TokenId::new(t)).collect();
            let sum: f64 = (0..12).map(|w| lm.prob(&ctx_t, TokenId::new(w))).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "{smoothing:?}: sums to {sum}");
        }
    }

    #[test]
    fn bm25_scores_are_finite_and_ranked(
        docs in prop::collection::vec(prop::collection::vec(0u32..30, 1..12), 1..25),
        query in prop::collection::vec(0u32..30, 1..6),
    ) {
        let docs_t: Vec<Vec<TokenId>> = docs
            .iter()
            .map(|d| d.iter().map(|&t| TokenId::new(t)).collect())
            .collect();
        let index = Bm25Index::build(docs_t.iter().map(Vec::as_slice), Bm25Params::default());
        let q: Vec<TokenId> = query.iter().map(|&t| TokenId::new(t)).collect();
        let hits = index.search(&q, 10);
        prop_assert!(hits.len() <= 10);
        prop_assert!(hits.iter().all(|(d, s)| *d < docs.len() && s.is_finite() && *s >= 0.0));
        prop_assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn tokenizer_intern_then_encode_round_trips(words in prop::collection::vec("[a-z]{1,8}", 1..12)) {
        let text = words.join(" ");
        let mut vocab = Vocab::new();
        let interned = Tokenizer::encode_interning(&mut vocab, &text);
        let frozen = Tokenizer::encode(&vocab, &text);
        prop_assert_eq!(interned, frozen, "frozen encode must agree after interning");
    }
}

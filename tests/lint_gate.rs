//! Tier-1 gate: the workspace must be `ultra-lint`-clean.
//!
//! The same check also runs as `crates/lint/tests/workspace_clean.rs`
//! (under `cargo test --workspace`) and as `cargo run -p ultra-lint`; this
//! copy rides the root package's test suite so a plain `cargo test` from
//! the repository root cannot pass with un-allowlisted violations.

#[test]
fn workspace_has_no_lint_violations() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = ultra_lint::run_workspace(root).expect("ultra-lint run");
    assert!(
        report.files_scanned > 50,
        "expected to scan the whole workspace, saw only {} files",
        report.files_scanned
    );
    assert!(
        !report.failed(true),
        "ultra-lint violations:\n{}\nstale allowlist entries:\n{}",
        report
            .violations
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        report.stale_allows.join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries:\n{}",
        report.stale_allows.join("\n")
    );
    // The call-graph resolver leaves method calls and std/vendored paths
    // unresolved by design, but the count should stay close to today's
    // measurement (~3930 on this tree; ceiling is measured + 10%). The
    // typed-receiver resolution layer classifies foreign-type method calls
    // as external rather than unresolved, so a jump past this ceiling means
    // name resolution regressed and the interprocedural rules (L7, L10-L14)
    // are silently going blind.
    assert!(
        report.unresolved_calls < 4325,
        "unresolved call count exploded: {} (was ~3930); \
         did callgraph resolution regress?",
        report.unresolved_calls
    );
}

//! Thread-count invariance: the `ultra-par` execution layer must produce
//! *byte-identical* output at every worker count, not merely statistically
//! equivalent output. Chunk boundaries are a pure function of input length
//! and reductions combine in a fixed tree order, so `threads=1` and
//! `threads=8` walk the same arithmetic — these tests pin that contract at
//! the pipeline level, where a violation would actually corrupt results.

use ultrawiki::embed::contrastive::train_contrastive;
use ultrawiki::prelude::*;

fn world() -> World {
    World::generate(WorldConfig::tiny().with_seed(42)).expect("world generation")
}

fn quick_encoder() -> EncoderConfig {
    EncoderConfig {
        epochs: 2,
        dim: 32,
        neg_samples: 16,
        max_sentences_per_entity: 6,
        ..EncoderConfig::default()
    }
}

/// Raw IEEE-754 bits of every `(entity, score)` pair in query order — any
/// last-ulp drift between thread counts fails the comparison.
fn run_fingerprint(world: &World, expand: impl Fn(&Query) -> RankedList) -> String {
    world
        .queries()
        .map(|(_, q)| {
            expand(q)
                .entries()
                .iter()
                .map(|(e, s)| format!("{}:{:08x}", e.index(), s.to_bits()))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn ranked_lists_are_byte_identical_at_every_thread_count() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        set_threads(threads);
        prints.push((
            threads,
            run_fingerprint(&world, |q| model.expand(&world, q)),
        ));
    }
    set_threads(0);
    assert!(!prints[0].1.is_empty(), "fingerprint must cover queries");
    for (threads, fp) in &prints[1..] {
        assert_eq!(
            &prints[0].1, fp,
            "RetExpan output diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn contrastive_loss_curves_are_bit_identical_at_every_thread_count() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
    let mined = mine_lists(&world, &model, &oracle, 10, 5);
    let pair_cfg = PairConfig::default();

    let mut curves = Vec::new();
    for threads in [1usize, 2, 8] {
        set_threads(threads);
        let mut enc = model.encoder.clone();
        let losses = train_contrastive(&mut enc, &world, &mined, &pair_cfg);
        curves.push((threads, losses));
    }
    set_threads(0);
    let (_, base) = &curves[0];
    assert!(!base.is_empty(), "training must run at least one batch");
    for (threads, losses) in &curves[1..] {
        assert_eq!(base.len(), losses.len());
        for (i, (a, b)) in base.iter().zip(losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "loss curve bit-diverged at batch {i} between 1 and {threads} threads \
                 ({a} vs {b})"
            );
        }
    }
}

mod fused_training_props {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;
    use ultrawiki::core::TokenId;
    use ultrawiki::embed::{contrastive_batch_step_pooled, ContrastiveExample};
    use ultrawiki::nn::TrainWorkspaces;

    /// One shared frozen base; every case mutates clones only.
    fn base_encoder() -> &'static (World, EntityEncoder) {
        static BASE: OnceLock<(World, EntityEncoder)> = OnceLock::new();
        BASE.get_or_init(|| {
            let w = world();
            let enc = EntityEncoder::new(&w, quick_encoder());
            (w, enc)
        })
    }

    type RawExample = (Vec<u32>, Vec<u32>, Vec<Vec<u32>>, u8);

    fn raw_batches() -> impl Strategy<Value = Vec<RawExample>> {
        let bag = || prop::collection::vec(0u32..10_000, 1..8);
        prop::collection::vec(
            (bag(), bag(), prop::collection::vec(bag(), 1..5), 0u8..3),
            1..13,
        )
    }

    fn build_examples(raw: &[RawExample], vocab: usize) -> Vec<ContrastiveExample> {
        let tok = |t: u32| TokenId::new(t % vocab as u32);
        raw.iter()
            .map(|(a, p, ns, wmode)| {
                let neg_bags: Vec<Vec<TokenId>> = ns
                    .iter()
                    .map(|b| b.iter().map(|&t| tok(t)).collect())
                    .collect();
                let weights = if *wmode == 0 {
                    None
                } else {
                    Some(
                        (0..neg_bags.len())
                            .map(|k| 1.0 + f32::from(*wmode) * 0.25 * (k as f32 + 1.0))
                            .collect(),
                    )
                };
                ContrastiveExample {
                    anchor_bag: a.iter().map(|&t| tok(t)).collect(),
                    pos_bag: p.iter().map(|&t| tok(t)).collect(),
                    neg_bags,
                    weights,
                }
            })
            .collect()
    }

    proptest! {
        /// The fused batched gradient step — sequential and through the
        /// persistent worker team at several thread counts — must be
        /// bitwise identical to the per-example reference step, across
        /// batch sizes, negative counts, weighted/unweighted examples,
        /// and *repeated workspace reuse* (the middle half-batch step
        /// shrinks every buffer, so stale rows would leak into the third
        /// step if reuse were unsound).
        #[test]
        fn fused_batched_step_is_bit_identical_to_reference(raw in raw_batches()) {
            let (w, base) = base_encoder();
            let examples = build_examples(&raw, w.vocab.len());
            let half = &examples[..examples.len().div_ceil(2)];

            let mut enc_ref = base.clone();
            let ref_losses = [
                enc_ref.contrastive_batch_step_reference(&examples),
                enc_ref.contrastive_batch_step_reference(half),
                enc_ref.contrastive_batch_step_reference(&examples),
            ];
            let ref_fp = enc_ref.params_fingerprint();

            let mut enc_seq = base.clone();
            let mut wss = TrainWorkspaces::new(4);
            let seq_losses = [
                enc_seq.contrastive_batch_step_fused(&examples, &mut wss),
                enc_seq.contrastive_batch_step_fused(half, &mut wss),
                enc_seq.contrastive_batch_step_fused(&examples, &mut wss),
            ];
            for (a, b) in ref_losses.iter().zip(&seq_losses) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "fused loss diverged: {} vs {}", a, b);
            }
            prop_assert_eq!(enc_seq.params_fingerprint(), ref_fp, "fused params diverged");

            for threads in [1usize, 2, 8] {
                let pool = Pool::new(threads);
                let mut enc_pool = base.clone();
                let mut wss = TrainWorkspaces::new(4);
                let pool_losses = [
                    contrastive_batch_step_pooled(&mut enc_pool, &examples, &pool, &mut wss),
                    contrastive_batch_step_pooled(&mut enc_pool, half, &pool, &mut wss),
                    contrastive_batch_step_pooled(&mut enc_pool, &examples, &pool, &mut wss),
                ];
                for (a, b) in ref_losses.iter().zip(&pool_losses) {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "pooled loss diverged at {} threads: {} vs {}",
                        threads,
                        a,
                        b
                    );
                }
                prop_assert_eq!(
                    enc_pool.params_fingerprint(),
                    ref_fp,
                    "params diverged at {} threads",
                    threads
                );
            }
        }
    }
}

#[test]
fn parallel_eval_matches_sequential_eval_bitwise() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let seq = evaluate_method(&world, |_u, q| model.expand(&world, q));
    for threads in [1usize, 2, 8] {
        let par = evaluate_method_par(&world, &Pool::new(threads), |_u, q| model.expand(&world, q));
        assert_eq!(seq.num_queries, par.num_queries);
        for k in 0..seq.pos_map.len() {
            assert_eq!(
                seq.pos_map[k].to_bits(),
                par.pos_map[k].to_bits(),
                "pos MAP@{k} diverged at {threads} threads"
            );
            assert_eq!(
                seq.neg_map[k].to_bits(),
                par.neg_map[k].to_bits(),
                "neg MAP@{k} diverged at {threads} threads"
            );
        }
    }
}

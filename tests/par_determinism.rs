//! Thread-count invariance: the `ultra-par` execution layer must produce
//! *byte-identical* output at every worker count, not merely statistically
//! equivalent output. Chunk boundaries are a pure function of input length
//! and reductions combine in a fixed tree order, so `threads=1` and
//! `threads=8` walk the same arithmetic — these tests pin that contract at
//! the pipeline level, where a violation would actually corrupt results.

use ultrawiki::embed::contrastive::train_contrastive;
use ultrawiki::prelude::*;

fn world() -> World {
    World::generate(WorldConfig::tiny().with_seed(42)).expect("world generation")
}

fn quick_encoder() -> EncoderConfig {
    EncoderConfig {
        epochs: 2,
        dim: 32,
        neg_samples: 16,
        max_sentences_per_entity: 6,
        ..EncoderConfig::default()
    }
}

/// Raw IEEE-754 bits of every `(entity, score)` pair in query order — any
/// last-ulp drift between thread counts fails the comparison.
fn run_fingerprint(world: &World, expand: impl Fn(&Query) -> RankedList) -> String {
    world
        .queries()
        .map(|(_, q)| {
            expand(q)
                .entries()
                .iter()
                .map(|(e, s)| format!("{}:{:08x}", e.index(), s.to_bits()))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn ranked_lists_are_byte_identical_at_every_thread_count() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        set_threads(threads);
        prints.push((
            threads,
            run_fingerprint(&world, |q| model.expand(&world, q)),
        ));
    }
    set_threads(0);
    assert!(!prints[0].1.is_empty(), "fingerprint must cover queries");
    for (threads, fp) in &prints[1..] {
        assert_eq!(
            &prints[0].1, fp,
            "RetExpan output diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn contrastive_loss_curves_are_bit_identical_at_every_thread_count() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
    let mined = mine_lists(&world, &model, &oracle, 10, 5);
    let pair_cfg = PairConfig::default();

    let mut curves = Vec::new();
    for threads in [1usize, 2, 8] {
        set_threads(threads);
        let mut enc = model.encoder.clone();
        let losses = train_contrastive(&mut enc, &world, &mined, &pair_cfg);
        curves.push((threads, losses));
    }
    set_threads(0);
    let (_, base) = &curves[0];
    assert!(!base.is_empty(), "training must run at least one batch");
    for (threads, losses) in &curves[1..] {
        assert_eq!(base.len(), losses.len());
        for (i, (a, b)) in base.iter().zip(losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "loss curve bit-diverged at batch {i} between 1 and {threads} threads \
                 ({a} vs {b})"
            );
        }
    }
}

#[test]
fn parallel_eval_matches_sequential_eval_bitwise() {
    let world = world();
    let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let seq = evaluate_method(&world, |_u, q| model.expand(&world, q));
    for threads in [1usize, 2, 8] {
        let par = evaluate_method_par(&world, &Pool::new(threads), |_u, q| model.expand(&world, q));
        assert_eq!(seq.num_queries, par.num_queries);
        for k in 0..seq.pos_map.len() {
            assert_eq!(
                seq.pos_map[k].to_bits(),
                par.pos_map[k].to_bits(),
                "pos MAP@{k} diverged at {threads} threads"
            );
            assert_eq!(
                seq.neg_map[k].to_bits(),
                par.neg_map[k].to_bits(),
                "neg MAP@{k} diverged at {threads} threads"
            );
        }
    }
}

//! End-to-end tests of the serving stack over a real TCP socket.
//!
//! One engine (tiny world, 1-epoch encoder) is trained once and shared by
//! every test; each test that needs a live server starts its own on an
//! ephemeral port so tests can run concurrently without port clashes.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use ultra_serve::http::{read_response, write_json_request, Response};
use ultra_serve::{
    EngineConfig, ExpandRequest, ExpandResponse, ExpansionEngine, Method, Server, ServerConfig,
    ServerHandle, SnapshotRuntime,
};
use ultrawiki::prelude::EncoderConfig;

fn engine() -> Arc<ExpansionEngine> {
    static ENGINE: OnceLock<Arc<ExpansionEngine>> = OnceLock::new();
    ENGINE
        .get_or_init(|| {
            let config = EngineConfig {
                profile: "tiny".into(),
                encoder: EncoderConfig {
                    epochs: 1,
                    dim: 16,
                    neg_samples: 8,
                    max_sentences_per_entity: 4,
                    ..EncoderConfig::default()
                },
                ..EngineConfig::default()
            };
            Arc::new(ExpansionEngine::build(config).expect("engine builds"))
        })
        .clone()
}

fn start_server() -> ServerHandle {
    Server::start(
        engine(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            debug_panic_route: true,
        },
    )
    .expect("server starts")
}

fn roundtrip(handle: &ServerHandle, method: &str, path: &str, body: &[u8]) -> Response {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_json_request(&mut stream, method, path, body).expect("write");
    read_response(&mut BufReader::new(stream)).expect("read")
}

fn expand_body(query_index: usize, top_k: usize) -> Vec<u8> {
    serde_json::to_vec(&ExpandRequest::replay(Method::RetExpan, query_index, top_k))
        .expect("serialize")
}

#[test]
fn healthz_reports_the_engine() {
    let handle = start_server();
    let resp = roundtrip(&handle, "GET", "/healthz", b"");
    assert_eq!(resp.status, 200);
    let health: serde_json::Value = serde_json::from_slice(&resp.body).expect("json");
    assert_eq!(
        health.get("status").and_then(serde_json::Value::as_str),
        Some("ok")
    );
    assert_eq!(
        health.get("profile").and_then(serde_json::Value::as_str),
        Some("tiny")
    );
    assert!(health.get("queries").and_then(serde_json::Value::as_u64) > Some(0));
    handle.shutdown();
}

#[test]
fn served_expansion_is_byte_identical_to_offline_and_to_cache_hits() {
    let handle = start_server();
    let engine = engine();

    // First request: a miss computed by the worker pool.
    let cold = roundtrip(&handle, "POST", "/expand", &expand_body(0, 0));
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    assert_eq!(cold.header("x-ultra-cache"), Some("miss"));

    // Same request again: a hit, body byte-identical.
    let hit = roundtrip(&handle, "POST", "/expand", &expand_body(0, 0));
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-ultra-cache"), Some("hit"));
    assert_eq!(hit.body, cold.body, "cache hit must not change a byte");

    // And the served list equals the offline pipeline's, bit for bit.
    let served: ExpandResponse = serde_json::from_slice(&cold.body).expect("parse");
    let (_ultra, query) = engine.world().queries().next().expect("query 0");
    let offline = engine.retexpan().expand(engine.world(), query);
    assert_eq!(served.list, offline, "served == offline (bit-exact)");
    assert_eq!(&served.query, query);
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_identical_deterministic_answers() {
    let handle = start_server();
    let addr = handle.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                write_json_request(&mut stream, "POST", "/expand", &expand_body(1, 0))
                    .expect("write");
                let resp = read_response(&mut BufReader::new(stream)).expect("read");
                assert_eq!(resp.status, 200);
                resp.body
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "all 8 concurrent answers byte-identical");
    }
    let engine = engine();
    let served: ExpandResponse = serde_json::from_slice(&bodies[0]).expect("parse");
    let (_ultra, query) = engine.world().queries().nth(1).expect("query 1");
    assert_eq!(served.list, engine.retexpan().expand(engine.world(), query));
    handle.shutdown();
}

#[test]
fn bad_requests_get_400s_with_json_errors() {
    let handle = start_server();
    for (label, body) in [
        ("malformed JSON", &b"{not json"[..]),
        ("no query at all", br#"{"method":"retexpan"}"#),
        (
            "both query forms",
            br#"{"query_index":0,"query":{"ultra":0,"pos_seeds":[0],"neg_seeds":[]}}"#,
        ),
        ("unknown method", br#"{"method":"gpt5","query_index":0}"#),
        ("index out of range", br#"{"query_index":999999}"#),
        (
            "genexpan not enabled",
            br#"{"method":"genexpan","query_index":0}"#,
        ),
    ] {
        let resp = roundtrip(&handle, "POST", "/expand", body);
        assert_eq!(resp.status, 400, "{label}");
        let err: serde_json::Value = serde_json::from_slice(&resp.body).expect("json error body");
        assert!(err.get("error").is_some(), "{label} carries an error field");
    }
    handle.shutdown();
}

#[test]
fn unknown_routes_and_verbs_are_rejected() {
    let handle = start_server();
    assert_eq!(roundtrip(&handle, "GET", "/nope", b"").status, 404);
    assert_eq!(roundtrip(&handle, "GET", "/expand", b"").status, 405);
    assert_eq!(roundtrip(&handle, "POST", "/healthz", b"").status, 405);
    handle.shutdown();
}

#[test]
fn metrics_count_traffic_and_cache_outcomes() {
    let handle = start_server();
    // Two identical expands: one miss, one hit.
    for _ in 0..2 {
        assert_eq!(
            roundtrip(&handle, "POST", "/expand", &expand_body(2, 10)).status,
            200
        );
    }
    let resp = roundtrip(&handle, "GET", "/metrics", b"");
    assert_eq!(resp.status, 200);
    let snap: serde_json::Value = serde_json::from_slice(&resp.body).expect("json");
    let field = |name: &str| snap.get(name).and_then(serde_json::Value::as_u64);
    assert!(field("requests_total") >= Some(3));
    assert!(field("responses_2xx") >= Some(2));
    let cache = snap.get("cache").expect("cache stats");
    assert!(cache.get("hits").and_then(serde_json::Value::as_u64) >= Some(1));
    let expand = snap.get("expand_latency").expect("expand histogram");
    assert!(expand.get("count").and_then(serde_json::Value::as_u64) >= Some(2));
    handle.shutdown();
}

#[test]
fn a_panicking_handler_answers_500_and_the_pool_keeps_serving() {
    let handle = start_server();

    // Establish a baseline answer before anything panics.
    let before = roundtrip(&handle, "POST", "/expand", &expand_body(0, 5));
    assert_eq!(before.status, 200);

    // The debug route panics inside the handler; containment must turn
    // that into a JSON 500 on this very connection.
    let boom = roundtrip(&handle, "POST", "/debug/panic", b"");
    assert_eq!(
        boom.status, 500,
        "panic surfaces as 500, not a dropped conn"
    );
    let err: serde_json::Value = serde_json::from_slice(&boom.body).expect("json error body");
    assert!(err.get("error").is_some());

    // Every worker survives: more requests than workers all still answer,
    // and the expansion bytes are identical to the pre-panic answer.
    for _ in 0..8 {
        let after = roundtrip(&handle, "POST", "/expand", &expand_body(0, 5));
        assert_eq!(after.status, 200);
        assert_eq!(after.body, before.body, "byte-identical after the panic");
    }

    // The incident is counted.
    let resp = roundtrip(&handle, "GET", "/metrics", b"");
    let snap: serde_json::Value = serde_json::from_slice(&resp.body).expect("json");
    assert!(
        snap.get("panics_total").and_then(serde_json::Value::as_u64) >= Some(1),
        "panics_total records the caught panic"
    );
    handle.shutdown();
}

#[test]
fn served_from_snapshot_is_byte_identical_to_train_at_startup() {
    let trained = engine();
    let bytes = trained.to_snapshot().expect("snapshot").to_bytes();
    let loaded = Arc::new(
        ExpansionEngine::from_snapshot_bytes(&bytes, SnapshotRuntime::default())
            .expect("snapshot loads"),
    );

    // Two live servers: one answering from the trained engine, one from the
    // snapshot-loaded engine. Every observable byte must agree.
    let server_a = start_server();
    let server_b = Server::start(
        loaded,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            debug_panic_route: false,
        },
    )
    .expect("snapshot server starts");

    let health_a = roundtrip(&server_a, "GET", "/healthz", b"");
    let health_b = roundtrip(&server_b, "GET", "/healthz", b"");
    assert_eq!(health_a.status, 200);
    assert_eq!(health_b.status, 200);
    assert_eq!(health_a.body, health_b.body, "healthz bodies differ");

    for query_index in 0..5 {
        for top_k in [0, 10] {
            let a = roundtrip(
                &server_a,
                "POST",
                "/expand",
                &expand_body(query_index, top_k),
            );
            let b = roundtrip(
                &server_b,
                "POST",
                "/expand",
                &expand_body(query_index, top_k),
            );
            assert_eq!(a.status, 200, "{}", String::from_utf8_lossy(&a.body));
            assert_eq!(b.status, 200, "{}", String::from_utf8_lossy(&b.body));
            assert_eq!(
                a.body, b.body,
                "query {query_index} top_k {top_k}: snapshot-served body differs"
            );
        }
    }

    // The snapshot server's /metrics attributes its provenance.
    let resp = roundtrip(&server_b, "GET", "/metrics", b"");
    assert_eq!(resp.status, 200);
    let snap: serde_json::Value = serde_json::from_slice(&resp.body).expect("json");
    let index = snap.get("index").expect("index info");
    assert!(
        index
            .get("snapshot_fingerprint")
            .and_then(serde_json::Value::as_str)
            .is_some(),
        "snapshot server reports its fingerprint"
    );
    assert!(
        index
            .get("snapshot_load_micros")
            .and_then(serde_json::Value::as_u64)
            .is_some(),
        "snapshot server reports its load time"
    );
    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn server_answers_503_until_the_engine_is_installed() {
    let (handle, installer) = Server::start_warming(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        debug_panic_route: false,
    })
    .expect("warming server starts");

    // The port is up, but nothing serves until validation finishes.
    for (method, path, body) in [
        ("GET", "/healthz", &b""[..]),
        ("GET", "/metrics", &b""[..]),
        ("POST", "/expand", &expand_body(0, 0)[..]),
    ] {
        let resp = roundtrip(&handle, method, path, body);
        assert_eq!(resp.status, 503, "{method} {path} while warming");
        let err: serde_json::Value = serde_json::from_slice(&resp.body).expect("json error body");
        assert!(err.get("error").is_some(), "{method} {path} carries error");
    }
    assert!(handle.metrics().is_none(), "no metrics while warming");

    assert!(installer.install(engine()), "first install succeeds");
    assert!(!installer.install(engine()), "second install is rejected");

    assert_eq!(roundtrip(&handle, "GET", "/healthz", b"").status, 200);
    assert_eq!(
        roundtrip(&handle, "POST", "/expand", &expand_body(0, 0)).status,
        200
    );
    assert!(handle.metrics().is_some(), "metrics live after install");
    handle.shutdown();
}

#[test]
fn shutdown_is_clean_and_releases_the_port() {
    let handle = start_server();
    let addr = handle.addr();
    assert_eq!(roundtrip(&handle, "GET", "/healthz", b"").status, 200);
    handle.shutdown(); // joins acceptor + drains workers
                       // The listener is gone: a fresh connection must fail (or be refused
                       // before any response arrives).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = write_json_request(&mut stream, "GET", "/healthz", b"");
            assert!(
                read_response(&mut BufReader::new(stream)).is_err(),
                "no server behind the socket after shutdown"
            );
        }
    }
}

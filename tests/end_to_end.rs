//! Cross-crate integration tests: the full pipeline from world generation
//! through every method family to evaluation, on the tiny profile.

use ultrawiki::prelude::*;

fn tiny_world() -> World {
    World::generate(WorldConfig::tiny()).expect("tiny world")
}

/// Cheap encoder settings for integration testing.
fn quick_encoder() -> EncoderConfig {
    EncoderConfig {
        epochs: 12,
        dim: 64,
        neg_samples: 64,
        max_sentences_per_entity: 12,
        ..EncoderConfig::default()
    }
}

#[test]
fn full_retexpan_pipeline_beats_untrained_on_fine_grained_recall() {
    // The tiny profile is too small for ultra-fine gaps to be stable, but
    // entity prediction must reliably improve *fine-grained* ranking (the
    // paper's Table 3 "- Entity prediction" mechanism); the ultra-level gap
    // is asserted at scale by expt_table3.
    let world = tiny_world();
    let trained = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let untrained = RetExpan::train(
        &world,
        EncoderConfig {
            epochs: 0,
            ..quick_encoder()
        },
        RetExpanConfig::default(),
    );
    let fine_recall = |model: &RetExpan| -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (u, q) in world.queries().take(20) {
            let l0 = model.preliminary_list(&world, q, None);
            for e in l0.entities().take(30) {
                total += 1;
                if world.entity(e).class == Some(u.fine) {
                    hits += 1;
                }
            }
        }
        hits as f64 / total as f64
    };
    let rt = fine_recall(&trained);
    let ru = fine_recall(&untrained);
    assert!(
        rt > ru,
        "entity prediction must improve fine-grained recall: {rt:.3} vs {ru:.3}"
    );
}

#[test]
fn contrastive_strategy_improves_pos_metrics() {
    let world = tiny_world();
    let base = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
    let mined = mine_lists(&world, &base, &oracle, 30, 10);
    let mut enc = base.encoder.clone();
    ultrawiki::embed::contrastive::train_contrastive(
        &mut enc,
        &world,
        &mined,
        &PairConfig::default(),
    );
    let con = RetExpan::from_encoder(&world, enc, base.config.clone());
    let rb = evaluate_method(&world, |_u, q| base.expand(&world, q));
    let rc = evaluate_method(&world, |_u, q| con.expand(&world, q));
    assert!(
        rc.avg_pos() > rb.avg_pos() - 0.5,
        "contrastive learning should not hurt Pos: {:.2} vs {:.2}",
        rc.avg_pos(),
        rb.avg_pos()
    );
}

#[test]
fn genexpan_constrained_beats_unconstrained() {
    let world = tiny_world();
    let constrained = GenExpan::train(&world, GenExpanConfig::default());
    let unconstrained = GenExpan::train(
        &world,
        GenExpanConfig {
            constrained: false,
            ..GenExpanConfig::default()
        },
    );
    let rc = evaluate_method(&world, |u, q| constrained.expand(&world, u, q));
    let ru = evaluate_method(&world, |u, q| unconstrained.expand(&world, u, q));
    // Table 3's claim is about expansion quality: the prefix trie guarantees
    // every generation is a real entity, so positive metrics improve
    // decisively. The combined metric is not comparable between the two
    // arms — unconstrained floods its list with hallucinated non-entities
    // (>80% of entries on the tiny world), which deflates NegMAP and lets
    // `comb = (pos + 100 - neg) / 2` reward garbage.
    assert!(
        rc.avg_pos() > ru.avg_pos() + 5.0,
        "prefix constraint must help (Table 3): {:.2} vs {:.2}",
        rc.avg_pos(),
        ru.avg_pos()
    );
}

#[test]
fn further_pretraining_helps_genexpan() {
    let world = tiny_world();
    let full = GenExpan::train(&world, GenExpanConfig::default());
    let base_only = GenExpan::train(
        &world,
        GenExpanConfig {
            further_pretrain: false,
            ..GenExpanConfig::default()
        },
    );
    let rf = evaluate_method(&world, |u, q| full.expand(&world, u, q));
    let rb = evaluate_method(&world, |u, q| base_only.expand(&world, u, q));
    assert!(
        rf.avg_comb() > rb.avg_comb(),
        "further pretraining must help (Table 3): {:.2} vs {:.2}",
        rf.avg_comb(),
        rb.avg_comb()
    );
}

#[test]
fn every_baseline_runs_and_excludes_seeds() {
    let world = tiny_world();
    let se = SetExpan::new(&world);
    let case = CaSE::new(&world);
    let cg = CgExpan::new(&world);
    let gpt = Gpt4Baseline::new(&world, OracleConfig::default());
    for (u, q) in world.queries().take(6) {
        for list in [
            se.expand(&world, q),
            case.expand(&world, q),
            cg.expand(&world, q),
            gpt.expand(q),
        ] {
            assert!(!list.is_empty(), "empty expansion for {:?}", u.id);
            for s in q.all_seeds() {
                assert_eq!(list.rank_of(s), None, "seed leaked into expansion");
            }
        }
    }
}

#[test]
fn probexpan_shares_retexpan_encoder() {
    let world = tiny_world();
    let ret = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
    let pe = ProbExpan::from_encoder(&world, &ret.encoder);
    let r = evaluate_method(&world, |_u, q| pe.expand(&world, q));
    assert!(r.num_queries > 0);
    assert!(r.avg_comb() > 45.0, "ProbExpan sanity: {:.2}", r.avg_comb());
}

#[test]
fn whole_pipeline_is_deterministic_across_processes() {
    // Two independent builds from the same seed must agree end-to-end.
    let w1 = tiny_world();
    let w2 = tiny_world();
    let r1 = RetExpan::train(&w1, quick_encoder(), RetExpanConfig::default());
    let r2 = RetExpan::train(&w2, quick_encoder(), RetExpanConfig::default());
    let (u1, q1) = w1.queries().next().unwrap();
    let (_, q2) = w2.queries().next().unwrap();
    assert_eq!(q1, q2);
    let e1: Vec<_> = r1.expand(&w1, q1).entities().collect();
    let e2: Vec<_> = r2.expand(&w2, q2).entities().collect();
    assert_eq!(e1, e2);
    let _ = u1;
}

#[test]
fn metric_report_is_consistent_with_targets() {
    let world = tiny_world();
    // Oracle expander: perfect Pos, zero Neg intrusion beyond floor.
    let r = evaluate_method(&world, |u, q| {
        RankedList::from_scores(
            u.pos_targets
                .iter()
                .filter(|e| !q.is_seed(**e))
                .enumerate()
                .map(|(i, &e)| (e, 1000.0 - i as f32))
                .collect(),
        )
    });
    assert!(r.pos_map[0] > 99.0);
    assert!(r.neg_map[0] < 1e-9);
    assert!(r.comb_map[0] > 99.0);
}

//! Adversarial fault-injection suite for the USNP snapshot format.
//!
//! Every mutation of a valid snapshot — bit flips in any section,
//! truncation at any boundary, header tampering, length lies, duplicated
//! or reordered sections, trailing garbage — must surface as a *typed*
//! [`SnapError`], never a panic and never a silently different engine.
//! Each decode here runs under `catch_unwind` so a panic is a test
//! failure in its own right, not just an aborted test binary.

use proptest::prelude::*;
use std::sync::OnceLock;
use ultra_serve::{EngineConfig, ExpansionEngine, ServeError, SnapshotRuntime};
use ultra_snap::{reseal, section_spans, SnapError, Snapshot, MAGIC, VERSION};
use ultrawiki::prelude::*;

/// Offset of the section-count field in the file header.
const COUNT_AT: usize = 8;
/// Trailer length (whole-file FNV fingerprint).
const TRAILER_LEN: usize = 8;

/// A pristine snapshot exercising **every** section: CONF + EMBD + NGLM +
/// TRIE + BM25 + UANN (tiny world, cheap encoder, IVF source, GenExpan on).
fn pristine() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let config = EngineConfig {
            profile: "tiny".into(),
            encoder: EncoderConfig {
                epochs: 1,
                dim: 16,
                neg_samples: 8,
                max_sentences_per_entity: 4,
                ..EncoderConfig::default()
            },
            retexpan: RetExpanConfig {
                ann: AnnSpec::Ivf(IvfConfig {
                    nlist: 8,
                    nprobe: 3,
                    ..IvfConfig::default()
                }),
                ..RetExpanConfig::default()
            },
            genexpan: Some(GenExpanConfig::default()),
            cache_capacity: 64,
            cache_shards: 2,
            ..EngineConfig::default()
        };
        let engine = ExpansionEngine::build(config).expect("fixture engine builds");
        let bytes = engine.to_snapshot().expect("fixture snapshot").to_bytes();
        // Sanity: the fixture decodes and carries all six sections.
        let snapshot = Snapshot::from_bytes(&bytes).expect("fixture decodes");
        assert!(snapshot.lm.is_some() && snapshot.trie.is_some() && snapshot.ivf.is_some());
        assert_eq!(section_spans(&bytes).expect("fixture scans").len(), 6);
        bytes
    })
}

/// Decodes under panic containment: `Ok(result)` if the decoder returned,
/// `Err(())` if it panicked.
fn decode_contained(bytes: &[u8]) -> Result<Result<Snapshot, SnapError>, ()> {
    let bytes = bytes.to_vec();
    std::panic::catch_unwind(move || Snapshot::from_bytes(&bytes)).map_err(|_| ())
}

/// Asserts corrupted bytes yield a typed error — no panic, no `Ok`.
fn assert_typed_error(bytes: &[u8], context: &str) -> SnapError {
    match decode_contained(bytes) {
        Ok(Err(e)) => e,
        Ok(Ok(_)) => panic!("{context}: corrupted snapshot decoded successfully"),
        Err(()) => panic!("{context}: decoder panicked"),
    }
}

fn flipped(bytes: &[u8], byte_at: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[byte_at] ^= 1 << bit;
    out
}

#[test]
fn single_bit_flips_in_every_section_are_typed_errors() {
    let bytes = pristine();
    let spans = section_spans(bytes).expect("pristine scans");

    // Sampled offsets per region: both edges, interior quartiles, and the
    // section header + checksum fields. (Exhausting all ~40M bit positions
    // is a no-op: every file byte is covered by either the per-section or
    // the whole-file fingerprint, which these samples prove region by
    // region.)
    let mut targets: Vec<(usize, &str)> = Vec::new();
    for at in 0..12 {
        targets.push((at, "file header"));
    }
    for span in &spans {
        let name = std::str::from_utf8(&span.tag).unwrap_or("????").to_string();
        let name: &'static str = Box::leak(name.into_boxed_str());
        for at in [span.start, span.start + 4, span.payload_end, span.end - 1] {
            targets.push((at, name)); // tag, length field, checksum edges
        }
        let len = span.payload_end - span.payload_start;
        for quarter in 0..4 {
            targets.push((span.payload_start + quarter * len / 4, name));
        }
        targets.push((span.payload_end - 1, name));
    }
    for at in bytes.len() - TRAILER_LEN..bytes.len() {
        targets.push((at, "trailer"));
    }

    for (at, region) in targets {
        for bit in [0u8, 3, 7] {
            let corrupted = flipped(bytes, at, bit);
            if corrupted == bytes {
                continue;
            }
            assert_typed_error(&corrupted, &format!("bit {bit} of byte {at} ({region})"));
        }
    }
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let bytes = pristine();
    let spans = section_spans(bytes).expect("pristine scans");
    let mut cuts: Vec<usize> = (0..16).collect(); // every header prefix
    for span in &spans {
        cuts.extend([
            span.start,
            span.start + 4,
            span.payload_start,
            span.payload_start + 1,
            span.payload_end - 1,
            span.payload_end,
            span.end - 1,
            span.end,
        ]);
    }
    cuts.extend([bytes.len() - TRAILER_LEN, bytes.len() - 1]);
    for cut in cuts {
        assert!(cut < bytes.len(), "cut {cut} out of range");
        assert_typed_error(&bytes[..cut], &format!("truncated to {cut} bytes"));
    }
    assert_typed_error(b"", "empty file");
}

#[test]
fn magic_and_version_tampering_is_rejected_by_name() {
    let bytes = pristine();
    for at in 0..4 {
        let corrupted = flipped(bytes, at, 5);
        assert_eq!(
            assert_typed_error(&corrupted, "magic tamper"),
            SnapError::BadMagic
        );
    }
    for version in [0u32, VERSION + 1, u32::MAX] {
        let mut corrupted = bytes.to_vec();
        corrupted[4..8].copy_from_slice(&version.to_le_bytes());
        assert_eq!(
            assert_typed_error(&corrupted, "version tamper"),
            SnapError::UnsupportedVersion(version)
        );
    }
    // Sanity check of the constants this format is defined by.
    assert_eq!(&bytes[..4], &MAGIC);
    assert_eq!(VERSION, 1);
}

#[test]
fn section_length_lies_are_typed_errors() {
    let bytes = pristine();
    let spans = section_spans(bytes).expect("pristine scans");
    for span in &spans {
        let declared = (span.payload_end - span.payload_start) as u64;
        for lie in [
            declared.wrapping_sub(1),
            declared + 1,
            0,
            u64::MAX,
            u64::MAX / 2, // huge but non-overflowing: must not allocate
        ] {
            let mut corrupted = bytes.to_vec();
            corrupted[span.start + 4..span.start + 12].copy_from_slice(&lie.to_le_bytes());
            // Raw lie: the whole-file fingerprint no longer matches.
            assert_typed_error(&corrupted, "raw length lie");
            // Resealed lie: checksums are made internally consistent again,
            // so the *structural/semantic* layer must reject it instead.
            if reseal(&mut corrupted).is_ok() {
                assert_typed_error(&corrupted, "resealed length lie");
            }
        }
    }
}

/// Splices `bytes`' sections in a new order (indices into the span list),
/// fixes the section count, and reseals — producing a file whose checksums
/// are all valid so only semantic validation can reject it.
fn respliced(bytes: &[u8], order: &[usize]) -> Vec<u8> {
    let spans = section_spans(bytes).expect("scans");
    let mut out = bytes[..12].to_vec();
    out[COUNT_AT..COUNT_AT + 4].copy_from_slice(&(order.len() as u32).to_le_bytes());
    for &i in order {
        out.extend_from_slice(&bytes[spans[i].start..spans[i].end]);
    }
    out.extend_from_slice(&[0u8; TRAILER_LEN]);
    reseal(&mut out).expect("respliced file reseals");
    out
}

#[test]
fn duplicated_and_reordered_sections_are_typed_errors() {
    let bytes = pristine();
    let n = section_spans(bytes).expect("scans").len();

    // Identity resplice sanity check: the harness itself is sound.
    let identity: Vec<usize> = (0..n).collect();
    let rebuilt = respliced(bytes, &identity);
    assert_eq!(rebuilt, bytes, "identity resplice reproduces the file");

    // Every adjacent swap → SectionOrder.
    for i in 0..n - 1 {
        let mut order = identity.clone();
        order.swap(i, i + 1);
        let err = assert_typed_error(&respliced(bytes, &order), "swapped sections");
        assert!(
            matches!(err, SnapError::SectionOrder(_)),
            "swap {i}: expected SectionOrder, got {err:?}"
        );
    }

    // Every duplicated section → DuplicateSection or SectionOrder (a
    // duplicate is also out of order unless adjacent to itself).
    for i in 0..n {
        let mut order = identity.clone();
        order.insert(i + 1, i);
        let err = assert_typed_error(&respliced(bytes, &order), "duplicated section");
        assert!(
            matches!(
                err,
                SnapError::DuplicateSection(_) | SnapError::SectionOrder(_)
            ),
            "dup {i}: expected DuplicateSection/SectionOrder, got {err:?}"
        );
    }

    // A dropped *required* section → MissingSection (after reseal the
    // container is pristine, so only the semantic layer can notice).
    let without_embd: Vec<usize> = identity.iter().copied().filter(|&i| i != 1).collect();
    let err = assert_typed_error(&respliced(bytes, &without_embd), "dropped EMBD");
    assert!(
        matches!(err, SnapError::MissingSection(_)),
        "expected MissingSection, got {err:?}"
    );
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let bytes = pristine();
    for garbage in [&[0u8][..], &[0xFF; 7], &[0xAB; 64]] {
        let mut corrupted = bytes.to_vec();
        corrupted.extend_from_slice(garbage);
        let err = assert_typed_error(&corrupted, "trailing garbage");
        assert!(
            matches!(err, SnapError::TrailingGarbage | SnapError::Truncated),
            "expected TrailingGarbage/Truncated, got {err:?}"
        );
    }
}

#[test]
fn checksum_valid_but_semantically_tampered_payloads_never_reach_serving() {
    let bytes = pristine();
    let spans = section_spans(bytes).expect("scans");
    // Tamper *inside* the CONF payload and reseal, so every checksum
    // passes and only the engine's semantic cross-checks stand between a
    // lying snapshot and serving. Targets are the world-identity fields
    // the load path re-derives and verifies (CONF layout for the `"tiny"`
    // fixture: profile len u32 + 4 profile bytes, then seed u64 at payload
    // offset 8, then world_fingerprint u64 at offset 16):
    let conf = &spans[0];
    for (delta, field) in [
        (5usize, "profile bytes"), // "tiny" -> "thny": unknown profile
        (8, "seed"),               // world regenerates differently
        (16, "world fingerprint"), // stored claim no longer matches
    ] {
        let at = conf.payload_start + delta;
        let mut corrupted = bytes.to_vec();
        corrupted[at] ^= 0x01;
        reseal(&mut corrupted).expect("payload tamper reseals cleanly");
        assert_eq!(
            Snapshot::from_bytes(&corrupted).err(),
            None,
            "container layer alone must accept a resealed {field} tamper \
             (that is the point: semantic checks have to catch it)"
        );
        let outcome = std::panic::catch_unwind(|| {
            ExpansionEngine::from_snapshot_bytes(&corrupted, SnapshotRuntime::default()).map(|_| ())
        });
        match outcome {
            Ok(Err(ServeError::Snapshot(_) | ServeError::BadRequest(_))) => {}
            Ok(Err(e)) => panic!("{field} tamper: unexpected error class {e}"),
            Ok(Ok(())) => panic!("{field} tamper: engine served from a lying snapshot"),
            Err(_) => panic!("{field} tamper: load path panicked"),
        }
    }
}

proptest! {
    /// Arbitrary byte soup never panics the decoder — worst case a typed
    /// error, and an `Ok` only for a byte-exact valid file (which random
    /// soup cannot produce: it would need four matching fingerprints).
    #[test]
    fn arbitrary_bytes_never_panic(
        soup in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..4096),
    ) {
        match decode_contained(&soup) {
            Ok(Ok(_)) => prop_assert!(false, "random soup decoded as a snapshot"),
            Ok(Err(_)) => {}
            Err(()) => prop_assert!(false, "decoder panicked on random soup"),
        }
    }

    /// Valid-prefix soup: a real header followed by garbage is the
    /// adversarial sweet spot (it gets past magic/version into the
    /// count-driven section walk).
    #[test]
    fn header_plus_soup_never_panics(
        count in 0u32..80,
        soup in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..2048),
    ) {
        let mut bytes = Vec::with_capacity(12 + soup.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&count.to_le_bytes());
        bytes.extend_from_slice(&soup);
        match decode_contained(&bytes) {
            Ok(Ok(_)) => prop_assert!(false, "header+soup decoded as a snapshot"),
            Ok(Err(_)) => {}
            Err(()) => prop_assert!(false, "decoder panicked on header+soup"),
        }
    }

    /// Random single-bit flips anywhere in a pristine snapshot: always a
    /// typed error (or, never in practice, an undetected no-op is ruled
    /// out because every byte is fingerprint-covered).
    #[test]
    fn random_bit_flips_are_typed_errors(at_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = pristine();
        let at = ((bytes.len() as f64 * at_frac) as usize).min(bytes.len() - 1);
        let corrupted = flipped(bytes, at, bit);
        match decode_contained(&corrupted) {
            Ok(Err(_)) => {}
            Ok(Ok(_)) => prop_assert!(false, "flip at byte {at} bit {bit} went undetected"),
            Err(()) => prop_assert!(false, "flip at byte {at} bit {bit} panicked the decoder"),
        }
    }
}

//! End-to-end determinism guarantees.
//!
//! Two independent runs of the same pipeline on the same seed must produce
//! *byte-identical* ranked output — not merely similar metrics. This is the
//! behavioural contract behind the `ultra-lint` no-unseeded-rng and
//! no-hash-iteration-order rules: if either class of bug sneaks in, these
//! tests catch it at the output level.

use proptest::prelude::*;
use std::collections::HashSet;
use ultrawiki::eval::QueryEval;
use ultrawiki::prelude::*;

/// Seed for the paired runs; overridable the same way the experiment
/// binaries are (`ULTRA_SEED`).
fn seed_from_env() -> u64 {
    std::env::var("ULTRA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// World profile for the paired runs. Defaults to `tiny` so the paired
/// trainings stay fast in CI; `ULTRA_PROFILE=small` (or `paper`) runs the
/// same byte-identity checks at scale.
fn world(seed: u64) -> World {
    let cfg = match std::env::var("ULTRA_PROFILE").as_deref() {
        Ok("paper") => WorldConfig::paper(),
        Ok("small") => WorldConfig::small(),
        _ => WorldConfig::tiny(),
    };
    World::generate(cfg.with_seed(seed)).expect("world generation")
}

/// Cheap-but-nontrivial encoder settings: byte-identity does not need a
/// well-trained model, it needs the full training + expansion path to run.
fn quick_encoder() -> EncoderConfig {
    EncoderConfig {
        epochs: 2,
        dim: 32,
        neg_samples: 16,
        max_sentences_per_entity: 6,
        ..EncoderConfig::default()
    }
}

/// Bit-exact fingerprint of a ranked list: entity ids plus the raw IEEE-754
/// bits of every score, so `-0.0` vs `0.0` or any last-ulp drift fails.
fn fingerprint(list: &RankedList) -> String {
    list.entries()
        .iter()
        .map(|(e, s)| format!("{}:{:08x}", e.index(), s.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Fingerprint of every query's ranked list under `expand`, in query order.
fn run_fingerprint(world: &World, mut expand: impl FnMut(&Query) -> RankedList) -> String {
    world
        .queries()
        .map(|(_, q)| fingerprint(&expand(q)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn retexpan_pipeline_is_byte_identical_across_runs() {
    let seed = seed_from_env();
    let run = || {
        let world = world(seed);
        let model = RetExpan::train(&world, quick_encoder(), RetExpanConfig::default());
        run_fingerprint(&world, |q| model.expand(&world, q))
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "fingerprint must cover at least one query");
    assert_eq!(
        a, b,
        "RetExpan ranked output must be byte-identical across runs with seed {seed}"
    );
}

#[test]
fn setexpan_pipeline_is_byte_identical_across_runs() {
    let seed = seed_from_env();
    let run = || {
        let world = world(seed);
        let model = SetExpan::new(&world);
        run_fingerprint(&world, |q| model.expand(&world, q))
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "fingerprint must cover at least one query");
    assert_eq!(
        a, b,
        "SetExpan ranked output must be byte-identical across runs with seed {seed}"
    );
}

#[test]
fn world_generation_is_deterministic_in_corpus_and_queries() {
    let seed = seed_from_env();
    let a = world(seed);
    let b = world(seed);
    assert_eq!(a.num_entities(), b.num_entities());
    assert_eq!(a.corpus.len(), b.corpus.len());
    let qa: Vec<_> = a.queries().map(|(_, q)| q.clone()).collect();
    let qb: Vec<_> = b.queries().map(|(_, q)| q.clone()).collect();
    assert_eq!(qa.len(), qb.len());
    for (x, y) in qa.iter().zip(&qb) {
        assert_eq!(x.pos_seeds, y.pos_seeds);
        assert_eq!(x.neg_seeds, y.neg_seeds);
    }
}

fn entity_scores() -> impl Strategy<Value = Vec<(EntityId, f32)>> {
    prop::collection::vec((0u32..400, -1e6f32..1e6), 0..100)
        .prop_map(|v| v.into_iter().map(|(e, s)| (EntityId::new(e), s)).collect())
}

proptest! {
    /// No input — empty lists, empty target sets, disjoint sets, huge
    /// scores — may drive any metric to NaN or ±∞.
    #[test]
    fn metrics_are_always_finite(
        scores in entity_scores(),
        pos in prop::collection::hash_set(0u32..400, 0..50),
        neg in prop::collection::hash_set(0u32..400, 0..50),
    ) {
        let list = RankedList::from_scores(scores);
        let pos: HashSet<EntityId> = pos.into_iter().map(EntityId::new).collect();
        let neg: HashSet<EntityId> = neg.into_iter().map(EntityId::new).collect();
        let eval = QueryEval::compute(&list, &pos, &neg);
        for arr in [eval.pos_map, eval.neg_map, eval.pos_p, eval.neg_p] {
            for v in arr {
                prop_assert!(v.is_finite(), "metric must be finite, got {v}");
                prop_assert!((0.0..=100.0).contains(&v), "metric out of range: {v}");
            }
        }
        let report = MetricReport::aggregate(&[eval]);
        for v in [
            report.avg_pos(),
            report.avg_neg(),
            report.avg_comb(),
            report.avg_pos_map(),
            report.avg_neg_map(),
            report.avg_comb_map(),
        ] {
            prop_assert!(v.is_finite(), "aggregate metric must be finite, got {v}");
        }
    }
}

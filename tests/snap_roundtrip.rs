//! Snapshot roundtrip contract: `build → serialize → load` must reproduce
//! the train-at-startup engine byte for byte, and building the same engine
//! twice must produce byte-identical snapshot files.
//!
//! The profiles × thread-count matrix here is the serving determinism
//! contract extended to persistence: the snapshot is a function of
//! `(profile, seed, configs)` only — never of the thread count that trained
//! it, the thread count that loads it, or the wall clock.

use ultra_serve::{EngineConfig, ExpansionEngine, Method, SnapshotRuntime};
use ultrawiki::prelude::*;

/// A cheap encoder so the matrix stays fast; cheapness is irrelevant to the
/// contract (every byte surface is exercised regardless of model size).
fn cheap_encoder() -> EncoderConfig {
    EncoderConfig {
        epochs: 1,
        dim: 16,
        neg_samples: 8,
        max_sentences_per_entity: 4,
        ..EncoderConfig::default()
    }
}

fn engine_config(profile: &str, threads: usize, genexpan: bool) -> EngineConfig {
    EngineConfig {
        profile: profile.into(),
        encoder: cheap_encoder(),
        genexpan: genexpan.then(GenExpanConfig::default),
        threads,
        cache_capacity: 64,
        cache_shards: 2,
        ..EngineConfig::default()
    }
}

/// Asserts the loaded engine answers every query byte-identically to the
/// trained one (JSON bytes, i.e. exactly what HTTP clients would diff).
fn assert_identical_answers(trained: &ExpansionEngine, loaded: &ExpansionEngine) {
    let mut methods = vec![Method::RetExpan];
    if trained.methods().contains(&"genexpan") {
        methods.push(Method::GenExpan);
    }
    for (_ultra, query) in trained.world().queries() {
        for &method in &methods {
            let a = trained
                .expand_uncached(method, query, 0)
                .expect("trained expands");
            let b = loaded
                .expand_uncached(method, query, 0)
                .expect("loaded expands");
            assert_eq!(
                serde_json::to_string(&a).expect("json"),
                serde_json::to_string(&b).expect("json"),
                "snapshot-served answer differs from train-at-startup"
            );
        }
    }
}

#[test]
fn tiny_profile_roundtrips_across_thread_counts() {
    // Snapshot bytes must not depend on the training thread count…
    let bytes_1 = ExpansionEngine::build(engine_config("tiny", 1, false))
        .expect("t1 builds")
        .to_snapshot()
        .expect("t1 snapshot")
        .to_bytes();
    let trained = ExpansionEngine::build(engine_config("tiny", 4, false)).expect("t4 builds");
    let bytes_4 = trained.to_snapshot().expect("t4 snapshot").to_bytes();
    assert_eq!(bytes_1, bytes_4, "snapshot bytes vary with thread count");

    // …nor must served answers depend on the loading thread count.
    for threads in [1, 4] {
        let loaded = ExpansionEngine::from_snapshot_bytes(
            &bytes_1,
            SnapshotRuntime {
                threads,
                ..SnapshotRuntime::default()
            },
        )
        .expect("snapshot loads");
        assert_identical_answers(&trained, &loaded);
    }
}

#[test]
fn tiny_profile_roundtrips_with_genexpan_enabled() {
    let trained = ExpansionEngine::build(engine_config("tiny", 0, true)).expect("builds");
    let bytes = trained.to_snapshot().expect("snapshot").to_bytes();
    let rebuilt = ExpansionEngine::build(engine_config("tiny", 0, true))
        .expect("rebuilds")
        .to_snapshot()
        .expect("re-snapshot")
        .to_bytes();
    assert_eq!(bytes, rebuilt, "two builds must produce identical files");

    let loaded = ExpansionEngine::from_snapshot_bytes(&bytes, SnapshotRuntime::default())
        .expect("snapshot loads");
    assert_eq!(loaded.methods(), trained.methods());
    assert_identical_answers(&trained, &loaded);
}

#[test]
fn small_profile_roundtrips_and_is_reproducible() {
    let trained = ExpansionEngine::build(engine_config("small", 1, false)).expect("builds");
    let bytes = trained.to_snapshot().expect("snapshot").to_bytes();

    // Reproducible: a second build (different thread count) → same file.
    let rebuilt = ExpansionEngine::build(engine_config("small", 4, false))
        .expect("rebuilds")
        .to_snapshot()
        .expect("re-snapshot")
        .to_bytes();
    assert_eq!(bytes, rebuilt, "two builds must produce identical files");

    let loaded = ExpansionEngine::from_snapshot_bytes(&bytes, SnapshotRuntime::default())
        .expect("snapshot loads");
    assert!(loaded.index_info().snapshot_fingerprint.is_some());
    assert_identical_answers(&trained, &loaded);
}

//! Paper-profile dataset fidelity: the generated world must match the
//! published UltraWiki composition (Tables 1, 11, 12 and Section 4.2).

use ultrawiki::data::{simulated_annotation_kappa, WorldStats};
use ultrawiki::prelude::*;

fn paper_world() -> World {
    World::generate(WorldConfig::paper()).expect("paper world")
}

#[test]
fn table_11_entity_counts_are_exact() {
    let world = paper_world();
    let expected = [
        ("Canada universities", 99),
        ("China cities", 675),
        ("Countries", 190),
        ("US airports", 370),
        ("US national monuments", 112),
        ("Mobile phone brands", 159),
        ("Percussion instruments", 128),
        ("Nobel laureates", 952),
        ("US presidents", 45),
        ("Chemical elements", 118),
    ];
    assert_eq!(world.classes.len(), expected.len());
    for (class, (name, count)) in world.classes.iter().zip(expected) {
        assert_eq!(class.name, name);
        assert_eq!(class.entities.len(), count, "{name}");
    }
}

#[test]
fn ultra_class_count_matches_the_paper() {
    let world = paper_world();
    // The abstract's headline number (the intro also mentions 236; the
    // dataset tables settle on 261).
    assert_eq!(world.ultra_classes.len(), 261);
    let queries: usize = world.ultra_classes.iter().map(|u| u.queries.len()).sum();
    assert_eq!(queries, 261 * 3);
}

#[test]
fn arity_histogram_matches_table_12_shape() {
    let world = paper_world();
    let stats = WorldStats::compute(&world);
    let hist: std::collections::HashMap<(usize, usize), usize> =
        stats.arity_histogram.iter().copied().collect();
    let one_one = hist.get(&(1, 1)).copied().unwrap_or(0);
    // Table 12: 238 of 261 are (1,1).
    assert!(
        one_one * 10 >= 261 * 8,
        "(1,1) should dominate: {one_one}/261"
    );
    // The exotic arities exist.
    assert!(hist.keys().any(|&(p, n)| p >= 2 || n >= 2));
}

#[test]
fn target_set_sizes_match_section_4_2() {
    let world = paper_world();
    let stats = WorldStats::compute(&world);
    // Paper: average 63 positive and 60 negative targets.
    assert!(
        (40.0..=90.0).contains(&stats.avg_pos_targets),
        "avg |P| = {:.1}",
        stats.avg_pos_targets
    );
    assert!(
        (40.0..=90.0).contains(&stats.avg_neg_targets),
        "avg |N| = {:.1}",
        stats.avg_neg_targets
    );
    // Paper: ~99% of ultra classes intersect.
    assert!(stats.overlap_fraction > 0.95);
    // Every class meets n_thred after seed removal.
    for u in &world.ultra_classes {
        assert!(u.pos_targets.len() >= 6);
        assert!(u.neg_targets.len() >= 6);
    }
}

#[test]
fn annotation_quality_matches_the_papers_kappa() {
    let world = paper_world();
    let kappa = simulated_annotation_kappa(&world, 3, 0.96);
    assert!(
        (0.85..=0.97).contains(&kappa),
        "Fleiss kappa should land near the paper's 0.90, got {kappa:.3}"
    );
}

#[test]
fn corpus_scale_is_in_the_paper_band() {
    let world = paper_world();
    // Scaled-down corpus (DESIGN.md §1) but same order of structure:
    // thousands of candidates, tens of thousands of sentences.
    assert!(world.num_entities() > 10_000);
    assert!(world.corpus.len() > 50_000);
    // Every in-class entity has context.
    for class in &world.classes {
        for &e in &class.entities {
            assert!(world.corpus.mention_count(e) >= 3);
        }
    }
}

//! Deterministic-construction contract of the `ultra-ann` IVF index:
//! building the same index twice — at any thread count — must produce
//! byte-identical serialized images, and probing *all* lists must be
//! indistinguishable from the exhaustive scan (recall exactly 1.0, same
//! ranked output). These are workspace-level tests because the contract
//! spans crates: `ultra-ann` construction, `ultra-embed` scoring kernels,
//! and `ultra-par` scheduling.

use proptest::prelude::*;
use std::sync::Arc;
use ultrawiki::ann::{CandidateSource, Exhaustive, IvfConfig, IvfIndex, IvfSource};
use ultrawiki::embed::EntityEmbeddings;
use ultrawiki::nn::Matrix;
use ultrawiki::prelude::*;

/// Synthetic but deterministic embedding matrix (no RNG: a fixed integer
/// hash per cell, so every run and platform sees the same f32 values).
fn synthetic_reps(n: usize, dim: usize) -> EntityEmbeddings {
    let data: Vec<f32> = (0..n * dim)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    EntityEmbeddings::new(Matrix::from_vec(n, dim, data))
}

#[test]
fn ivf_builds_are_byte_reproducible_across_builds_and_thread_counts() {
    let reps = synthetic_reps(700, 24);
    let cfg = IvfConfig::default();

    // Two builds with the globally-configured pool at ULTRA_THREADS∈{1,4},
    // plus explicit pools — every image must match the first byte for byte.
    set_threads(1);
    let reference = IvfIndex::build(&reps, &cfg, &Pool::global()).to_bytes();
    let again = IvfIndex::build(&reps, &cfg, &Pool::global()).to_bytes();
    assert_eq!(reference, again, "same-pool rebuild diverged");
    set_threads(4);
    let t4 = IvfIndex::build(&reps, &cfg, &Pool::global()).to_bytes();
    set_threads(0);
    assert_eq!(reference, t4, "threads=1 vs threads=4 build diverged");
    for workers in [1usize, 2, 4, 8] {
        let img = IvfIndex::build(&reps, &cfg, &Pool::new(workers)).to_bytes();
        assert_eq!(reference, img, "explicit {workers}-worker build diverged");
    }
}

#[test]
fn ivf_build_is_reproducible_on_trained_embeddings() {
    // Same contract on *real* (trained) embeddings rather than synthetic
    // ones — catches determinism bugs that only trigger on clustered data.
    let world = World::generate(WorldConfig::tiny().with_seed(42)).expect("world generation");
    let model = RetExpan::train(
        &world,
        EncoderConfig {
            epochs: 1,
            dim: 32,
            neg_samples: 16,
            max_sentences_per_entity: 4,
            ..EncoderConfig::default()
        },
        RetExpanConfig::default(),
    );
    let cfg = IvfConfig::default();
    let a = IvfIndex::build(&model.reps, &cfg, &Pool::new(1));
    let b = IvfIndex::build(&model.reps, &cfg, &Pool::new(4));
    assert_eq!(a.to_bytes(), b.to_bytes());
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn unresolved_specs_are_typed_errors_never_panics() {
    // CLI `0` placeholders ("pick for me") are valid *inputs* but invalid
    // *resolved* configurations: validation must reject them with a typed
    // error naming the offending knob — a snapshot, for instance, may only
    // persist the resolved form.
    for (cfg, knob) in [
        (
            IvfConfig {
                nlist: 0,
                ..IvfConfig::default()
            },
            "nlist",
        ),
        (
            IvfConfig {
                nlist: 8,
                nprobe: 0,
                ..IvfConfig::default()
            },
            "nprobe",
        ),
        (
            IvfConfig {
                nlist: 4,
                nprobe: 9,
                ..IvfConfig::default()
            },
            "nprobe",
        ),
    ] {
        let err = AnnSpec::Ivf(cfg)
            .validate_resolved()
            .expect_err("placeholder config must not validate");
        let msg = format!("{err}");
        assert!(msg.contains(knob), "error names `{knob}`: {msg}");
    }
    // The exhaustive spec has nothing to resolve.
    AnnSpec::Exhaustive
        .validate_resolved()
        .expect("exhaustive is always resolved");
}

#[test]
fn resolve_produces_a_valid_spec_and_preserves_probe_semantics() {
    let reps = synthetic_reps(100, 8);
    let pool = Pool::new(1);
    // Placeholders resolve to concrete values that pass validation…
    let placeholder = IvfConfig {
        nlist: 0,
        nprobe: 0,
        ..IvfConfig::default()
    };
    let resolved = AnnSpec::Ivf(placeholder.clone()).resolve(reps.len());
    resolved
        .validate_resolved()
        .expect("resolved spec validates");
    let AnnSpec::Ivf(resolved_cfg) = &resolved else {
        panic!("ivf resolves to ivf");
    };
    assert_eq!(resolved_cfg.nlist, 10, "sqrt(100) lists");
    assert_eq!(resolved_cfg.nprobe, 10, "nprobe=0 means probe every list");

    // …and the resolved spec ranks identically to the placeholder form
    // (nprobe == nlist is the same "probe all" the 0 placeholder meant).
    let seeds = vec![EntityId::from_index(3), EntityId::from_index(57)];
    let via_placeholder = RankedList::from_scores(
        IvfSource::new(
            Arc::new(IvfIndex::build(&reps, &placeholder, &pool)),
            placeholder.nprobe,
        )
        .scored_candidates(&reps, &seeds, &pool),
    );
    let via_resolved = RankedList::from_scores(
        IvfSource::new(
            Arc::new(IvfIndex::build(&reps, resolved_cfg, &pool)),
            resolved_cfg.nprobe,
        )
        .scored_candidates(&reps, &seeds, &pool),
    );
    assert_eq!(via_placeholder.entries(), via_resolved.entries());
}

proptest! {
    /// Probing every list is exactly the exhaustive scan: same candidate
    /// set, same scores, same ranked order — recall@k is 1.0 for every k.
    #[test]
    fn full_probe_ranking_equals_exhaustive(
        n in 1usize..160,
        dim in 2usize..10,
        nlist in 0usize..20,
        num_seeds in 1usize..4,
    ) {
        let reps = synthetic_reps(n, dim);
        let cfg = IvfConfig { nlist, ..IvfConfig::default() };
        let pool = Pool::new(2);
        let index = Arc::new(IvfIndex::build(&reps, &cfg, &pool));
        let seeds: Vec<EntityId> = (0..num_seeds.min(n))
            .map(|i| EntityId::from_index(i * n / num_seeds.min(n).max(1)))
            .collect();

        let exact = RankedList::from_scores(
            Exhaustive.scored_candidates(&reps, &seeds, &pool),
        );
        let probed = RankedList::from_scores(
            IvfSource::new(index, 0).scored_candidates(&reps, &seeds, &pool),
        );
        prop_assert_eq!(exact.entries(), probed.entries());
    }

    /// Narrow probes never invent candidates: every returned id is a valid
    /// entity index and appears at most once.
    #[test]
    fn probed_candidates_are_in_range_and_unique(
        n in 1usize..160,
        dim in 2usize..10,
        nlist in 0usize..20,
        nprobe in 0usize..24,
    ) {
        let reps = synthetic_reps(n, dim);
        let cfg = IvfConfig { nlist, ..IvfConfig::default() };
        let pool = Pool::new(1);
        let index = IvfIndex::build(&reps, &cfg, &pool);
        let query: Vec<f32> = (0..dim).map(|i| (i as f32 + 0.5) / dim as f32).collect();
        let candidates = index.candidates(&query, nprobe);
        let mut seen = vec![false; n];
        for e in &candidates {
            prop_assert!(e.index() < n, "candidate id {} out of range", e.index());
            prop_assert!(!seen[e.index()], "candidate id {} duplicated", e.index());
            seen[e.index()] = true;
        }
        if nprobe == 0 || nprobe >= index.nlist() {
            prop_assert_eq!(candidates.len(), n, "full probe must cover every entity");
        }
    }
}

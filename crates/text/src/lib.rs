//! `ultra-text` — text substrate: interning vocabulary, tokenizer, BM25
//! inverted index, and the entity-name prefix trie.
//!
//! UltraWiki's construction and methods lean on three text facilities that
//! this crate provides from scratch:
//!
//! * a WordPiece-style [`Tokenizer`] over an interning [`Vocab`] (Appendix B
//!   tokenizes with WordPiece; we tokenize to whole words with a subword
//!   fallback so unseen surface forms never map to a single opaque UNK),
//! * an Okapi [`Bm25Index`] — the paper mines hard negative candidate
//!   entities with "BM25-based search" (Section 4.2) and we reuse the same
//!   index for retrieval augmentation lookups,
//! * a token-level [`PrefixTrie`] over candidate entity names — the backbone
//!   of GenExpan's prefix-constrained beam search (Figure 6).

pub mod bm25;
pub mod tokenizer;
pub mod trie;
pub mod vocab;

pub use bm25::{Bm25Index, Bm25Params};
pub use tokenizer::Tokenizer;
pub use trie::PrefixTrie;
pub use vocab::Vocab;

//! Token-level prefix trie over candidate entity names (Figure 6).
//!
//! "The root node represents the beginning, and each path from the root to a
//! leaf node represents a complete candidate entity. During decoding, the
//! process must follow a specific path from root to leaf" — GenExpan's
//! prefix-constrained beam search queries this structure at every step for
//! the set of tokens allowed next.

use std::collections::HashMap;
use ultra_core::{EntityId, TokenId};

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<TokenId, usize>,
    /// Entity completed exactly at this node, if any.
    terminal: Option<EntityId>,
}

/// Prefix tree over token sequences, each sequence naming one entity.
#[derive(Debug, Clone)]
pub struct PrefixTrie {
    nodes: Vec<Node>,
    len: usize,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// Creates an empty trie with just the root.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Inserts an entity name given as its token sequence.
    ///
    /// Empty sequences are rejected (an entity must have a surface form).
    /// Re-inserting a sequence overwrites the terminal entity.
    pub fn insert(&mut self, tokens: &[TokenId], entity: EntityId) {
        assert!(!tokens.is_empty(), "entity names must be non-empty");
        let mut cur = 0usize;
        for &tok in tokens {
            let next = match self.nodes[cur].children.get(&tok) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(tok, n);
                    n
                }
            };
            cur = next;
        }
        if self.nodes[cur].terminal.replace(entity).is_none() {
            self.len += 1;
        }
    }

    /// Number of stored entity names.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no names.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks a prefix; returns the internal node handle if the prefix is a
    /// valid path.
    fn walk(&self, prefix: &[TokenId]) -> Option<usize> {
        let mut cur = 0usize;
        for tok in prefix {
            cur = *self.nodes[cur].children.get(tok)?;
        }
        Some(cur)
    }

    /// Tokens allowed immediately after `prefix` (empty prefix = first
    /// tokens of all names). Returns an empty vec for invalid prefixes.
    /// The result is sorted for determinism.
    pub fn allowed_continuations(&self, prefix: &[TokenId]) -> Vec<TokenId> {
        match self.walk(prefix) {
            Some(node) => {
                let mut toks: Vec<TokenId> = self.nodes[node].children.keys().copied().collect();
                toks.sort_unstable();
                toks
            }
            None => Vec::new(),
        }
    }

    /// The entity completed exactly by `prefix`, if any.
    ///
    /// Note a completed entity may still have longer extensions
    /// (e.g. "Xin" vs "Xinyang" as two entities).
    pub fn complete(&self, prefix: &[TokenId]) -> Option<EntityId> {
        self.walk(prefix).and_then(|n| self.nodes[n].terminal)
    }

    /// Whether `prefix` is a valid path (prefix of at least one name).
    pub fn is_valid_prefix(&self, prefix: &[TokenId]) -> bool {
        self.walk(prefix).is_some()
    }

    /// Enumerates all `(name tokens, entity)` pairs under `prefix`, in
    /// depth-first token order. Used by tests and diagnostics.
    pub fn enumerate(&self, prefix: &[TokenId]) -> Vec<(Vec<TokenId>, EntityId)> {
        let Some(start) = self.walk(prefix) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![(start, prefix.to_vec())];
        while let Some((node, path)) = stack.pop() {
            if let Some(e) = self.nodes[node].terminal {
                out.push((path.clone(), e));
            }
            let mut kids: Vec<(TokenId, usize)> = self.nodes[node]
                .children
                .iter()
                .map(|(&t, &n)| (t, n))
                .collect();
            // Reverse-sorted so the stack pops in ascending token order.
            kids.sort_unstable_by_key(|&(t, _)| std::cmp::Reverse(t));
            for (tok, next) in kids {
                let mut p = path.clone();
                p.push(tok);
                stack.push((next, p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }
    fn e(x: u32) -> EntityId {
        EntityId::new(x)
    }

    fn sample() -> PrefixTrie {
        let mut trie = PrefixTrie::new();
        trie.insert(&[t(1), t(2)], e(0)); // "new york"
        trie.insert(&[t(1), t(3)], e(1)); // "new delhi"
        trie.insert(&[t(4)], e(2)); // "tokyo"
        trie.insert(&[t(1)], e(3)); // "new" (a prefix of others)
        trie
    }

    #[test]
    fn allowed_continuations_from_root_and_prefix() {
        let trie = sample();
        assert_eq!(trie.allowed_continuations(&[]), vec![t(1), t(4)]);
        assert_eq!(trie.allowed_continuations(&[t(1)]), vec![t(2), t(3)]);
        assert!(trie.allowed_continuations(&[t(9)]).is_empty());
    }

    #[test]
    fn complete_detects_terminals_including_inner_nodes() {
        let trie = sample();
        assert_eq!(trie.complete(&[t(1), t(2)]), Some(e(0)));
        assert_eq!(trie.complete(&[t(1)]), Some(e(3)));
        assert_eq!(trie.complete(&[t(4)]), Some(e(2)));
        assert_eq!(trie.complete(&[t(2)]), None);
    }

    #[test]
    fn reinsert_overwrites_without_growing() {
        let mut trie = sample();
        let before = trie.len();
        trie.insert(&[t(4)], e(9));
        assert_eq!(trie.len(), before);
        assert_eq!(trie.complete(&[t(4)]), Some(e(9)));
    }

    #[test]
    fn enumerate_lists_subtree_in_token_order() {
        let trie = sample();
        let all = trie.enumerate(&[]);
        assert_eq!(all.len(), 4);
        let under_new = trie.enumerate(&[t(1)]);
        let ids: Vec<_> = under_new.iter().map(|(_, e)| *e).collect();
        assert_eq!(ids, vec![e(3), e(0), e(1)]);
    }

    #[test]
    fn valid_prefix_check() {
        let trie = sample();
        assert!(trie.is_valid_prefix(&[]));
        assert!(trie.is_valid_prefix(&[t(1), t(3)]));
        assert!(!trie.is_valid_prefix(&[t(1), t(9)]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_is_rejected() {
        let mut trie = PrefixTrie::new();
        trie.insert(&[], e(0));
    }
}

//! Token-level prefix trie over candidate entity names (Figure 6).
//!
//! "The root node represents the beginning, and each path from the root to a
//! leaf node represents a complete candidate entity. During decoding, the
//! process must follow a specific path from root to leaf" — GenExpan's
//! prefix-constrained beam search queries this structure at every step for
//! the set of tokens allowed next.

use std::collections::HashMap;
use ultra_core::{ByteReader, ByteWriter, EntityId, TokenId, UltraError};

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<TokenId, usize>,
    /// Entity completed exactly at this node, if any.
    terminal: Option<EntityId>,
}

/// Prefix tree over token sequences, each sequence naming one entity.
#[derive(Debug, Clone)]
pub struct PrefixTrie {
    nodes: Vec<Node>,
    len: usize,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// Creates an empty trie with just the root.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Inserts an entity name given as its token sequence.
    ///
    /// Empty sequences are rejected (an entity must have a surface form).
    /// Re-inserting a sequence overwrites the terminal entity.
    pub fn insert(&mut self, tokens: &[TokenId], entity: EntityId) {
        assert!(!tokens.is_empty(), "entity names must be non-empty");
        let mut cur = 0usize;
        for &tok in tokens {
            let next = match self.nodes[cur].children.get(&tok) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(tok, n);
                    n
                }
            };
            cur = next;
        }
        if self.nodes[cur].terminal.replace(entity).is_none() {
            self.len += 1;
        }
    }

    /// Number of stored entity names.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no names.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks a prefix; returns the internal node handle if the prefix is a
    /// valid path.
    fn walk(&self, prefix: &[TokenId]) -> Option<usize> {
        let mut cur = 0usize;
        for tok in prefix {
            cur = *self.nodes[cur].children.get(tok)?;
        }
        Some(cur)
    }

    /// Tokens allowed immediately after `prefix` (empty prefix = first
    /// tokens of all names). Returns an empty vec for invalid prefixes.
    /// The result is sorted for determinism.
    pub fn allowed_continuations(&self, prefix: &[TokenId]) -> Vec<TokenId> {
        match self.walk(prefix) {
            Some(node) => {
                let mut toks: Vec<TokenId> = self.nodes[node].children.keys().copied().collect();
                toks.sort_unstable();
                toks
            }
            None => Vec::new(),
        }
    }

    /// The entity completed exactly by `prefix`, if any.
    ///
    /// Note a completed entity may still have longer extensions
    /// (e.g. "Xin" vs "Xinyang" as two entities).
    pub fn complete(&self, prefix: &[TokenId]) -> Option<EntityId> {
        self.walk(prefix).and_then(|n| self.nodes[n].terminal)
    }

    /// Whether `prefix` is a valid path (prefix of at least one name).
    pub fn is_valid_prefix(&self, prefix: &[TokenId]) -> bool {
        self.walk(prefix).is_some()
    }

    /// Enumerates all `(name tokens, entity)` pairs under `prefix`, in
    /// depth-first token order. Used by tests and diagnostics.
    pub fn enumerate(&self, prefix: &[TokenId]) -> Vec<(Vec<TokenId>, EntityId)> {
        let Some(start) = self.walk(prefix) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![(start, prefix.to_vec())];
        while let Some((node, path)) = stack.pop() {
            if let Some(e) = self.nodes[node].terminal {
                out.push((path.clone(), e));
            }
            let mut kids: Vec<(TokenId, usize)> = self.nodes[node]
                .children
                .iter()
                .map(|(&t, &n)| (t, n))
                .collect();
            // Reverse-sorted so the stack pops in ascending token order.
            kids.sort_unstable_by_key(|&(t, _)| std::cmp::Reverse(t));
            for (tok, next) in kids {
                let mut p = path.clone();
                p.push(tok);
                stack.push((next, p));
            }
        }
        out
    }

    /// Serializes the stored names as the [`enumerate`](Self::enumerate)
    /// stream — `(name tokens, entity)` pairs in depth-first token order.
    /// That order is a pure function of the stored *content* (internal node
    /// numbering never leaks), so two tries holding the same names produce
    /// byte-identical output.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let entries = self.enumerate(&[]);
        w.u64(entries.len() as u64);
        for (name, entity) in entries {
            w.u32(name.len() as u32);
            for t in name {
                w.u32(t.0);
            }
            w.u32(entity.0);
        }
        w.finish()
    }

    /// Strict inverse of [`to_bytes`](Self::to_bytes): names must be
    /// non-empty and strictly increasing in token order (the canonical
    /// enumeration order — duplicates and reorderings are rejected), with
    /// no trailing bytes. Errors are typed, never panics.
    pub fn from_bytes(bytes: &[u8]) -> ultra_core::Result<Self> {
        let corrupt = |msg: &str| UltraError::Corrupt(format!("prefix-trie: {msg}"));
        let mut r = ByteReader::new(bytes, "prefix-trie");
        let declared = r.u64()?;
        // Each entry is at least name-len + one token + entity id bytes.
        let n = r.check_count(declared, 12, "names")?;
        let mut trie = PrefixTrie::new();
        let mut prev: Vec<TokenId> = Vec::new();
        for i in 0..n {
            let name_len = r.u32()? as usize;
            if name_len == 0 {
                return Err(corrupt("empty entity name"));
            }
            let _ = r.check_count(name_len as u64, 4, "name tokens")?;
            let mut name = Vec::with_capacity(name_len);
            for _ in 0..name_len {
                name.push(TokenId::new(r.u32()?));
            }
            if i > 0 && prev >= name {
                return Err(corrupt("names not in strict enumeration order"));
            }
            let entity = EntityId::new(r.u32()?);
            trie.insert(&name, entity);
            prev = name;
        }
        r.expect_end()?;
        Ok(trie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }
    fn e(x: u32) -> EntityId {
        EntityId::new(x)
    }

    fn sample() -> PrefixTrie {
        let mut trie = PrefixTrie::new();
        trie.insert(&[t(1), t(2)], e(0)); // "new york"
        trie.insert(&[t(1), t(3)], e(1)); // "new delhi"
        trie.insert(&[t(4)], e(2)); // "tokyo"
        trie.insert(&[t(1)], e(3)); // "new" (a prefix of others)
        trie
    }

    #[test]
    fn allowed_continuations_from_root_and_prefix() {
        let trie = sample();
        assert_eq!(trie.allowed_continuations(&[]), vec![t(1), t(4)]);
        assert_eq!(trie.allowed_continuations(&[t(1)]), vec![t(2), t(3)]);
        assert!(trie.allowed_continuations(&[t(9)]).is_empty());
    }

    #[test]
    fn complete_detects_terminals_including_inner_nodes() {
        let trie = sample();
        assert_eq!(trie.complete(&[t(1), t(2)]), Some(e(0)));
        assert_eq!(trie.complete(&[t(1)]), Some(e(3)));
        assert_eq!(trie.complete(&[t(4)]), Some(e(2)));
        assert_eq!(trie.complete(&[t(2)]), None);
    }

    #[test]
    fn reinsert_overwrites_without_growing() {
        let mut trie = sample();
        let before = trie.len();
        trie.insert(&[t(4)], e(9));
        assert_eq!(trie.len(), before);
        assert_eq!(trie.complete(&[t(4)]), Some(e(9)));
    }

    #[test]
    fn enumerate_lists_subtree_in_token_order() {
        let trie = sample();
        let all = trie.enumerate(&[]);
        assert_eq!(all.len(), 4);
        let under_new = trie.enumerate(&[t(1)]);
        let ids: Vec<_> = under_new.iter().map(|(_, e)| *e).collect();
        assert_eq!(ids, vec![e(3), e(0), e(1)]);
    }

    #[test]
    fn valid_prefix_check() {
        let trie = sample();
        assert!(trie.is_valid_prefix(&[]));
        assert!(trie.is_valid_prefix(&[t(1), t(3)]));
        assert!(!trie.is_valid_prefix(&[t(1), t(9)]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_is_rejected() {
        let mut trie = PrefixTrie::new();
        trie.insert(&[], e(0));
    }

    #[test]
    fn byte_round_trip_is_canonical_and_content_identical() {
        let trie = sample();
        let bytes = trie.to_bytes();
        let back = PrefixTrie::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.to_bytes(), bytes, "re-serialization must be canonical");
        assert_eq!(back.len(), trie.len());
        assert_eq!(back.enumerate(&[]), trie.enumerate(&[]));
        assert_eq!(
            back.allowed_continuations(&[t(1)]),
            trie.allowed_continuations(&[t(1)])
        );
        // Canonical bytes are insertion-order independent: rebuild the same
        // content in a different order.
        let mut other = PrefixTrie::new();
        other.insert(&[t(1)], e(3));
        other.insert(&[t(4)], e(2));
        other.insert(&[t(1), t(3)], e(1));
        other.insert(&[t(1), t(2)], e(0));
        assert_eq!(other.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_trie_payloads_are_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(PrefixTrie::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(7);
        assert!(PrefixTrie::from_bytes(&padded).is_err());
        // An empty-name entry is rejected even with a consistent count.
        let mut w = ultra_core::ByteWriter::new();
        w.u64(1);
        w.u32(0);
        w.u32(5);
        assert!(PrefixTrie::from_bytes(&w.finish()).is_err());
        // Out-of-order names (canonical order violated) are rejected.
        let mut w = ultra_core::ByteWriter::new();
        w.u64(2);
        for tok in [4u32, 1] {
            w.u32(1);
            w.u32(tok);
            w.u32(0);
        }
        assert!(PrefixTrie::from_bytes(&w.finish()).is_err());
    }
}

//! Rule-based tokenizer with greedy-subword fallback.
//!
//! The reproduction's corpus is synthesized directly as token ids, so the
//! tokenizer's jobs are (1) tokenizing entity surface forms and prompt
//! templates, and (2) degrading gracefully on unseen words via greedy
//! longest-prefix subword splitting (the WordPiece idea) instead of mapping
//! whole words to `[UNK]`.

use crate::vocab::Vocab;
use ultra_core::TokenId;

/// Tokenizer over an interning vocabulary.
///
/// Splitting rule: lowercase, split on whitespace and punctuation (keeping
/// no punctuation tokens). In `encode` mode unknown words are decomposed by
/// greedy longest-known-prefix matching; pieces after the first are interned
/// with a `##` continuation marker, mirroring WordPiece.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tokenizer;

impl Tokenizer {
    /// Splits raw text into lowercase word strings.
    pub fn words(text: &str) -> Vec<String> {
        let mut words = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' || ch == '-' {
                cur.extend(ch.to_lowercase());
            } else if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            words.push(cur);
        }
        words
    }

    /// Tokenizes text, interning every produced token (training-time use).
    pub fn encode_interning(vocab: &mut Vocab, text: &str) -> Vec<TokenId> {
        Self::words(text).iter().map(|w| vocab.intern(w)).collect()
    }

    /// Tokenizes text against a frozen vocabulary (inference-time use).
    ///
    /// Unknown words are split by greedy longest-known-prefix matching over
    /// the frozen vocabulary; if no prefix at all is known the word becomes
    /// a single `[UNK]`.
    pub fn encode(vocab: &Vocab, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        for word in Self::words(text) {
            if let Some(id) = vocab.get(&word) {
                out.push(id);
                continue;
            }
            Self::subword_split(vocab, &word, &mut out);
        }
        out
    }

    /// Greedy longest-prefix subword split of one unknown word.
    fn subword_split(vocab: &Vocab, word: &str, out: &mut Vec<TokenId>) {
        let mut rest = word;
        let mut first = true;
        let mut produced = false;
        while !rest.is_empty() {
            let mut matched = None;
            // Longest known prefix; continuation pieces carry the ## marker.
            for end in (1..=rest.len()).rev() {
                if !rest.is_char_boundary(end) {
                    continue;
                }
                let cand = if first {
                    rest[..end].to_owned()
                } else {
                    format!("##{}", &rest[..end])
                };
                if let Some(id) = vocab.get(&cand) {
                    matched = Some((id, end));
                    break;
                }
            }
            match matched {
                Some((id, end)) => {
                    out.push(id);
                    produced = true;
                    rest = &rest[end..];
                    first = false;
                }
                None => {
                    if !produced {
                        out.push(vocab.unk());
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_strip_punctuation() {
        let w = Tokenizer::words("In 2021, Nokia employed 92,000 people!");
        assert_eq!(
            w,
            vec!["in", "2021", "nokia", "employed", "92", "000", "people"]
        );
    }

    #[test]
    fn words_keep_internal_hyphens_and_apostrophes() {
        let w = Tokenizer::words("Guinea-Bissau's coast");
        assert_eq!(w, vec!["guinea-bissau's", "coast"]);
    }

    #[test]
    fn encode_interning_grows_vocab() {
        let mut v = Vocab::new();
        let ids = Tokenizer::encode_interning(&mut v, "alpha beta alpha");
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn encode_frozen_falls_back_to_subwords() {
        let mut v = Vocab::new();
        v.intern("xin");
        v.intern("##yang");
        let ids = Tokenizer::encode(&v, "xinyang");
        assert_eq!(ids.len(), 2);
        assert_eq!(v.resolve(ids[0]), "xin");
        assert_eq!(v.resolve(ids[1]), "##yang");
    }

    #[test]
    fn encode_frozen_unknown_word_is_unk() {
        let v = Vocab::new();
        let ids = Tokenizer::encode(&v, "zzz");
        assert_eq!(ids, vec![v.unk()]);
    }

    #[test]
    fn empty_text_yields_no_tokens() {
        let v = Vocab::new();
        assert!(Tokenizer::encode(&v, "  ,. !").is_empty());
    }
}

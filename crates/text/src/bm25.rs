//! Okapi BM25 over an inverted index.
//!
//! Used in two places, matching the paper:
//!
//! * **Hard-negative mining** (Section 4.2): distractor entities whose
//!   context documents score highly against in-class entity contexts are
//!   promoted into the candidate vocabulary as hard negatives.
//! * **Retrieval augmentation**: fetching the most relevant introduction
//!   documents for an entity.

use std::collections::HashMap;
use ultra_core::TokenId;

/// BM25 free parameters.
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), conventionally 1.2–2.0.
    pub k1: f32,
    /// Length normalization strength (`b`), conventionally 0.75.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

#[derive(Clone, Debug)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// Immutable BM25 inverted index over token-id documents.
#[derive(Clone, Debug)]
pub struct Bm25Index {
    params: Bm25Params,
    postings: HashMap<TokenId, Vec<Posting>>,
    doc_len: Vec<u32>,
    avg_len: f32,
}

impl Bm25Index {
    /// Builds the index from documents given as token-id slices.
    pub fn build<'a, I>(docs: I, params: Bm25Params) -> Self
    where
        I: IntoIterator<Item = &'a [TokenId]>,
    {
        let mut postings: HashMap<TokenId, Vec<Posting>> = HashMap::new();
        let mut doc_len = Vec::new();
        let mut tf_scratch: HashMap<TokenId, u32> = HashMap::new();
        for (doc_idx, doc) in docs.into_iter().enumerate() {
            doc_len.push(doc.len() as u32);
            tf_scratch.clear();
            for &tok in doc {
                *tf_scratch.entry(tok).or_insert(0) += 1;
            }
            for (&tok, &tf) in &tf_scratch {
                postings.entry(tok).or_default().push(Posting {
                    doc: doc_idx as u32,
                    tf,
                });
            }
        }
        let avg_len = if doc_len.is_empty() {
            0.0
        } else {
            doc_len.iter().map(|&l| l as f64).sum::<f64>() as f32 / doc_len.len() as f32
        };
        Self {
            params,
            postings,
            doc_len,
            avg_len,
        }
    }

    /// Number of indexed documents.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Robertson-Sparck-Jones idf with the standard +1 floor (never negative).
    fn idf(&self, term: TokenId) -> f32 {
        let n = self.num_docs() as f32;
        let df = self.postings.get(&term).map_or(0, Vec::len) as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Scores every document against `query`, returning the top-`k`
    /// `(doc index, score)` pairs, best first. Documents with zero overlap
    /// are omitted.
    pub fn search(&self, query: &[TokenId], k: usize) -> Vec<(usize, f32)> {
        let mut scores: HashMap<u32, f32> = HashMap::new();
        // Deduplicate query terms; repeated query terms in BM25's classic
        // form contribute linearly, which over-weights our synthetic
        // repeated markers, so we score unique terms.
        let mut seen = std::collections::HashSet::new();
        for &term in query {
            if !seen.insert(term) {
                continue;
            }
            let Some(plist) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(term);
            for p in plist {
                let tf = p.tf as f32;
                let dl = self.doc_len[p.doc as usize] as f32;
                let denom =
                    tf + self.params.k1 * (1.0 - self.params.b + self.params.b * dl / self.avg_len);
                *scores.entry(p.doc).or_insert(0.0) += idf * tf * (self.params.k1 + 1.0) / denom;
            }
        }
        let mut out: Vec<(usize, f32)> = scores.into_iter().map(|(d, s)| (d as usize, s)).collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }

    fn index(docs: &[Vec<TokenId>]) -> Bm25Index {
        Bm25Index::build(docs.iter().map(Vec::as_slice), Bm25Params::default())
    }

    #[test]
    fn exact_match_outranks_partial_match() {
        let idx = index(&[
            vec![t(1), t(2), t(3)],
            vec![t(1), t(9), t(9)],
            vec![t(7), t(8)],
        ]);
        let hits = idx.search(&[t(1), t(2)], 3);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits.len(), 2, "doc 2 has no overlap and is omitted");
    }

    #[test]
    fn rare_terms_weigh_more_than_common_terms() {
        // t(1) appears in all docs, t(5) only in doc 1.
        let idx = index(&[
            vec![t(1), t(2)],
            vec![t(1), t(5)],
            vec![t(1), t(3)],
            vec![t(1), t(4)],
        ]);
        let hits = idx.search(&[t(5)], 4);
        assert_eq!(hits[0].0, 1);
        let common = idx.search(&[t(1)], 4);
        assert!(hits[0].1 > common[0].1);
    }

    #[test]
    fn length_normalization_prefers_shorter_doc_with_same_tf() {
        let idx = index(&[
            vec![t(1), t(2), t(3), t(4), t(5), t(6), t(7), t(8)],
            vec![t(1), t(2)],
        ]);
        let hits = idx.search(&[t(1)], 2);
        assert_eq!(hits[0].0, 1, "shorter document ranks first");
    }

    #[test]
    fn empty_query_and_empty_index_are_harmless() {
        let idx = index(&[vec![t(1)]]);
        assert!(idx.search(&[], 5).is_empty());
        let empty = index(&[]);
        assert!(empty.search(&[t(1)], 5).is_empty());
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let idx = index(&[vec![t(1), t(2)], vec![t(2), t(3)]]);
        let once = idx.search(&[t(1)], 2);
        let twice = idx.search(&[t(1), t(1)], 2);
        assert_eq!(once, twice);
    }

    #[test]
    fn top_k_truncates() {
        let idx = index(&[vec![t(1)], vec![t(1)], vec![t(1)]]);
        assert_eq!(idx.search(&[t(1)], 2).len(), 2);
    }
}

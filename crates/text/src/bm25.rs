//! Okapi BM25 over an inverted index.
//!
//! Used in two places, matching the paper:
//!
//! * **Hard-negative mining** (Section 4.2): distractor entities whose
//!   context documents score highly against in-class entity contexts are
//!   promoted into the candidate vocabulary as hard negatives.
//! * **Retrieval augmentation**: fetching the most relevant introduction
//!   documents for an entity.

use std::collections::HashMap;
use ultra_core::{ByteReader, ByteWriter, TokenId, UltraError};

/// BM25 free parameters.
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), conventionally 1.2–2.0.
    pub k1: f32,
    /// Length normalization strength (`b`), conventionally 0.75.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

#[derive(Clone, Debug)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// Immutable BM25 inverted index over token-id documents.
#[derive(Clone, Debug)]
pub struct Bm25Index {
    params: Bm25Params,
    postings: HashMap<TokenId, Vec<Posting>>,
    doc_len: Vec<u32>,
    avg_len: f32,
}

impl Bm25Index {
    /// Builds the index from documents given as token-id slices.
    pub fn build<'a, I>(docs: I, params: Bm25Params) -> Self
    where
        I: IntoIterator<Item = &'a [TokenId]>,
    {
        let mut postings: HashMap<TokenId, Vec<Posting>> = HashMap::new();
        let mut doc_len = Vec::new();
        let mut tf_scratch: HashMap<TokenId, u32> = HashMap::new();
        for (doc_idx, doc) in docs.into_iter().enumerate() {
            doc_len.push(doc.len() as u32);
            tf_scratch.clear();
            for &tok in doc {
                *tf_scratch.entry(tok).or_insert(0) += 1;
            }
            for (&tok, &tf) in &tf_scratch {
                postings.entry(tok).or_default().push(Posting {
                    doc: doc_idx as u32,
                    tf,
                });
            }
        }
        let avg_len = if doc_len.is_empty() {
            0.0
        } else {
            doc_len.iter().map(|&l| l as f64).sum::<f64>() as f32 / doc_len.len() as f32
        };
        Self {
            params,
            postings,
            doc_len,
            avg_len,
        }
    }

    /// Number of indexed documents.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Robertson-Sparck-Jones idf with the standard +1 floor (never negative).
    fn idf(&self, term: TokenId) -> f32 {
        let n = self.num_docs() as f32;
        let df = self.postings.get(&term).map_or(0, Vec::len) as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Scores every document against `query`, returning the top-`k`
    /// `(doc index, score)` pairs, best first. Documents with zero overlap
    /// are omitted.
    pub fn search(&self, query: &[TokenId], k: usize) -> Vec<(usize, f32)> {
        let mut scores: HashMap<u32, f32> = HashMap::new();
        // Deduplicate query terms; repeated query terms in BM25's classic
        // form contribute linearly, which over-weights our synthetic
        // repeated markers, so we score unique terms.
        let mut seen = std::collections::HashSet::new();
        for &term in query {
            if !seen.insert(term) {
                continue;
            }
            let Some(plist) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(term);
            for p in plist {
                let tf = p.tf as f32;
                let dl = self.doc_len[p.doc as usize] as f32;
                let denom =
                    tf + self.params.k1 * (1.0 - self.params.b + self.params.b * dl / self.avg_len);
                *scores.entry(p.doc).or_insert(0.0) += idf * tf * (self.params.k1 + 1.0) / denom;
            }
        }
        let mut out: Vec<(usize, f32)> = scores.into_iter().map(|(d, s)| (d as usize, s)).collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Serializes the index in canonical form: parameters, document
    /// lengths, the stored average length's exact bit pattern, then the
    /// posting lists in ascending term order (postings within a list are
    /// already in ascending document order by construction).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.f32(self.params.k1);
        w.f32(self.params.b);
        w.u64(self.doc_len.len() as u64);
        for &l in &self.doc_len {
            w.u32(l);
        }
        w.f32(self.avg_len);
        w.u64(self.postings.len() as u64);
        let mut terms: Vec<TokenId> = self.postings.keys().copied().collect();
        terms.sort_unstable();
        for term in terms {
            w.u32(term.0);
            let plist = &self.postings[&term];
            w.u64(plist.len() as u64);
            for p in plist {
                w.u32(p.doc);
                w.u32(p.tf);
            }
        }
        w.finish()
    }

    /// Strict inverse of [`to_bytes`](Self::to_bytes). Validates term and
    /// posting order (strictly increasing — duplicates and reorderings are
    /// rejected), document ids against the length table, non-zero term
    /// frequencies, and exact payload consumption; failures are typed
    /// errors, never panics.
    pub fn from_bytes(bytes: &[u8]) -> ultra_core::Result<Self> {
        let corrupt = |msg: &str| UltraError::Corrupt(format!("bm25: {msg}"));
        let mut r = ByteReader::new(bytes, "bm25");
        let k1 = r.f32()?;
        let b = r.f32()?;
        if !k1.is_finite() || !b.is_finite() || k1 < 0.0 || !(0.0..=1.0).contains(&b) {
            return Err(corrupt("parameters out of range"));
        }
        let declared_docs = r.u64()?;
        let num_docs = r.check_count(declared_docs, 4, "documents")?;
        let mut doc_len = Vec::with_capacity(num_docs);
        for _ in 0..num_docs {
            doc_len.push(r.u32()?);
        }
        let avg_len = r.f32()?;
        let declared_terms = r.u64()?;
        // A term entry is at least term + postings-count bytes.
        let num_terms = r.check_count(declared_terms, 12, "terms")?;
        let mut postings: HashMap<TokenId, Vec<Posting>> = HashMap::with_capacity(num_terms);
        let mut prev_term: Option<u32> = None;
        for _ in 0..num_terms {
            let term = r.u32()?;
            if prev_term.is_some_and(|p| p >= term) {
                return Err(corrupt("terms not strictly increasing"));
            }
            prev_term = Some(term);
            let declared_postings = r.u64()?;
            let n = r.check_count(declared_postings, 8, "postings")?;
            if n == 0 {
                return Err(corrupt("empty posting list"));
            }
            let mut plist = Vec::with_capacity(n);
            let mut prev_doc: Option<u32> = None;
            for _ in 0..n {
                let doc = r.u32()?;
                if prev_doc.is_some_and(|p| p >= doc) {
                    return Err(corrupt("postings not strictly increasing by doc"));
                }
                prev_doc = Some(doc);
                if doc as usize >= num_docs {
                    return Err(corrupt("posting references unknown document"));
                }
                let tf = r.u32()?;
                if tf == 0 {
                    return Err(corrupt("zero term frequency"));
                }
                plist.push(Posting { doc, tf });
            }
            postings.insert(TokenId::new(term), plist);
        }
        r.expect_end()?;
        Ok(Self {
            params: Bm25Params { k1, b },
            postings,
            doc_len,
            avg_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }

    fn index(docs: &[Vec<TokenId>]) -> Bm25Index {
        Bm25Index::build(docs.iter().map(Vec::as_slice), Bm25Params::default())
    }

    #[test]
    fn exact_match_outranks_partial_match() {
        let idx = index(&[
            vec![t(1), t(2), t(3)],
            vec![t(1), t(9), t(9)],
            vec![t(7), t(8)],
        ]);
        let hits = idx.search(&[t(1), t(2)], 3);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits.len(), 2, "doc 2 has no overlap and is omitted");
    }

    #[test]
    fn rare_terms_weigh_more_than_common_terms() {
        // t(1) appears in all docs, t(5) only in doc 1.
        let idx = index(&[
            vec![t(1), t(2)],
            vec![t(1), t(5)],
            vec![t(1), t(3)],
            vec![t(1), t(4)],
        ]);
        let hits = idx.search(&[t(5)], 4);
        assert_eq!(hits[0].0, 1);
        let common = idx.search(&[t(1)], 4);
        assert!(hits[0].1 > common[0].1);
    }

    #[test]
    fn length_normalization_prefers_shorter_doc_with_same_tf() {
        let idx = index(&[
            vec![t(1), t(2), t(3), t(4), t(5), t(6), t(7), t(8)],
            vec![t(1), t(2)],
        ]);
        let hits = idx.search(&[t(1)], 2);
        assert_eq!(hits[0].0, 1, "shorter document ranks first");
    }

    #[test]
    fn empty_query_and_empty_index_are_harmless() {
        let idx = index(&[vec![t(1)]]);
        assert!(idx.search(&[], 5).is_empty());
        let empty = index(&[]);
        assert!(empty.search(&[t(1)], 5).is_empty());
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let idx = index(&[vec![t(1), t(2)], vec![t(2), t(3)]]);
        let once = idx.search(&[t(1)], 2);
        let twice = idx.search(&[t(1), t(1)], 2);
        assert_eq!(once, twice);
    }

    #[test]
    fn top_k_truncates() {
        let idx = index(&[vec![t(1)], vec![t(1)], vec![t(1)]]);
        assert_eq!(idx.search(&[t(1)], 2).len(), 2);
    }

    #[test]
    fn byte_round_trip_preserves_scores_bit_exactly() {
        let idx = index(&[
            vec![t(1), t(2), t(3)],
            vec![t(1), t(9), t(9)],
            vec![t(7), t(8)],
        ]);
        let bytes = idx.to_bytes();
        let back = Bm25Index::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.to_bytes(), bytes, "re-serialization must be canonical");
        assert_eq!(back.num_docs(), idx.num_docs());
        let a = idx.search(&[t(1), t(2), t(9)], 10);
        let b = back.search(&[t(1), t(2), t(9)], 10);
        assert_eq!(a.len(), b.len());
        for ((da, sa), (db, sb)) in a.iter().zip(&b) {
            assert_eq!(da, db);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn corrupt_bm25_payloads_are_typed_errors() {
        let bytes = index(&[vec![t(1), t(2)], vec![t(2), t(3)]]).to_bytes();
        for cut in 0..bytes.len() {
            assert!(Bm25Index::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(1);
        assert!(Bm25Index::from_bytes(&padded).is_err());
        // Non-finite k1 is rejected.
        let mut bad = bytes.clone();
        bad[0..4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(Bm25Index::from_bytes(&bad).is_err());
    }
}

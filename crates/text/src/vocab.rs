//! Interning vocabulary mapping token strings ⇄ dense [`TokenId`]s.

use std::collections::HashMap;
use ultra_core::TokenId;

/// Reserved special tokens, interned at fixed ids on construction.
///
/// `[MASK]` replaces entity mentions for the entity encoder (Section 5.1.1);
/// `[UNK]` absorbs out-of-vocabulary words at inference time; `[SEP]`
/// delimits retrieval-augmentation prefixes and appended seed-entity hints;
/// `[EOS]` terminates generated entity names in constrained decoding.
pub const MASK: &str = "[MASK]";
/// Out-of-vocabulary placeholder.
pub const UNK: &str = "[UNK]";
/// Segment separator.
pub const SEP: &str = "[SEP]";
/// End-of-sequence marker for generation.
pub const EOS: &str = "[EOS]";

/// Interning vocabulary. Insertion order defines ids; the four special
/// tokens always occupy ids 0–3.
#[derive(Clone, Debug)]
pub struct Vocab {
    strings: Vec<String>,
    ids: HashMap<String, TokenId>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary pre-seeded with the special tokens.
    pub fn new() -> Self {
        let mut v = Self {
            strings: Vec::new(),
            ids: HashMap::new(),
        };
        for special in [MASK, UNK, SEP, EOS] {
            v.intern(special);
        }
        v
    }

    /// Id of `[MASK]`.
    #[inline]
    pub fn mask(&self) -> TokenId {
        TokenId::new(0)
    }

    /// Id of `[UNK]`.
    #[inline]
    pub fn unk(&self) -> TokenId {
        TokenId::new(1)
    }

    /// Id of `[SEP]`.
    #[inline]
    pub fn sep(&self) -> TokenId {
        TokenId::new(2)
    }

    /// Id of `[EOS]`.
    #[inline]
    pub fn eos(&self) -> TokenId {
        TokenId::new(3)
    }

    /// Interns a token, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = TokenId::from_index(self.strings.len());
        self.strings.push(token.to_owned());
        self.ids.insert(token.to_owned(), id);
        id
    }

    /// Looks up a token without interning.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.ids.get(token).copied()
    }

    /// Looks up a token, falling back to `[UNK]`.
    pub fn get_or_unk(&self, token: &str) -> TokenId {
        self.get(token).unwrap_or_else(|| self.unk())
    }

    /// String form of a token id.
    #[inline]
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of interned tokens (including specials).
    #[inline]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether only special tokens are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 4
    }

    /// Renders a token-id sequence back to a space-joined string,
    /// useful in case studies and debugging output.
    pub fn render(&self, tokens: &[TokenId]) -> String {
        tokens
            .iter()
            .map(|t| self.resolve(*t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_occupy_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.resolve(v.mask()), MASK);
        assert_eq!(v.resolve(v.unk()), UNK);
        assert_eq!(v.resolve(v.sep()), SEP);
        assert_eq!(v.resolve(v.eos()), EOS);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("tokyo");
        let b = v.intern("tokyo");
        assert_eq!(a, b);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn get_or_unk_falls_back() {
        let mut v = Vocab::new();
        v.intern("known");
        assert_eq!(v.get_or_unk("known"), v.get("known").unwrap());
        assert_eq!(v.get_or_unk("missing"), v.unk());
    }

    #[test]
    fn render_round_trips() {
        let mut v = Vocab::new();
        let a = v.intern("hello");
        let b = v.intern("world");
        assert_eq!(v.render(&[a, b]), "hello world");
    }
}

//! Queries: positive and negative seed entities.

use crate::ids::{EntityId, UltraClassId};
use serde::{Deserialize, Serialize};

/// One Ultra-ESE query `S = S^pos ∪ S^neg` (Section 3).
///
/// Both seed sets come from the same fine-grained semantic class; they differ
/// only in ultra-fine-grained attribute values. The paper samples 3 queries
/// per ultra-fine-grained class, each with 3–5 positive and negative seeds.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// The ultra-fine-grained class this query targets.
    pub ultra: UltraClassId,
    /// Positive seed entities `S^pos` (satisfy the positive constraint).
    pub pos_seeds: Vec<EntityId>,
    /// Negative seed entities `S^neg` (satisfy the negative constraint).
    pub neg_seeds: Vec<EntityId>,
}

impl Query {
    /// Builds a query, keeping seed lists as provided (callers sort if needed).
    pub fn new(ultra: UltraClassId, pos_seeds: Vec<EntityId>, neg_seeds: Vec<EntityId>) -> Self {
        Self {
            ultra,
            pos_seeds,
            neg_seeds,
        }
    }

    /// All seeds, positives first. Seeds must never be returned as expansion
    /// results, so rankers exclude exactly this set.
    pub fn all_seeds(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.pos_seeds.iter().chain(self.neg_seeds.iter()).copied()
    }

    /// Whether `e` is one of the query's seeds.
    pub fn is_seed(&self, e: EntityId) -> bool {
        self.pos_seeds.contains(&e) || self.neg_seeds.contains(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eid(x: u32) -> EntityId {
        EntityId::new(x)
    }

    #[test]
    fn all_seeds_yields_pos_then_neg() {
        let q = Query::new(UltraClassId::new(0), vec![eid(1), eid(2)], vec![eid(9)]);
        let got: Vec<_> = q.all_seeds().collect();
        assert_eq!(got, vec![eid(1), eid(2), eid(9)]);
    }

    #[test]
    fn is_seed_covers_both_sets() {
        let q = Query::new(UltraClassId::new(0), vec![eid(1)], vec![eid(9)]);
        assert!(q.is_seed(eid(1)));
        assert!(q.is_seed(eid(9)));
        assert!(!q.is_seed(eid(5)));
    }
}

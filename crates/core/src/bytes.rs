//! Panic-free little-endian byte cursors shared by every crate that
//! serializes an artifact into the `USNP` snapshot container.
//!
//! The writer is infallible; the reader is *strict*: every read is
//! length-checked up front and failure surfaces as
//! [`UltraError::Corrupt`] — never a panic and never a silent partial
//! read. Element counts must be validated against [`ByteReader::remaining`]
//! before any allocation sized by them (see [`ByteReader::check_count`]),
//! so hostile length fields cannot trigger huge allocations.

use crate::error::{Result, UltraError};

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (LE).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (LE).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Strict, panic-free little-endian decoder over a borrowed buffer.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string prefixed to every error (e.g. the section name).
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf`; `what` names the artifact for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn fail(&self, msg: &str) -> UltraError {
        UltraError::Corrupt(format!("{}: {msg} (offset {})", self.what, self.pos))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(self.fail(&format!("need {n} bytes, {} remain", self.remaining())));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validates a declared element count against the bytes actually left:
    /// `count` elements of at least `min_size` bytes each must fit in the
    /// remaining buffer. Returns the count as `usize` so callers can
    /// `Vec::with_capacity` it safely afterwards.
    pub fn check_count(&self, count: u64, min_size: usize, what: &str) -> Result<usize> {
        let count_us = usize::try_from(count)
            .map_err(|_| self.fail(&format!("{what} count {count} overflows usize")))?;
        let need = count_us.checked_mul(min_size.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(count_us),
            _ => Err(self.fail(&format!(
                "{what} count {count} exceeds remaining {} bytes",
                self.remaining()
            ))),
        }
    }

    /// Asserts the buffer is fully consumed — trailing bytes are corruption.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.fail(&format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f64(std::f64::consts::PI);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn short_reads_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2, 3], "short");
        assert!(matches!(r.u32(), Err(UltraError::Corrupt(_))));
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let r = ByteReader::new(&[0u8; 16], "count");
        assert!(r.check_count(u64::MAX, 4, "entries").is_err());
        assert!(r.check_count(5, 4, "entries").is_err());
        assert_eq!(r.check_count(4, 4, "entries").unwrap(), 4);
        // Zero-size elements still bound by the remaining length.
        assert!(r.check_count(17, 0, "entries").is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = ByteReader::new(&[0, 0, 0, 0, 9], "tail");
        let _ = r.u32().unwrap();
        assert!(matches!(r.expect_end(), Err(UltraError::Corrupt(_))));
    }
}

//! Deterministic randomness plumbing.
//!
//! Every stochastic step in the workspace (world generation, training-batch
//! shuffling, seed sampling, the simulated GPT-4 annotator, …) derives its RNG
//! from a single `u64` world seed plus a stream label. This guarantees that
//! (a) the whole pipeline is reproducible bit-for-bit from one number, and
//! (b) changing one component's consumption of random numbers does not
//! perturb any other component.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG used throughout the workspace.
///
/// ChaCha12 is seedable from a `u64`, portable across platforms and Rust
/// versions (unlike `StdRng`, whose algorithm is unspecified), and fast
/// enough for our workloads.
pub type UltraRng = ChaCha12Rng;

/// Mixes a seed with a stream label using the SplitMix64 finalizer.
///
/// SplitMix64 is a bijective avalanche mix: distinct `(seed, stream)` pairs
/// map to well-separated outputs even when seeds are small consecutive
/// integers (0, 1, 2, …) as they typically are in tests and sweeps.
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG stream from `(seed, stream)`.
///
/// `stream` should be a per-component constant (e.g. hash of a static name)
/// so that components draw from disjoint streams.
pub fn derive_rng(seed: u64, stream: u64) -> UltraRng {
    UltraRng::seed_from_u64(mix_seed(seed, stream))
}

/// Hashes a static component name into a stream label (FNV-1a).
pub const fn stream_label(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix_seed_separates_consecutive_seeds() {
        let a = mix_seed(0, 0);
        let b = mix_seed(1, 0);
        let c = mix_seed(0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn derive_rng_is_deterministic() {
        let mut r1 = derive_rng(1234, stream_label("world"));
        let mut r2 = derive_rng(1234, stream_label("world"));
        let xs: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_do_not_collide() {
        let mut r1 = derive_rng(1234, stream_label("world"));
        let mut r2 = derive_rng(1234, stream_label("queries"));
        let x: u64 = r1.gen();
        let y: u64 = r2.gen();
        assert_ne!(x, y);
    }

    #[test]
    fn stream_label_is_stable_const() {
        const LBL: u64 = stream_label("corpus");
        assert_eq!(LBL, stream_label("corpus"));
        assert_ne!(LBL, stream_label("corpus2"));
    }
}

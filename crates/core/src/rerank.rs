//! Segmented entity re-ranking with negative seed entities
//! (Section 5.1.1 "Entity Re-ranking", shared by RetExpan and GenExpan).
//!
//! Naively re-sorting the whole preliminary list ascending by `sco^neg`
//! "introduces a significant number of noisy entities": irrelevant entities
//! have *low* similarity to the negative seeds too, so a global sort floats
//! them to the top. Segmented re-ranking instead splits the list into
//! `⌈|L₀|/l⌉` consecutive segments and sorts only *within* each segment, so
//! re-ranking stays local and the preliminary (positive) ranking's coarse
//! structure survives.

use crate::ids::EntityId;
use crate::ranking::RankedList;

/// Re-ranks `list` in segments of `segment_len`, ordering each segment by
/// ascending `neg_score` (entities most similar to the negative seeds sink
/// to the bottom of their segment).
///
/// `segment_len == 0` or `segment_len >= list.len()` degrades to the naive
/// global re-rank the paper warns about (used by the Figure 7 `l` sweep).
/// Returned scores are fresh rank-encoding values (`len-rank`), since the
/// re-ranked order no longer reflects the original similarity scores.
pub fn segmented_rerank<F>(list: &RankedList, segment_len: usize, neg_score: F) -> RankedList
where
    F: Fn(EntityId) -> f32,
{
    let entries = list.entries();
    let n = entries.len();
    if n == 0 {
        return RankedList::default();
    }
    let seg = if segment_len == 0 { n } else { segment_len };
    let mut out: Vec<EntityId> = Vec::with_capacity(n);
    let mut scratch: Vec<(EntityId, f32)> = Vec::with_capacity(seg);
    for chunk in entries.chunks(seg) {
        scratch.clear();
        scratch.extend(chunk.iter().map(|(e, _)| (*e, neg_score(*e))));
        // Ascending by neg similarity; entity id breaks ties for
        // determinism.
        scratch.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out.extend(scratch.iter().map(|(e, _)| *e));
    }
    RankedList::from_sorted(
        out.into_iter()
            .enumerate()
            .map(|(i, e)| (e, (n - i) as f32))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eid(x: u32) -> EntityId {
        EntityId::new(x)
    }

    fn list(ids: &[u32]) -> RankedList {
        RankedList::from_sorted(
            ids.iter()
                .enumerate()
                .map(|(i, &x)| (eid(x), 100.0 - i as f32))
                .collect(),
        )
    }

    #[test]
    fn reranking_is_local_to_segments() {
        // neg score = entity id; segment 2.
        let l = list(&[3, 1, 4, 2]);
        let r = segmented_rerank(&l, 2, |e| e.0 as f32);
        let got: Vec<u32> = r.entities().map(|e| e.0).collect();
        // Segment [3,1] → [1,3]; segment [4,2] → [2,4].
        assert_eq!(got, vec![1, 3, 2, 4]);
    }

    #[test]
    fn zero_segment_len_is_global_sort() {
        let l = list(&[3, 1, 4, 2]);
        let r = segmented_rerank(&l, 0, |e| e.0 as f32);
        let got: Vec<u32> = r.entities().map(|e| e.0).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn segment_one_is_identity() {
        let l = list(&[3, 1, 4, 2]);
        let r = segmented_rerank(&l, 1, |e| e.0 as f32);
        let got: Vec<u32> = r.entities().map(|e| e.0).collect();
        assert_eq!(got, vec![3, 1, 4, 2]);
    }

    #[test]
    fn high_neg_similarity_sinks_within_segment() {
        let l = list(&[10, 11, 12, 13]);
        // Entity 10 is very similar to negative seeds.
        let r = segmented_rerank(&l, 4, |e| if e.0 == 10 { 9.0 } else { 0.0 });
        assert_eq!(r.rank_of(eid(10)), Some(3));
    }

    #[test]
    fn output_preserves_membership_and_length() {
        let l = list(&[5, 6, 7, 8, 9]);
        let r = segmented_rerank(&l, 3, |_| 0.0);
        assert_eq!(r.len(), 5);
        for e in l.entities() {
            assert!(r.rank_of(e).is_some());
        }
    }

    #[test]
    fn empty_list_is_fine() {
        let r = segmented_rerank(&RankedList::default(), 10, |_| 0.0);
        assert!(r.is_empty());
    }
}

//! `ultra-core` — shared vocabulary for the UltraWiki reproduction workspace.
//!
//! Every other crate in this workspace speaks in terms of the identifiers and
//! records defined here: entities, attributes, fine-grained and
//! ultra-fine-grained semantic classes, queries (positive *and* negative seed
//! entities), the sentence corpus, and ranked expansion results.
//!
//! The types mirror Section 3 ("Task Formulation") of the paper:
//!
//! * a query `S = S^pos ∪ S^neg` ([`Query`]),
//! * a candidate vocabulary `V` (the set of all [`EntityId`]s in a generated
//!   dataset),
//! * a corpus `D` supplying contextual sentences per entity ([`Corpus`]),
//! * positive/negative target entity sets `P` and `N` ([`UltraClass`]).

pub mod attr;
pub mod bytes;
pub mod class;
pub mod corpus;
pub mod entity;
pub mod error;
pub mod ids;
pub mod query;
pub mod ranking;
pub mod rerank;
pub mod rng;
pub mod stable;

pub use attr::{AttrConstraint, AttributeSchema, AttributeValueId};
pub use bytes::{ByteReader, ByteWriter};
pub use class::{CoarseType, FineClass, UltraClass};
pub use corpus::{Corpus, Sentence};
pub use entity::Entity;
pub use error::{Result, UltraError};
pub use ids::{AttributeId, ClassId, EntityId, SentenceId, TokenId, UltraClassId};
pub use query::Query;
pub use ranking::RankedList;
pub use rerank::segmented_rerank;
pub use rng::{derive_rng, mix_seed};
pub use stable::{stable_hash64, StableBuildHasher, StableHasher};

//! Small, copyable, strongly-typed identifiers.
//!
//! Every index into the dataset is wrapped in a newtype so that an entity
//! index can never be confused with a token or sentence index. All ids are
//! plain array offsets assigned densely from zero by the generator, which
//! keeps lookups O(1) against `Vec` storage (no hashing on hot paths).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Wraps a dense array offset as a typed id.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw offset for indexing into `Vec` storage.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` offset, panicking on overflow.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                debug_assert!(idx <= <$repr>::MAX as usize);
                Self(idx as $repr)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Index of an entity in the candidate vocabulary `V`.
    EntityId,
    u32
);
define_id!(
    /// Index of a token in the interned text vocabulary.
    TokenId,
    u32
);
define_id!(
    /// Index of a fine-grained semantic class (e.g. *China cities*).
    ClassId,
    u16
);
define_id!(
    /// Index of an ultra-fine-grained semantic class derived from a
    /// fine-grained class plus positive/negative attribute constraints.
    UltraClassId,
    u32
);
define_id!(
    /// Index of a sentence in the corpus `D`.
    SentenceId,
    u32
);
define_id!(
    /// Index of an attribute schema (global across all fine-grained classes).
    AttributeId,
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let e = EntityId::from_index(42);
        assert_eq!(e.index(), 42);
        assert_eq!(usize::from(e), 42);
        assert_eq!(e, EntityId::new(42));
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(EntityId::new(1) < EntityId::new(2));
        assert!(TokenId::new(0) < TokenId::new(u32::MAX));
    }

    #[test]
    fn debug_and_display_render_raw_value() {
        assert_eq!(format!("{:?}", ClassId::new(7)), "ClassId(7)");
        assert_eq!(format!("{}", ClassId::new(7)), "7");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SentenceId::default(), SentenceId::new(0));
    }
}

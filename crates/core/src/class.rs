//! Fine-grained and ultra-fine-grained semantic classes.

use crate::attr::AttrConstraint;
use crate::ids::{AttributeId, ClassId, EntityId, UltraClassId};
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// The five coarse-grained entity types covered by UltraWiki (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoarseType {
    /// e.g. *Canada universities*.
    Organization,
    /// e.g. *China cities*, *Countries*, *US airports*, *US national monuments*.
    Location,
    /// e.g. *Mobile phone brands*, *Percussion instruments*.
    Product,
    /// e.g. *Nobel laureates*, *US presidents*.
    Person,
    /// e.g. *Chemical elements*.
    Miscellaneous,
}

/// One fine-grained semantic class (concept level, Table 11 row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FineClass {
    /// Dense class id.
    pub id: ClassId,
    /// Human-readable name, e.g. `"China cities"`.
    pub name: String,
    /// Coarse category the class belongs to.
    pub coarse: CoarseType,
    /// The 2–3 attributes annotated for this class.
    pub attributes: Vec<AttributeId>,
    /// Member entities (dense, sorted).
    pub entities: Vec<EntityId>,
}

impl FineClass {
    /// Number of member entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the class has no members (never true for generated worlds).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// One ultra-fine-grained semantic class (Section 4.1 Step 4).
///
/// Jointly defined by a fine-grained class, a positive constraint
/// `(A^pos, V^pos)` and a negative constraint `(A^neg, V^neg)`. The
/// *positive target entities* `P` satisfy the positive constraint; the
/// *negative target entities* `N` satisfy the negative constraint (and are
/// the entities a model must *not* expand). When `A^pos = A^neg` the two
/// sets are disjoint; when they differ the sets may overlap — overlapping
/// entities are excluded from both targets, matching the task's requirement
/// that expanded entities share `V^pos` while being distinct from `V^neg`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UltraClass {
    /// Dense ultra-class id.
    pub id: UltraClassId,
    /// Parent fine-grained class.
    pub fine: ClassId,
    /// Positive attribute constraint `(A^pos, V^pos)`.
    pub pos: AttrConstraint,
    /// Negative attribute constraint `(A^neg, V^neg)`.
    pub neg: AttrConstraint,
    /// Positive target entities `P` (satisfy `pos`, not `neg`).
    pub pos_targets: Vec<EntityId>,
    /// Negative target entities `N` (satisfy `neg`, not `pos`).
    pub neg_targets: Vec<EntityId>,
    /// The 3 queries sampled for this class.
    pub queries: Vec<Query>,
}

impl UltraClass {
    /// Whether positive and negative constraints cover the same attributes
    /// (`A^pos = A^neg`, Table 4's easier regime).
    #[inline]
    pub fn same_attribute_sets(&self) -> bool {
        self.pos.same_attributes(&self.neg)
    }

    /// `(|A^pos|, |A^neg|)` — Table 6's grouping key.
    #[inline]
    pub fn arity(&self) -> (usize, usize) {
        (self.pos.arity(), self.neg.arity())
    }

    /// Human-readable description, e.g.
    /// `"China cities [<province>=Henan | NOT <prefecture>=Prefecture-level]"`.
    pub fn describe(&self, fine_name: &str, attr_name: impl Fn(AttributeId) -> String) -> String {
        let fmt = |c: &AttrConstraint| {
            c.required
                .iter()
                .map(|(a, v)| format!("{}={}", attr_name(*a), v.0))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("{fine_name} [{} | NOT {}]", fmt(&self.pos), fmt(&self.neg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeValueId;

    fn constraint(pairs: &[(u16, u16)]) -> AttrConstraint {
        AttrConstraint::new(
            pairs
                .iter()
                .map(|&(a, v)| (AttributeId::new(a), AttributeValueId(v)))
                .collect(),
        )
    }

    fn ultra(pos: &[(u16, u16)], neg: &[(u16, u16)]) -> UltraClass {
        UltraClass {
            id: UltraClassId::new(0),
            fine: ClassId::new(0),
            pos: constraint(pos),
            neg: constraint(neg),
            pos_targets: vec![],
            neg_targets: vec![],
            queries: vec![],
        }
    }

    #[test]
    fn same_attribute_sets_detects_overlap_regimes() {
        assert!(ultra(&[(0, 1)], &[(0, 2)]).same_attribute_sets());
        assert!(!ultra(&[(0, 1)], &[(1, 2)]).same_attribute_sets());
        assert!(ultra(&[(0, 1), (1, 0)], &[(1, 3), (0, 2)]).same_attribute_sets());
    }

    #[test]
    fn arity_reports_constraint_sizes() {
        assert_eq!(ultra(&[(0, 1)], &[(1, 2), (2, 0)]).arity(), (1, 2));
    }

    #[test]
    fn describe_renders_both_constraints() {
        let u = ultra(&[(0, 1)], &[(1, 2)]);
        let s = u.describe("China cities", |a| format!("attr{}", a.0));
        assert!(s.contains("China cities"));
        assert!(s.contains("attr0=1"));
        assert!(s.contains("NOT attr1=2"));
    }
}

//! Attribute schemas and attribute-value constraints.
//!
//! Each fine-grained semantic class owns 2–3 *attributes* (Section 4.1
//! Step 3; e.g. *Mobile phone brands* has `<loc-continent>` and `<status>`).
//! An attribute has a small closed set of values; every in-class entity is
//! annotated with exactly one value per attribute. Ultra-fine-grained classes
//! are built from value constraints over these attributes (Step 4).

use crate::ids::AttributeId;
use serde::{Deserialize, Serialize};

/// Index of a value within an [`AttributeSchema`]'s value list.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AttributeValueId(pub u16);

impl AttributeValueId {
    /// Returns the raw offset into the schema's value table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// The schema of one attribute of a fine-grained semantic class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttributeSchema {
    /// Global attribute id.
    pub id: AttributeId,
    /// Human-readable name, e.g. `"<province>"`.
    pub name: String,
    /// Closed set of possible values, e.g. `["Henan", "Hebei", …]`.
    pub values: Vec<String>,
    /// Probability that a sentence mentioning an entity also carries a
    /// lexical marker of the entity's value for this attribute. Low values
    /// make the attribute "long-tail": hard to infer from context.
    pub signal_rate: f64,
}

impl AttributeSchema {
    /// Number of possible values.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Resolves a value id to its string form.
    pub fn value_name(&self, v: AttributeValueId) -> &str {
        &self.values[v.index()]
    }
}

/// One conjunction of `attribute = value` requirements.
///
/// `A^pos`/`A^neg` with their picked values `V^pos`/`V^neg` from Section 4.1
/// Step 4 are each represented as one `AttrConstraint`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AttrConstraint {
    /// `(attribute, required value)` pairs; an entity *satisfies* the
    /// constraint iff it matches every pair.
    pub required: Vec<(AttributeId, AttributeValueId)>,
}

impl AttrConstraint {
    /// Builds a constraint from `(attribute, value)` pairs.
    pub fn new(required: Vec<(AttributeId, AttributeValueId)>) -> Self {
        Self { required }
    }

    /// Number of constrained attributes (`|A^pos|` or `|A^neg|`).
    #[inline]
    pub fn arity(&self) -> usize {
        self.required.len()
    }

    /// The set of constrained attribute ids.
    pub fn attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.required.iter().map(|(a, _)| *a)
    }

    /// Tests whether an entity's assignments satisfy every requirement.
    ///
    /// `assignment` maps attributes to values for one entity; entities store
    /// their assignments sorted by attribute id, so a linear scan suffices
    /// (arity is ≤ 3 in practice).
    pub fn satisfied_by(&self, assignment: &[(AttributeId, AttributeValueId)]) -> bool {
        self.required
            .iter()
            .all(|req| assignment.iter().any(|have| have == req))
    }

    /// Whether two constraints cover exactly the same attribute set
    /// (the paper's `A^pos = A^neg` case of Table 4).
    pub fn same_attributes(&self, other: &Self) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        let mut a: Vec<_> = self.attributes().collect();
        let mut b: Vec<_> = other.attributes().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(x: u16) -> AttributeId {
        AttributeId::new(x)
    }
    fn vid(x: u16) -> AttributeValueId {
        AttributeValueId(x)
    }

    #[test]
    fn constraint_satisfaction_requires_all_pairs() {
        let c = AttrConstraint::new(vec![(aid(0), vid(1)), (aid(2), vid(0))]);
        let full = vec![(aid(0), vid(1)), (aid(1), vid(5)), (aid(2), vid(0))];
        let partial = vec![(aid(0), vid(1)), (aid(2), vid(3))];
        assert!(c.satisfied_by(&full));
        assert!(!c.satisfied_by(&partial));
        assert!(!c.satisfied_by(&[]));
    }

    #[test]
    fn empty_constraint_is_trivially_satisfied() {
        let c = AttrConstraint::default();
        assert!(c.satisfied_by(&[]));
        assert_eq!(c.arity(), 0);
    }

    #[test]
    fn same_attributes_ignores_values_and_order() {
        let a = AttrConstraint::new(vec![(aid(0), vid(1)), (aid(3), vid(0))]);
        let b = AttrConstraint::new(vec![(aid(3), vid(9)), (aid(0), vid(2))]);
        let c = AttrConstraint::new(vec![(aid(0), vid(1))]);
        assert!(a.same_attributes(&b));
        assert!(!a.same_attributes(&c));
    }

    #[test]
    fn schema_lookups() {
        let s = AttributeSchema {
            id: aid(4),
            name: "<province>".into(),
            values: vec!["Henan".into(), "Hebei".into()],
            signal_rate: 0.6,
        };
        assert_eq!(s.cardinality(), 2);
        assert_eq!(s.value_name(vid(1)), "Hebei");
    }
}

//! The sentence corpus `D`.
//!
//! Each sentence is a token-id sequence with marked entity mentions. The
//! corpus additionally maintains the per-entity posting list
//! `{e_i, s_1^i, …, s_n^i}` from the task formulation, so "all sentences
//! containing entity e" is an O(1) lookup.

use crate::ids::{EntityId, SentenceId, TokenId};
use serde::{Deserialize, Serialize};

/// One tokenized sentence with entity-mention annotations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sentence {
    /// Token ids in order.
    pub tokens: Vec<TokenId>,
    /// `(position, entity)` pairs: `tokens[position]` is the mention token of
    /// `entity`. Positions are strictly increasing.
    pub mentions: Vec<(usize, EntityId)>,
}

impl Sentence {
    /// Sentence length in tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sentence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Positions at which `entity` is mentioned.
    pub fn mention_positions(&self, entity: EntityId) -> impl Iterator<Item = usize> + '_ {
        self.mentions
            .iter()
            .filter(move |(_, e)| *e == entity)
            .map(|(p, _)| *p)
    }

    /// Returns a copy of the token sequence with every mention of `entity`
    /// replaced by `mask` — the `[MASK]` construction of Section 5.1.1.
    pub fn masked(&self, entity: EntityId, mask: TokenId) -> Vec<TokenId> {
        let mut toks = self.tokens.clone();
        for (pos, e) in &self.mentions {
            if *e == entity {
                toks[*pos] = mask;
            }
        }
        toks
    }
}

/// The corpus `D`: sentences plus a per-entity posting index.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Corpus {
    sentences: Vec<Sentence>,
    /// `by_entity[e]` lists the sentences mentioning entity `e`.
    by_entity: Vec<Vec<SentenceId>>,
}

impl Corpus {
    /// Creates an empty corpus able to index `num_entities` entities.
    pub fn with_entities(num_entities: usize) -> Self {
        Self {
            sentences: Vec::new(),
            by_entity: vec![Vec::new(); num_entities],
        }
    }

    /// Appends a sentence, updating posting lists. Returns its id.
    pub fn push(&mut self, sentence: Sentence) -> SentenceId {
        let id = SentenceId::from_index(self.sentences.len());
        for (_, e) in &sentence.mentions {
            let slot = &mut self.by_entity[e.index()];
            // A sentence can mention an entity twice; store it once.
            if slot.last() != Some(&id) {
                slot.push(id);
            }
        }
        self.sentences.push(sentence);
        id
    }

    /// Number of sentences.
    #[inline]
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the corpus has no sentences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// All sentences in insertion order.
    #[inline]
    pub fn sentences(&self) -> &[Sentence] {
        &self.sentences
    }

    /// Looks up one sentence.
    #[inline]
    pub fn sentence(&self, id: SentenceId) -> &Sentence {
        &self.sentences[id.index()]
    }

    /// Sentences mentioning `entity` (the posting list `{s_1^e, …}`).
    #[inline]
    pub fn sentences_of(&self, entity: EntityId) -> &[SentenceId] {
        &self.by_entity[entity.index()]
    }

    /// Number of sentences mentioning `entity`.
    #[inline]
    pub fn mention_count(&self, entity: EntityId) -> usize {
        self.by_entity[entity.index()].len()
    }

    /// Total tokens across all sentences.
    pub fn total_tokens(&self) -> usize {
        self.sentences.iter().map(Sentence::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(x: u32) -> TokenId {
        TokenId::new(x)
    }
    fn eid(x: u32) -> EntityId {
        EntityId::new(x)
    }

    fn sample_sentence() -> Sentence {
        Sentence {
            tokens: vec![tid(10), tid(11), tid(12), tid(11)],
            mentions: vec![(1, eid(0)), (3, eid(0))],
        }
    }

    #[test]
    fn masked_replaces_all_mentions_of_target_only() {
        let s = Sentence {
            tokens: vec![tid(1), tid(2), tid(3)],
            mentions: vec![(0, eid(0)), (2, eid(1))],
        };
        let masked = s.masked(eid(0), tid(99));
        assert_eq!(masked, vec![tid(99), tid(2), tid(3)]);
    }

    #[test]
    fn corpus_posting_lists_deduplicate_within_sentence() {
        let mut c = Corpus::with_entities(2);
        let id = c.push(sample_sentence());
        assert_eq!(c.sentences_of(eid(0)), &[id]);
        assert_eq!(c.mention_count(eid(0)), 1);
        assert_eq!(c.mention_count(eid(1)), 0);
    }

    #[test]
    fn corpus_accumulates_across_sentences() {
        let mut c = Corpus::with_entities(1);
        c.push(Sentence {
            tokens: vec![tid(5)],
            mentions: vec![(0, eid(0))],
        });
        c.push(Sentence {
            tokens: vec![tid(6)],
            mentions: vec![(0, eid(0))],
        });
        assert_eq!(c.mention_count(eid(0)), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_tokens(), 2);
    }

    #[test]
    fn mention_positions_filters_by_entity() {
        let s = sample_sentence();
        let got: Vec<_> = s.mention_positions(eid(0)).collect();
        assert_eq!(got, vec![1, 3]);
    }
}

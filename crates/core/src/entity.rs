//! Entities of the candidate vocabulary `V`.

use crate::attr::{AttrConstraint, AttributeValueId};
use crate::ids::{AttributeId, ClassId, EntityId};
use serde::{Deserialize, Serialize};

/// One entity of the candidate vocabulary.
///
/// In-class entities carry a fine-grained class and a full attribute
/// assignment; distractor entities (sampled "from Wikipedia pages" in the
/// paper's Step 1) carry neither.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Entity {
    /// Dense id within the vocabulary.
    pub id: EntityId,
    /// Unique surface form, e.g. `"Xinyang"`.
    pub name: String,
    /// Fine-grained class membership; `None` for distractors.
    pub class: Option<ClassId>,
    /// `(attribute, value)` assignment, sorted by attribute id.
    /// Empty for distractors.
    pub attrs: Vec<(AttributeId, AttributeValueId)>,
    /// Relative corpus frequency weight (Zipf-skewed). Governs how many
    /// sentences mention the entity; low-weight entities are the paper's
    /// "long-tail" entities with scarce context.
    pub freq_weight: f64,
}

impl Entity {
    /// Whether the entity belongs to a fine-grained class (not a distractor).
    #[inline]
    pub fn is_in_class(&self) -> bool {
        self.class.is_some()
    }

    /// Looks up this entity's value for one attribute.
    pub fn value_of(&self, attr: AttributeId) -> Option<AttributeValueId> {
        self.attrs.iter().find(|(a, _)| *a == attr).map(|(_, v)| *v)
    }

    /// Whether the entity satisfies an attribute-value constraint.
    #[inline]
    pub fn satisfies(&self, constraint: &AttrConstraint) -> bool {
        constraint.satisfied_by(&self.attrs)
    }

    /// Number of attribute values shared with another entity.
    ///
    /// The task formulation's ideal feature space positions entities closer
    /// the more attribute values they share; tests and the Figure 4 heat map
    /// use this as the ground-truth affinity.
    pub fn shared_attr_values(&self, other: &Entity) -> usize {
        self.attrs
            .iter()
            .filter(|pair| other.attrs.contains(pair))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(id: u32, class: Option<u16>, attrs: Vec<(u16, u16)>) -> Entity {
        Entity {
            id: EntityId::new(id),
            name: format!("e{id}"),
            class: class.map(ClassId::new),
            attrs: attrs
                .into_iter()
                .map(|(a, v)| (AttributeId::new(a), AttributeValueId(v)))
                .collect(),
            freq_weight: 1.0,
        }
    }

    #[test]
    fn distractors_have_no_class() {
        let d = ent(0, None, vec![]);
        assert!(!d.is_in_class());
        assert_eq!(d.value_of(AttributeId::new(0)), None);
    }

    #[test]
    fn value_lookup_and_constraint_satisfaction() {
        let e = ent(1, Some(0), vec![(0, 2), (1, 1)]);
        assert_eq!(e.value_of(AttributeId::new(1)), Some(AttributeValueId(1)));
        let ok = AttrConstraint::new(vec![(AttributeId::new(0), AttributeValueId(2))]);
        let bad = AttrConstraint::new(vec![(AttributeId::new(0), AttributeValueId(3))]);
        assert!(e.satisfies(&ok));
        assert!(!e.satisfies(&bad));
    }

    #[test]
    fn shared_attr_values_counts_exact_pairs() {
        let a = ent(1, Some(0), vec![(0, 2), (1, 1)]);
        let b = ent(2, Some(0), vec![(0, 2), (1, 3)]);
        let c = ent(3, Some(0), vec![(0, 2), (1, 1)]);
        assert_eq!(a.shared_attr_values(&b), 1);
        assert_eq!(a.shared_attr_values(&c), 2);
        assert_eq!(a.shared_attr_values(&a), 2);
    }
}

//! Deterministic hashing for cache keys and fingerprints.
//!
//! `std`'s default `HashMap` hasher is seeded randomly per process (DoS
//! hardening), so the same key hashes differently across runs. That is fine
//! for in-memory lookups but useless for anything observable: cache shard
//! assignment, logged key fingerprints, or cross-run comparisons. This
//! module provides a fixed-seed FNV-1a 64-bit [`Hasher`] so that every
//! `Hash` type in the workspace (e.g. [`crate::Query`],
//! [`crate::RankedList`]) has one stable `u64` identity.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`] with no per-process seed: the same bytes
/// always produce the same hash, in every run, on every platform.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` plugging [`StableHasher`] into `HashMap`/`HashSet`.
pub type StableBuildHasher = BuildHasherDefault<StableHasher>;

/// The stable 64-bit hash of any [`Hash`] value.
pub fn stable_hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, Query, UltraClassId};

    #[test]
    fn same_value_same_hash() {
        assert_eq!(stable_hash64("abc"), stable_hash64("abc"));
        assert_ne!(stable_hash64("abc"), stable_hash64("abd"));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(StableHasher::default().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn queries_hash_stably() {
        let q = || {
            Query::new(
                UltraClassId::new(3),
                vec![EntityId::new(1), EntityId::new(2)],
                vec![EntityId::new(9)],
            )
        };
        assert_eq!(stable_hash64(&q()), stable_hash64(&q()));
        let mut other = q();
        other.pos_seeds.push(EntityId::new(4));
        assert_ne!(stable_hash64(&q()), stable_hash64(&other));
    }
}

//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, UltraError>;

/// Errors surfaced by the UltraWiki reproduction crates.
///
/// The library is deterministic and in-memory, so most failure modes are
/// configuration mistakes (an invalid world config, a query referencing an
/// unknown entity) rather than runtime faults.
#[derive(Debug, Clone, PartialEq)]
pub enum UltraError {
    /// A generator or model configuration is internally inconsistent.
    InvalidConfig(String),
    /// A query or API call referenced an entity outside the vocabulary `V`.
    UnknownEntity(String),
    /// A query or API call referenced an unknown semantic class.
    UnknownClass(String),
    /// A numeric routine received inputs it cannot process
    /// (e.g. mismatched vector dimensions).
    Shape(String),
    /// Training or decoding was asked to run with an empty input set.
    EmptyInput(String),
    /// A serialized artifact failed validation while being decoded
    /// (truncated payload, out-of-range id, non-canonical ordering, …).
    Corrupt(String),
}

impl fmt::Display for UltraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UltraError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UltraError::UnknownEntity(msg) => write!(f, "unknown entity: {msg}"),
            UltraError::UnknownClass(msg) => write!(f, "unknown semantic class: {msg}"),
            UltraError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            UltraError::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            UltraError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for UltraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = UltraError::Shape("expected 64, got 32".into());
        assert_eq!(err.to_string(), "shape mismatch: expected 64, got 32");
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn std::error::Error> = Box::new(UltraError::EmptyInput("seeds".into()));
        assert!(err.to_string().contains("seeds"));
    }
}

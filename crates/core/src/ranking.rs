//! Ranked expansion results.

use crate::ids::EntityId;
use serde::{Deserialize, Serialize};

/// A ranked list of candidate entities with scores, best first.
///
/// This is the output of every expansion framework and the input of every
/// metric. The invariant — scores non-increasing, entities unique — is
/// enforced by the constructors and checked by property tests.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RankedList {
    entries: Vec<(EntityId, f32)>,
}

/// Equality is *bit-exact*: two lists are equal iff they rank the same
/// entities in the same order with byte-identical IEEE-754 scores. This is
/// the determinism contract's notion of "the same output" (see
/// `tests/determinism.rs`), and it makes `Eq`/`Hash` lawful even though the
/// score type is `f32` (`NaN` compares equal to itself bit-wise, `0.0` and
/// `-0.0` differ — both stricter than float value equality, never weaker
/// for the finite, deterministic scores the constructors guarantee).
impl PartialEq for RankedList {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
    }
}

impl Eq for RankedList {}

impl std::hash::Hash for RankedList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.entries.len().hash(state);
        for (e, s) in &self.entries {
            e.hash(state);
            s.to_bits().hash(state);
        }
    }
}

impl RankedList {
    /// Builds a ranked list from unsorted `(entity, score)` pairs.
    ///
    /// Sorts by descending score with entity id as a deterministic
    /// tie-breaker, and keeps only the first occurrence of each entity.
    pub fn from_scores(mut scores: Vec<(EntityId, f32)>) -> Self {
        scores.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut seen = std::collections::HashSet::with_capacity(scores.len());
        scores.retain(|(e, _)| seen.insert(*e));
        Self { entries: scores }
    }

    /// Builds a ranked list from pairs already sorted best-first.
    ///
    /// Debug builds assert the ordering invariant.
    pub fn from_sorted(entries: Vec<(EntityId, f32)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].1 >= w[1].1),
            "RankedList::from_sorted requires non-increasing scores"
        );
        Self { entries }
    }

    /// Number of ranked entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ranked `(entity, score)` pairs, best first.
    #[inline]
    pub fn entries(&self) -> &[(EntityId, f32)] {
        &self.entries
    }

    /// The ranked entities, best first, without scores.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.entries.iter().map(|(e, _)| *e)
    }

    /// The top-`k` prefix as a new list.
    pub fn truncated(&self, k: usize) -> RankedList {
        RankedList {
            entries: self.entries.iter().take(k).copied().collect(),
        }
    }

    /// Removes the given entities (typically the query's seeds) preserving
    /// order.
    pub fn without(&self, exclude: &[EntityId]) -> RankedList {
        RankedList {
            entries: self
                .entries
                .iter()
                .filter(|(e, _)| !exclude.contains(e))
                .copied()
                .collect(),
        }
    }

    /// Rank (0-based) of an entity, if present.
    pub fn rank_of(&self, e: EntityId) -> Option<usize> {
        self.entries.iter().position(|(x, _)| *x == e)
    }

    /// Consumes the list, returning the underlying pairs.
    pub fn into_entries(self) -> Vec<(EntityId, f32)> {
        self.entries
    }

    /// Debug-build invariant check for pipeline exit points: every score
    /// finite, scores non-increasing, no duplicate entity ids.
    ///
    /// `context` names the producing pipeline for the assertion message.
    /// Compiles to nothing in release builds.
    pub fn debug_validate(&self, context: &str) {
        debug_assert!(
            self.entries.iter().all(|(_, s)| s.is_finite()),
            "{context}: ranked list contains a non-finite score"
        );
        debug_assert!(
            self.entries.windows(2).all(|w| w[0].1 >= w[1].1),
            "{context}: ranked-list scores are not non-increasing"
        );
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::with_capacity(self.entries.len());
                self.entries.iter().all(|(e, _)| seen.insert(*e))
            },
            "{context}: ranked list contains a duplicate entity id"
        );
        let _ = context; // referenced only by the debug-build assertions
    }
}

impl FromIterator<(EntityId, f32)> for RankedList {
    fn from_iter<T: IntoIterator<Item = (EntityId, f32)>>(iter: T) -> Self {
        Self::from_scores(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eid(x: u32) -> EntityId {
        EntityId::new(x)
    }

    #[test]
    fn from_scores_sorts_descending_with_stable_ties() {
        let l = RankedList::from_scores(vec![(eid(3), 0.5), (eid(1), 0.9), (eid(2), 0.5)]);
        let got: Vec<_> = l.entities().collect();
        assert_eq!(got, vec![eid(1), eid(2), eid(3)]);
    }

    #[test]
    fn from_scores_deduplicates_keeping_best() {
        let l = RankedList::from_scores(vec![(eid(1), 0.2), (eid(1), 0.9), (eid(2), 0.5)]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.rank_of(eid(1)), Some(0));
        assert_eq!(l.entries()[0].1, 0.9);
    }

    #[test]
    fn truncated_and_without() {
        let l = RankedList::from_scores(vec![(eid(1), 3.0), (eid(2), 2.0), (eid(3), 1.0)]);
        assert_eq!(l.truncated(2).len(), 2);
        let w = l.without(&[eid(2)]);
        let got: Vec<_> = w.entities().collect();
        assert_eq!(got, vec![eid(1), eid(3)]);
    }

    #[test]
    fn rank_of_missing_is_none() {
        let l = RankedList::from_scores(vec![(eid(1), 1.0)]);
        assert_eq!(l.rank_of(eid(9)), None);
    }

    #[test]
    fn equality_and_hashing_are_bit_exact() {
        use crate::stable::stable_hash64;
        let a = RankedList::from_scores(vec![(eid(1), 1.0), (eid(2), 0.5)]);
        let b = RankedList::from_scores(vec![(eid(1), 1.0), (eid(2), 0.5)]);
        assert_eq!(a, b);
        assert_eq!(stable_hash64(&a), stable_hash64(&b));
        let c = RankedList::from_scores(vec![(eid(1), 1.0), (eid(2), 0.5000001)]);
        assert_ne!(a, c);
        assert_ne!(stable_hash64(&a), stable_hash64(&c));
        // Bit-exact equality is reflexive even for NaN scores, keeping `Eq`
        // lawful on lists that escaped the finite-score invariant.
        let n = RankedList::from_scores(vec![(eid(1), f32::NAN)]);
        assert_eq!(n, n.clone());
    }

    #[test]
    fn handles_nan_scores_without_panicking() {
        let l = RankedList::from_scores(vec![(eid(1), f32::NAN), (eid(2), 1.0)]);
        assert_eq!(l.len(), 2);
    }
}

//! Criterion micro-benchmarks of the performance-critical kernels:
//! context encoding, BM25 search, trie-constrained beam steps, segmented
//! re-ranking, and end-to-end per-query expansion of both frameworks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ultra_core::segmented_rerank;
use ultra_data::{World, WorldConfig};
use ultra_embed::{EncoderConfig, EntityEncoder};
use ultra_genexpan::{GenExpan, GenExpanConfig};
use ultra_lm::{constrained_entity_beam, BeamParams, NgramLm};
use ultra_retexpan::{RetExpan, RetExpanConfig};
use ultra_text::{Bm25Index, Bm25Params, PrefixTrie};

fn bench_world() -> World {
    World::generate(WorldConfig::tiny()).expect("world")
}

fn bench_encoding(c: &mut Criterion) {
    let world = bench_world();
    let enc = EntityEncoder::new(
        &world,
        EncoderConfig {
            epochs: 0,
            ..EncoderConfig::default()
        },
    );
    let e = world.classes[0].entities[0];
    let sid = world.corpus.sentences_of(e)[0];
    let sentence = world.corpus.sentence(sid);
    c.bench_function("encode_context_bag", |b| {
        b.iter(|| {
            let bag = enc.context_bag(&world, sentence, e, &[]);
            std::hint::black_box(enc.encode_bag(&bag))
        })
    });
}

fn bench_bm25(c: &mut Criterion) {
    let world = bench_world();
    let docs: Vec<&[ultra_core::TokenId]> = world
        .corpus
        .sentences()
        .iter()
        .map(|s| s.tokens.as_slice())
        .collect();
    let index = Bm25Index::build(docs.iter().copied(), Bm25Params::default());
    let query = world
        .corpus
        .sentence(ultra_core::SentenceId::new(0))
        .tokens
        .clone();
    c.bench_function("bm25_search_top20", |b| {
        b.iter(|| std::hint::black_box(index.search(&query, 20)))
    });
}

fn bench_beam(c: &mut Criterion) {
    let world = bench_world();
    let mut lm = NgramLm::new(
        5,
        ultra_lm::Smoothing::AbsoluteDiscount(0.75),
        world.vocab.len(),
    );
    let docs = world.further_pretrain_docs();
    lm.train(docs.iter().map(Vec::as_slice));
    let mut trie = PrefixTrie::new();
    for e in &world.entities {
        trie.insert(&world.name_tokens[e.id.index()], e.id);
    }
    let q = &world.ultra_classes[0].queries[0];
    let mut prompt = Vec::new();
    for &s in q.pos_seeds.iter().take(3) {
        prompt.extend_from_slice(&world.name_tokens[s.index()]);
        prompt.push(world.list_sep);
    }
    c.bench_function("constrained_beam_40", |b| {
        b.iter(|| {
            std::hint::black_box(constrained_entity_beam(
                &lm,
                &prompt,
                &trie,
                BeamParams::default(),
            ))
        })
    });
}

fn bench_rerank(c: &mut Criterion) {
    let list: ultra_core::RankedList = (0..200u32)
        .map(|i| (ultra_core::EntityId::new(i), 200.0 - i as f32))
        .collect();
    c.bench_function("segmented_rerank_200", |b| {
        b.iter(|| std::hint::black_box(segmented_rerank(&list, 20, |e| (e.0 % 17) as f32)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let world = bench_world();
    let ret = RetExpan::train(
        &world,
        EncoderConfig {
            epochs: 2,
            dim: 48,
            neg_samples: 48,
            ..EncoderConfig::default()
        },
        RetExpanConfig::default(),
    );
    let gen = GenExpan::train(&world, GenExpanConfig::default());
    let (u, q) = world.queries().next().unwrap();
    c.bench_function("retexpan_expand_query", |b| {
        b.iter_batched(
            || q.clone(),
            |q| std::hint::black_box(ret.expand(&world, &q)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("genexpan_expand_query", |b| {
        b.iter_batched(
            || q.clone(),
            |q| std::hint::black_box(gen.expand(&world, u, &q)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoding, bench_bm25, bench_beam, bench_rerank, bench_end_to_end
}
criterion_main!(benches);

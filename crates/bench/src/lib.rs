//! `ultra-bench` — experiment harnesses regenerating every table and
//! figure of the paper's evaluation, plus Criterion micro-benchmarks.
//!
//! Each `expt_*` binary reproduces one table/figure (see DESIGN.md §3 for
//! the index). All binaries honour two environment variables:
//!
//! * `ULTRA_PROFILE` — `small` (default; minutes) or `paper` (Table 11
//!   scale);
//! * `ULTRA_SEED` — world seed (default 42).
//!
//! Results print as aligned text tables and are also dumped as JSON to
//! `target/experiments/<name>.json` so EXPERIMENTS.md can quote them.

pub mod fmt;
pub mod methods;
pub mod suite;

pub use methods::Method;
pub use suite::{dump_json, world_from_env, Suite};

//! Shared experiment plumbing: world construction, trained-component
//! caching, result dumping.

use std::io::Write;
use ultra_data::{World, WorldConfig};

/// Builds the world selected by `ULTRA_PROFILE` / `ULTRA_SEED`.
pub fn world_from_env() -> World {
    let profile = std::env::var("ULTRA_PROFILE").unwrap_or_else(|_| "small".into());
    let seed: u64 = std::env::var("ULTRA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = match profile.as_str() {
        "paper" => WorldConfig::paper(),
        "tiny" => WorldConfig::tiny(),
        _ => WorldConfig::small(),
    };
    eprintln!("[suite] generating world (profile={profile}, seed={seed})…");
    let world = World::generate(cfg.with_seed(seed)).expect("world generation");
    eprintln!(
        "[suite] world ready: {} entities, {} sentences, {} ultra classes, {} queries",
        world.num_entities(),
        world.corpus.len(),
        world.ultra_classes.len(),
        world.ultra_classes.iter().map(|u| u.queries.len()).sum::<usize>()
    );
    world
}

/// Writes a JSON value to `target/experiments/<name>.json`.
pub fn dump_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap());
        eprintln!("[suite] wrote {}", path.display());
    }
}

/// A lazily-built bundle of trained components shared across the methods of
/// one experiment binary (training the encoder once instead of per-method).
pub struct Suite {
    /// The generated world.
    pub world: World,
    retexpan: Option<std::rc::Rc<ultra_retexpan::RetExpan>>,
    genexpan: Option<std::rc::Rc<ultra_genexpan::GenExpan>>,
    oracle: Option<std::rc::Rc<ultra_data::KnowledgeOracle>>,
}

impl Suite {
    /// Builds the suite around a world.
    pub fn new(world: World) -> Self {
        Self {
            world,
            retexpan: None,
            genexpan: None,
            oracle: None,
        }
    }

    /// The shared plain RetExpan (trained once on first use).
    pub fn retexpan(&mut self) -> std::rc::Rc<ultra_retexpan::RetExpan> {
        if self.retexpan.is_none() {
            eprintln!("[suite] training shared RetExpan encoder…");
            let ret = ultra_retexpan::RetExpan::train(
                &self.world,
                ultra_embed::EncoderConfig::default(),
                ultra_retexpan::RetExpanConfig::default(),
            );
            self.retexpan = Some(std::rc::Rc::new(ret));
        }
        self.retexpan.as_ref().unwrap().clone()
    }

    /// The shared plain GenExpan (LM trained once on first use).
    pub fn genexpan(&mut self) -> std::rc::Rc<ultra_genexpan::GenExpan> {
        if self.genexpan.is_none() {
            eprintln!("[suite] training shared GenExpan LM…");
            let gen = ultra_genexpan::GenExpan::train(
                &self.world,
                ultra_genexpan::GenExpanConfig::default(),
            );
            self.genexpan = Some(std::rc::Rc::new(gen));
        }
        self.genexpan.as_ref().unwrap().clone()
    }

    /// The shared GPT-4 oracle.
    pub fn oracle(&mut self) -> std::rc::Rc<ultra_data::KnowledgeOracle> {
        if self.oracle.is_none() {
            self.oracle = Some(std::rc::Rc::new(ultra_data::KnowledgeOracle::new(
                &self.world,
                ultra_data::OracleConfig::default(),
            )));
        }
        self.oracle.as_ref().unwrap().clone()
    }
}

//! Shared experiment plumbing: world construction, trained-component
//! caching, result dumping.

use std::io::Write;
use ultra_data::{World, WorldConfig};

/// Builds the world selected by `ULTRA_PROFILE` / `ULTRA_SEED`.
pub fn world_from_env() -> World {
    let profile = std::env::var("ULTRA_PROFILE").unwrap_or_else(|_| "small".into());
    let seed: u64 = std::env::var("ULTRA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = match profile.as_str() {
        "paper" => WorldConfig::paper(),
        "huge" => WorldConfig::huge(),
        "tiny" => WorldConfig::tiny(),
        _ => WorldConfig::small(),
    };
    eprintln!("[suite] generating world (profile={profile}, seed={seed})…");
    let world = World::generate(cfg.with_seed(seed)).expect("world generation");
    eprintln!(
        "[suite] world ready: {} entities, {} sentences, {} ultra classes, {} queries",
        world.num_entities(),
        world.corpus.len(),
        world.ultra_classes.len(),
        world
            .ultra_classes
            .iter()
            .map(|u| u.queries.len())
            .sum::<usize>()
    );
    world
}

/// Writes a JSON value to `target/experiments/<name>.json`.
pub fn dump_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let (Ok(mut f), Ok(json)) = (
        std::fs::File::create(&path),
        serde_json::to_string_pretty(value),
    ) {
        let _ = writeln!(f, "{json}");
        eprintln!("[suite] wrote {}", path.display());
    }
}

/// A lazily-built bundle of trained components shared across the methods of
/// one experiment binary (training the encoder once instead of per-method).
pub struct Suite {
    /// The generated world.
    pub world: World,
    retexpan: Option<std::rc::Rc<ultra_retexpan::RetExpan>>,
    genexpan: Option<std::rc::Rc<ultra_genexpan::GenExpan>>,
    oracle: Option<std::rc::Rc<ultra_data::KnowledgeOracle>>,
}

impl Suite {
    /// Builds the suite around a world.
    pub fn new(world: World) -> Self {
        Self {
            world,
            retexpan: None,
            genexpan: None,
            oracle: None,
        }
    }

    /// The shared plain RetExpan (trained once on first use).
    pub fn retexpan(&mut self) -> std::rc::Rc<ultra_retexpan::RetExpan> {
        if let Some(ret) = &self.retexpan {
            return ret.clone();
        }
        eprintln!("[suite] training shared RetExpan encoder…");
        let ret = std::rc::Rc::new(ultra_retexpan::RetExpan::train(
            &self.world,
            ultra_embed::EncoderConfig::default(),
            ultra_retexpan::RetExpanConfig::default(),
        ));
        self.retexpan = Some(ret.clone());
        ret
    }

    /// The shared plain GenExpan (LM trained once on first use).
    pub fn genexpan(&mut self) -> std::rc::Rc<ultra_genexpan::GenExpan> {
        if let Some(gen) = &self.genexpan {
            return gen.clone();
        }
        eprintln!("[suite] training shared GenExpan LM…");
        let gen = std::rc::Rc::new(ultra_genexpan::GenExpan::train(
            &self.world,
            ultra_genexpan::GenExpanConfig::default(),
        ));
        self.genexpan = Some(gen.clone());
        gen
    }

    /// The shared GPT-4 oracle.
    pub fn oracle(&mut self) -> std::rc::Rc<ultra_data::KnowledgeOracle> {
        if let Some(o) = &self.oracle {
            return o.clone();
        }
        let o = std::rc::Rc::new(ultra_data::KnowledgeOracle::new(
            &self.world,
            ultra_data::OracleConfig::default(),
        ));
        self.oracle = Some(o.clone());
        o
    }
}

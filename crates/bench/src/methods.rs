//! The method registry: every row of Table 2 as a runnable unit.

use crate::suite::Suite;
use ultra_baselines::{CaSE, CgExpan, Gpt4Baseline, ProbExpan, SetExpan};
use ultra_data::OracleConfig;
use ultra_embed::{Augmentation, EncoderConfig, PairConfig};
use ultra_eval::{evaluate_method, MetricReport};
use ultra_genexpan::{CotConfig, GenExpan, GenRaSource};
use ultra_retexpan::{mine_lists, RetExpan};

/// One Table 2 method row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// SetExpan (probability-based).
    SetExpan,
    /// CaSE (probability-based).
    CaSE,
    /// CGExpan (retrieval-based).
    CgExpan,
    /// ProbExpan (retrieval-based, prior SOTA).
    ProbExpan,
    /// GPT-4 (generation-based).
    Gpt4,
    /// RetExpan (ours, retrieval-based).
    RetExpan,
    /// RetExpan + ultra-fine-grained contrastive learning.
    RetExpanContrast,
    /// RetExpan + retrieval augmentation (entity introductions).
    RetExpanRa,
    /// GenExpan (ours, generation-based).
    GenExpan,
    /// GenExpan + chain-of-thought reasoning.
    GenExpanCot,
    /// GenExpan + retrieval augmentation (entity introductions).
    GenExpanRa,
}

impl Method {
    /// Every Table 2 row, paper order.
    pub fn table2() -> Vec<Method> {
        use Method::*;
        vec![
            SetExpan,
            CaSE,
            CgExpan,
            ProbExpan,
            Gpt4,
            RetExpan,
            RetExpanContrast,
            RetExpanRa,
            GenExpan,
            GenExpanCot,
            GenExpanRa,
        ]
    }

    /// Display name matching the paper's row label.
    pub fn name(&self) -> &'static str {
        match self {
            Method::SetExpan => "SetExpan",
            Method::CaSE => "CaSE",
            Method::CgExpan => "CGExpan",
            Method::ProbExpan => "ProbExpan",
            Method::Gpt4 => "GPT4",
            Method::RetExpan => "RetExpan",
            Method::RetExpanContrast => "RetExpan +Contrast",
            Method::RetExpanRa => "RetExpan +RA",
            Method::GenExpan => "GenExpan",
            Method::GenExpanCot => "GenExpan +CoT",
            Method::GenExpanRa => "GenExpan +RA",
        }
    }

    /// Trains (reusing the suite's shared components where possible) and
    /// evaluates the method over the full query set.
    pub fn evaluate(&self, suite: &mut Suite) -> MetricReport {
        eprintln!("[methods] evaluating {}…", self.name());
        match self {
            Method::SetExpan => {
                let m = SetExpan::new(&suite.world);
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::CaSE => {
                let m = CaSE::new(&suite.world);
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::CgExpan => {
                let m = CgExpan::new(&suite.world);
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::ProbExpan => {
                let ret = suite.retexpan();
                let m = ProbExpan::from_encoder(&suite.world, &ret.encoder);
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::Gpt4 => {
                let m = Gpt4Baseline::new(&suite.world, OracleConfig::default());
                evaluate_method(&suite.world, |_u, q| m.expand(q))
            }
            Method::RetExpan => {
                let ret = suite.retexpan();
                evaluate_method(&suite.world, |_u, q| ret.expand(&suite.world, q))
            }
            Method::RetExpanContrast => {
                let m = retexpan_contrast(suite, &PairConfig::default());
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::RetExpanRa => {
                let m = retexpan_ra(suite, Augmentation::Introduction);
                evaluate_method(&suite.world, |_u, q| m.expand(&suite.world, q))
            }
            Method::GenExpan => {
                let gen = suite.genexpan();
                evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q))
            }
            Method::GenExpanCot => {
                let mut gen = (*suite.genexpan()).clone();
                gen.config.cot = CotConfig::default_cot();
                evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q))
            }
            Method::GenExpanRa => {
                let mut gen = (*suite.genexpan()).clone();
                gen.config.ra = GenRaSource::Introduction;
                evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q))
            }
        }
    }
}

/// RetExpan + contrastive learning: clones the shared encoder, mines
/// `L_pos`/`L_neg` with the GPT-4 oracle, runs InfoNCE training, refreshes
/// representations.
pub fn retexpan_contrast(suite: &mut Suite, pair_cfg: &PairConfig) -> RetExpan {
    retexpan_contrast_sized(suite, pair_cfg, 10)
}

/// [`retexpan_contrast`] with an explicit `|L_pos|`/`|L_neg|` cap (the
/// Figure 7 sweep).
pub fn retexpan_contrast_sized(
    suite: &mut Suite,
    pair_cfg: &PairConfig,
    list_cap: usize,
) -> RetExpan {
    let base = suite.retexpan();
    let oracle = suite.oracle();
    let mined = mine_lists(&suite.world, &base, &oracle, 3 * list_cap, list_cap);
    let mut encoder = base.encoder.clone();
    ultra_embed::contrastive::train_contrastive(&mut encoder, &suite.world, &mined, pair_cfg);
    let mut ret = RetExpan::from_encoder(&suite.world, encoder, base.config.clone());
    ret.refresh_reps(&suite.world);
    ret
}

/// RetExpan + retrieval augmentation: retrains the encoder with knowledge
/// prefixes on every context (training *and* inference, Section 5.1.3).
pub fn retexpan_ra(suite: &mut Suite, source: Augmentation) -> RetExpan {
    let base = suite.retexpan();
    RetExpan::train(
        &suite.world,
        EncoderConfig::default().with_augment(source),
        base.config.clone(),
    )
}

/// GenExpan with a modified config, reusing the shared trained instance.
pub fn genexpan_with(suite: &mut Suite, f: impl FnOnce(&mut GenExpan)) -> GenExpan {
    let mut gen = (*suite.genexpan()).clone();
    f(&mut gen);
    gen
}

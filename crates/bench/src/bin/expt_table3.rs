//! Table 3 — module ablations: RetExpan without entity prediction;
//! GenExpan without the prefix constraint and without further pre-training.
//! Reported as CombMAP@{10,20,50,100} + Avg.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, world_from_env, Suite};
use ultra_embed::EncoderConfig;
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::{GenExpan, GenExpanConfig};
use ultra_retexpan::{RetExpan, RetExpanConfig};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(vec!["Method", "C@10", "C@20", "C@50", "C@100", "Avg"]);
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    // RetExpan and its entity-prediction ablation (untrained encoder =
    // random-projection bag features, the analogue of skipping the
    // entity-prediction fine-tuning on top of raw features).
    let ret = suite.retexpan();
    let r = evaluate_method(&suite.world, |_u, q| ret.expand(&suite.world, q));
    fmt::push_comb_row(&mut t, "RetExpan", &r);
    json.insert("RetExpan".into(), r);

    let no_ep = RetExpan::train(
        &suite.world,
        EncoderConfig {
            epochs: 0,
            ..EncoderConfig::default()
        },
        RetExpanConfig::default(),
    );
    let r = evaluate_method(&suite.world, |_u, q| no_ep.expand(&suite.world, q));
    fmt::push_comb_row(&mut t, "- Entity prediction", &r);
    json.insert("RetExpan - Entity prediction".into(), r);

    // GenExpan and its ablations.
    let gen = suite.genexpan();
    let r = evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q));
    fmt::push_comb_row(&mut t, "GenExpan", &r);
    json.insert("GenExpan".into(), r);

    let unconstrained = GenExpan::train(
        &suite.world,
        GenExpanConfig {
            constrained: false,
            ..GenExpanConfig::default()
        },
    );
    let r = evaluate_method(&suite.world, |u, q| {
        unconstrained.expand(&suite.world, u, q)
    });
    fmt::push_comb_row(&mut t, "- Prefix constrain", &r);
    json.insert("GenExpan - Prefix constrain".into(), r);

    let no_pretrain = GenExpan::train(
        &suite.world,
        GenExpanConfig {
            further_pretrain: false,
            ..GenExpanConfig::default()
        },
    );
    let r = evaluate_method(&suite.world, |u, q| no_pretrain.expand(&suite.world, u, q));
    fmt::push_comb_row(&mut t, "- Further pretrain", &r);
    json.insert("GenExpan - Further pretrain".into(), r);

    println!("\nTable 3 — Module ablations (CombMAP)");
    println!("{}", t.render());
    dump_json("table3", &json);
}

//! `ann_build` — CI gate for deterministic IVF index construction.
//!
//! Builds the IVF coarse quantizer twice over the same trained embeddings
//! and across thread counts (pools of 1 and 4 workers), then compares the
//! full serialized images. Any byte difference — a centroid bit, a list
//! ordering, a length field — exits non-zero. Profile/seed come from
//! `ULTRA_PROFILE` / `ULTRA_SEED` (CI runs it on `small`).
//!
//! ```text
//! cargo run --release -p ultra-bench --bin ann_build
//! ```

use ultra_ann::{IvfConfig, IvfIndex};
use ultra_bench::world_from_env;
use ultra_embed::EncoderConfig;
use ultra_par::Pool;
use ultra_retexpan::{RetExpan, RetExpanConfig};

fn main() {
    let world = world_from_env();
    eprintln!("[ann_build] training encoder…");
    let ret = RetExpan::train(&world, EncoderConfig::default(), RetExpanConfig::default());
    let cfg = IvfConfig::default();

    // Two identical builds, then one per pool width. All four serialized
    // images must be byte-equal: k-means assignment is the only parallel
    // step and it reduces in entity-id order regardless of chunking.
    let builds = [
        (
            "build#1 pool=global",
            IvfIndex::build(&ret.reps, &cfg, &Pool::global()),
        ),
        (
            "build#2 pool=global",
            IvfIndex::build(&ret.reps, &cfg, &Pool::global()),
        ),
        (
            "build#3 pool=1",
            IvfIndex::build(&ret.reps, &cfg, &Pool::new(1)),
        ),
        (
            "build#4 pool=4",
            IvfIndex::build(&ret.reps, &cfg, &Pool::new(4)),
        ),
    ];
    let reference = builds[0].1.to_bytes();
    eprintln!(
        "[ann_build] reference image: {} bytes, {} lists, fingerprint {:016x}",
        reference.len(),
        builds[0].1.nlist(),
        builds[0].1.fingerprint(),
    );
    let mut ok = true;
    for (label, index) in &builds[1..] {
        let bytes = index.to_bytes();
        if bytes == reference {
            eprintln!("[ann_build] {label}: byte-identical");
        } else {
            eprintln!(
                "[ann_build] {label}: DIVERGED ({} bytes, fingerprint {:016x})",
                bytes.len(),
                index.fingerprint(),
            );
            ok = false;
        }
    }
    if !ok {
        eprintln!("[ann_build] FAILED: IVF construction is not byte-reproducible");
        std::process::exit(1);
    }
    println!("[ann_build] OK: 4/4 builds byte-identical");
}

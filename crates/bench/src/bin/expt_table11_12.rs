//! Tables 11 & 12 — dataset composition: per-fine-class detail and the
//! arity histogram of ultra-fine-grained classes.

use ultra_bench::{dump_json, world_from_env};
use ultra_data::WorldStats;
use ultra_eval::TableWriter;

fn main() {
    let world = world_from_env();
    let stats = WorldStats::compute(&world);

    let mut t11 = TableWriter::new(vec![
        "Fine-grained CLS.",
        "#Entities",
        "#Ultra-fine CLS.",
        "#Attributes",
    ]);
    for (name, entities, ultra, attrs) in &stats.per_class {
        t11.row(vec![
            name.clone(),
            entities.to_string(),
            ultra.to_string(),
            attrs.to_string(),
        ]);
    }
    println!("\nTable 11 — Fine-grained semantic class detail");
    println!("{}", t11.render());

    let mut t12 = TableWriter::new(vec!["|A_pos|", "|A_neg|", "#Ultra-fine CLS."]);
    for ((p, n), count) in &stats.arity_histogram {
        t12.row(vec![p.to_string(), n.to_string(), count.to_string()]);
    }
    println!("Table 12 — Ultra-fine-grained class types");
    println!("{}", t12.render());
    println!(
        "totals: {} entities / {} sentences / {} ultra classes / {} queries",
        stats.num_entities, stats.num_sentences, stats.num_ultra_classes, stats.num_queries
    );
    dump_json("table11_12", &stats);
}

//! Table 9 — chain-of-thought reasoning: depth (class name → + positive
//! attributes → + negative attributes) and precision (generated vs
//! ground-truth) of each reasoning product.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, methods, world_from_env, Suite};
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::{AttrInfoSource, ClassNameSource, CotConfig};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    let variants: Vec<(&str, CotConfig)> = vec![
        ("GenExpan", CotConfig::off()),
        (
            "+ CoT (GT CN)",
            CotConfig {
                class_name: ClassNameSource::GroundTruth,
                pos_attrs: AttrInfoSource::None,
                neg_attrs: AttrInfoSource::None,
            },
        ),
        (
            "+ CoT (Gen CN)",
            CotConfig {
                class_name: ClassNameSource::Generated,
                pos_attrs: AttrInfoSource::None,
                neg_attrs: AttrInfoSource::None,
            },
        ),
        (
            "+ CoT (Gen CN + Gen Pos)",
            CotConfig {
                class_name: ClassNameSource::Generated,
                pos_attrs: AttrInfoSource::Generated,
                neg_attrs: AttrInfoSource::None,
            },
        ),
        (
            "+ CoT (Gen CN + GT Pos)",
            CotConfig {
                class_name: ClassNameSource::Generated,
                pos_attrs: AttrInfoSource::GroundTruth,
                neg_attrs: AttrInfoSource::None,
            },
        ),
        (
            "+ CoT (Gen CN + Gen Pos + Gen Neg)",
            CotConfig {
                class_name: ClassNameSource::Generated,
                pos_attrs: AttrInfoSource::Generated,
                neg_attrs: AttrInfoSource::Generated,
            },
        ),
        (
            "+ CoT (Gen CN + GT Pos + GT Neg)",
            CotConfig {
                class_name: ClassNameSource::Generated,
                pos_attrs: AttrInfoSource::GroundTruth,
                neg_attrs: AttrInfoSource::GroundTruth,
            },
        ),
    ];
    for (name, cot) in variants {
        let model = methods::genexpan_with(&mut suite, |g| g.config.cot = cot);
        let r = evaluate_method(&suite.world, |u, q| model.expand(&suite.world, u, q));
        fmt::push_map_rows(&mut t, name, &r);
        json.insert(name.to_string(), r);
    }
    println!("\nTable 9 — Chain-of-thought depth and precision (MAP)");
    println!("{}", t.render());
    dump_json("table9", &json);
}

//! Future-work extensions (beyond the paper's tables):
//!
//! * **hard-negative weighting** in contrastive learning — reproduces the
//!   Section 6.2 claim that "directly increasing the weights of negative
//!   terms … is ineffective" because mined lists contain annotation errors;
//! * **decoupled base/attribute representations** — the MoE-inspired
//!   direction of Section 6.2;
//! * **dynamic retrieval augmentation** — the query-adaptive knowledge
//!   strategy called for in Section 6.4.2, compared against the paper's
//!   static RA.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, methods, world_from_env, Suite};
use ultra_embed::{Augmentation, PairConfig};
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_retexpan::{DecoupledRetExpan, DynamicRaRetExpan, RetExpan};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    // ── (a) Hard-negative weighting ──────────────────────────────────────
    let mut t = TableWriter::new(fmt::map_headers());
    for weight in [1.0f32, 2.0, 4.0] {
        let pc = PairConfig {
            hard_weight: weight,
            ..PairConfig::default()
        };
        let model = methods::retexpan_contrast(&mut suite, &pc);
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        let label = format!("+Contrast (hard x{weight})");
        fmt::push_map_rows(&mut t, &label, &r);
        json.insert(label, r);
    }
    println!("\nExtension (a) — amplifying hard negatives in InfoNCE (MAP)");
    println!("{}", t.render());

    // ── (b) Decoupled representations ────────────────────────────────────
    let base = suite.retexpan();
    let mut t = TableWriter::new(fmt::map_headers());
    let r = evaluate_method(&suite.world, |_u, q| base.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "RetExpan", &r);
    json.insert("RetExpan".into(), r);
    for w in [0.3f32, 0.5, 0.7] {
        let mut dec = DecoupledRetExpan::new(RetExpan::from_encoder(
            &suite.world,
            base.encoder.clone(),
            base.config.clone(),
        ));
        dec.residual_weight = w;
        let r = evaluate_method(&suite.world, |_u, q| dec.expand(&suite.world, q));
        let label = format!("Decoupled (w={w})");
        fmt::push_map_rows(&mut t, &label, &r);
        json.insert(label, r);
    }
    println!("Extension (b) — decoupled base/attribute representations (MAP)");
    println!("{}", t.render());

    // ── (c) Dynamic vs static retrieval augmentation ─────────────────────
    let mut t = TableWriter::new(fmt::map_headers());
    let static_ra = methods::retexpan_ra(&mut suite, Augmentation::Introduction);
    let r = evaluate_method(&suite.world, |_u, q| static_ra.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "Static RA (paper)", &r);
    json.insert("Static RA".into(), r);
    let dyn_ra = DynamicRaRetExpan::new(RetExpan::from_encoder(
        &suite.world,
        base.encoder.clone(),
        base.config.clone(),
    ));
    let r = evaluate_method(&suite.world, |_u, q| dyn_ra.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "Dynamic RA (ext)", &r);
    json.insert("Dynamic RA".into(), r);
    println!("Extension (c) — static vs dynamic retrieval augmentation (MAP)");
    println!("{}", t.render());

    dump_json("extensions", &json);
}

//! Table 4 — comparison when positive and negative attributes are the same
//! (`A^pos = A^neg`) vs different, for RetExpan, +Contrast, +RA.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, methods, world_from_env, Suite};
use ultra_embed::{Augmentation, PairConfig};
use ultra_eval::{evaluate_method_filtered, MetricReport, TableWriter};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let ret = suite.retexpan();
    let con = methods::retexpan_contrast(&mut suite, &PairConfig::default());
    let ra = methods::retexpan_ra(&mut suite, Augmentation::Introduction);

    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();
    for (regime, same) in [("A_pos = A_neg", true), ("A_pos != A_neg", false)] {
        for (name, model) in [
            ("RetExpan", &*ret),
            ("RetExpan +Contrast", &con),
            ("RetExpan +RA", &ra),
        ] {
            let r = evaluate_method_filtered(
                &suite.world,
                |u| u.same_attribute_sets() == same,
                |_u, q| model.expand(&suite.world, q),
            );
            let label = format!("[{regime}] {name}");
            fmt::push_map_rows(&mut t, &label, &r);
            json.insert(label, r);
        }
    }
    println!("\nTable 4 — Same vs different positive/negative attributes (MAP)");
    println!("{}", t.render());
    dump_json("table4", &json);
}

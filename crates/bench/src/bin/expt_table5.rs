//! Table 5 — ablation of the negative-seed entity re-ranking module:
//! ProbExpan gains the bolt-on, RetExpan and GenExpan lose theirs, with
//! Δ rows.

use std::collections::BTreeMap;
use ultra_baselines::ProbExpan;
use ultra_bench::{dump_json, fmt, world_from_env, Suite};
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::GenExpan;
use ultra_retexpan::RetExpan;

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    // ProbExpan: plain vs + neg rerank.
    let ret = suite.retexpan();
    let mut pe = ProbExpan::from_encoder(&suite.world, &ret.encoder);
    let plain = evaluate_method(&suite.world, |_u, q| pe.expand(&suite.world, q));
    pe.neg_rerank = true;
    let rr = evaluate_method(&suite.world, |_u, q| pe.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "ProbExpan", &plain);
    fmt::push_map_rows(&mut t, "+ Neg Rerank", &rr);
    fmt::push_delta_rows(&mut t, "Δ", &plain, &rr);
    json.insert("ProbExpan".into(), plain);
    json.insert("ProbExpan + Neg Rerank".into(), rr);

    // RetExpan: with vs without rerank.
    let with = evaluate_method(&suite.world, |_u, q| ret.expand(&suite.world, q));
    let mut no_rr = RetExpan::from_encoder(&suite.world, ret.encoder.clone(), ret.config.clone());
    no_rr.config.rerank = false;
    let without = evaluate_method(&suite.world, |_u, q| no_rr.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "RetExpan (Ours)", &with);
    fmt::push_map_rows(&mut t, "- Neg Rerank", &without);
    fmt::push_delta_rows(&mut t, "Δ", &with, &without);
    json.insert("RetExpan".into(), with);
    json.insert("RetExpan - Neg Rerank".into(), without);

    // GenExpan: with vs without rerank.
    let gen = suite.genexpan();
    let with = evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q));
    let mut no_rr: GenExpan = (*gen).clone();
    no_rr.config.rerank = false;
    let without = evaluate_method(&suite.world, |u, q| no_rr.expand(&suite.world, u, q));
    fmt::push_map_rows(&mut t, "GenExpan (Ours)", &with);
    fmt::push_map_rows(&mut t, "- Neg Rerank", &without);
    fmt::push_delta_rows(&mut t, "Δ", &with, &without);
    json.insert("GenExpan".into(), with);
    json.insert("GenExpan - Neg Rerank".into(), without);

    println!("\nTable 5 — Negative-seed re-ranking ablation (MAP)");
    println!("{}", t.render());
    dump_json("table5", &json);
}

//! Table 7 — ablation of the contrastive-learning training data: dropping
//! hard negatives, normal negatives, and cross-entity positives.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, methods, world_from_env, Suite};
use ultra_embed::PairConfig;
use ultra_eval::{evaluate_method, MetricReport, TableWriter};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    let ret = suite.retexpan();
    let base = evaluate_method(&suite.world, |_u, q| ret.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "RetExpan", &base);
    json.insert("RetExpan".into(), base);

    let variants: Vec<(&str, PairConfig)> = vec![
        ("RetExpan +Contrast", PairConfig::default()),
        (
            "- Neg from (Lpos, Lneg)",
            PairConfig {
                hard_negatives: false,
                ..PairConfig::default()
            },
        ),
        (
            "- Neg from (L*, L0bar)",
            PairConfig {
                normal_negatives: false,
                ..PairConfig::default()
            },
        ),
        (
            "- Pos from same list",
            PairConfig {
                cross_entity_positives: false,
                ..PairConfig::default()
            },
        ),
    ];
    for (name, pc) in variants {
        let model = methods::retexpan_contrast(&mut suite, &pc);
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        fmt::push_map_rows(&mut t, name, &r);
        json.insert(name.to_string(), r);
    }
    println!("\nTable 7 — Contrastive-learning data ablation (MAP)");
    println!("{}", t.render());
    dump_json("table7", &json);
}

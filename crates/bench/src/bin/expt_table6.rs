//! Table 6 — RetExpan on semantic classes with different numbers of
//! positive and negative attributes: (1,1), (1,2), (2,1).

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, world_from_env, Suite};
use ultra_eval::{evaluate_method_filtered, MetricReport, TableWriter};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let ret = suite.retexpan();
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();
    for arity in [(1usize, 1usize), (1, 2), (2, 1)] {
        let r = evaluate_method_filtered(
            &suite.world,
            |u| u.arity() == arity,
            |_u, q| ret.expand(&suite.world, q),
        );
        let label = format!("({}, {})", arity.0, arity.1);
        if r.num_queries == 0 {
            eprintln!("[table6] no ultra classes with arity {label} in this profile");
            continue;
        }
        eprintln!("[table6] arity {label}: {} queries", r.num_queries);
        fmt::push_map_rows(&mut t, &label, &r);
        json.insert(label, r);
    }
    println!("\nTable 6 — RetExpan by (|A_pos|, |A_neg|) (MAP)");
    println!("{}", t.render());
    dump_json("table6", &json);
}

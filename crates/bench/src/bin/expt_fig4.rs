//! Figure 4 — heat map of semantic-class similarity under the trained
//! entity encoder: the diagonal (intra-class) should dominate.

use ultra_bench::{dump_json, world_from_env, Suite};
use ultra_eval::heatmap;

fn main() {
    let mut suite = Suite::new(world_from_env());
    let ret = suite.retexpan();
    let world = &suite.world;
    let matrix = heatmap::class_similarity_matrix(world, |a, b| ret.reps.sim(a, b), 20);
    println!("\nFigure 4 — Class-similarity heat map (mean pairwise cosine)");
    println!("{}", heatmap::render_heatmap(world, &matrix));

    // The quantitative claim: every diagonal entry dominates its row.
    let mut dominated = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        if row
            .iter()
            .enumerate()
            .all(|(j, &v)| j == i || matrix[i][i] > v)
        {
            dominated += 1;
        }
    }
    println!(
        "diagonal dominates its row in {dominated}/{} classes",
        matrix.len()
    );
    dump_json("fig4", &matrix);
}

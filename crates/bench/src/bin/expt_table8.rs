//! Table 8 — retrieval augmentation with different retrieval contents:
//! entity introductions, Wikidata attributes, and ground-truth attributes,
//! for both frameworks.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, methods, world_from_env, Suite};
use ultra_embed::Augmentation;
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::GenRaSource;

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    for (name, source) in [
        (
            "RetExpan +RA (Entity Introduction)",
            Augmentation::Introduction,
        ),
        (
            "RetExpan +RA (Wikidata Attributes)",
            Augmentation::WikidataAttrs,
        ),
        ("RetExpan +RA (GT Attributes)", Augmentation::GtAttrs),
    ] {
        let model = methods::retexpan_ra(&mut suite, source);
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        fmt::push_map_rows(&mut t, name, &r);
        json.insert(name.to_string(), r);
    }

    for (name, source) in [
        (
            "GenExpan +RA (Entity Introduction)",
            GenRaSource::Introduction,
        ),
        (
            "GenExpan +RA (Wikidata Attributes)",
            GenRaSource::WikidataAttrs,
        ),
        ("GenExpan +RA (GT Attributes)", GenRaSource::GtAttrs),
    ] {
        let model = methods::genexpan_with(&mut suite, |g| g.config.ra = source);
        let r = evaluate_method(&suite.world, |u, q| model.expand(&suite.world, u, q));
        fmt::push_map_rows(&mut t, name, &r);
        json.insert(name.to_string(), r);
    }

    println!("\nTable 8 — Retrieval-augmentation content sources (MAP)");
    println!("{}", t.render());
    dump_json("table8", &json);
}

//! Table 2 — main experiment: all baselines and both proposed frameworks
//! with their enhancement strategies, reported as Pos↑/Neg↓/Comb↑ ×
//! MAP/P @ {10,20,50,100} + Avg.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, world_from_env, Method, Suite};
use ultra_eval::{MetricReport, TableWriter};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut table = TableWriter::new(vec![
        "Method", "Type", "M@10", "M@20", "M@50", "M@100", "P@10", "P@20", "P@50", "P@100", "Avg",
    ]);
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();
    for method in Method::table2() {
        let report = method.evaluate(&mut suite);
        push_block(&mut table, method.name(), &report);
        json.insert(method.name().to_string(), report);
    }
    println!("\nTable 2 — Main experiment results");
    println!("{}", table.render());
    dump_json("table2", &json);
}

fn push_block(table: &mut TableWriter, name: &str, r: &MetricReport) {
    let fmt = |v: f64| format!("{v:.2}");
    let row = |map: &[f64; 4], p: &[f64; 4], avg: f64| {
        let mut cells = vec![];
        cells.extend(map.iter().map(|&v| fmt(v)));
        cells.extend(p.iter().map(|&v| fmt(v)));
        cells.push(fmt(avg));
        cells
    };
    let mut pos = vec![name.to_string(), "Pos ↑".into()];
    pos.extend(row(&r.pos_map, &r.pos_p, r.avg_pos()));
    table.row(pos);
    let mut neg = vec![String::new(), "Neg ↓".into()];
    neg.extend(row(&r.neg_map, &r.neg_p, r.avg_neg()));
    table.row(neg);
    let mut comb = vec![String::new(), "Comb ↑".into()];
    comb.extend(row(&r.comb_map, &r.comb_p, r.avg_comb()));
    table.row(comb);
}

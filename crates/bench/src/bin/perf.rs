//! `perf` — wall-clock benchmark of the `ultra-par` data-parallel hot
//! paths: preliminary-list scoring, contrastive training, and evaluation.
//!
//! Emits `BENCH_expand.json` (to `target/experiments/` and the repo root)
//! so future PRs have a perf trajectory to compare against. Three numbers
//! matter per stage:
//!
//! * `threads1_ms` / `threads4_ms` — the same chunked code path at 1 and 4
//!   workers. On a multi-core host the ratio is the parallel speedup; on a
//!   single-core host (CI containers) it hovers near 1.
//! * `scalar_prepr_ms` (scoring only) — the pre-`ultra-par` per-entity
//!   mean-of-cosines loop. The factorized seed-query kernel replaces
//!   `|S|` cosines (≈ `3·|S|·d` multiplies) with one unrolled dot
//!   (`d` multiplies), so this speedup is algorithmic and shows up at any
//!   core count.
//!
//! Every timed pair is also checked for byte identity: ranked lists
//! (entity + score bits) at threads=1 vs threads=4, and contrastive loss
//! curves bit-for-bit.

use serde::Serialize;
use std::time::Instant;
use ultra_bench::{dump_json, world_from_env};
use ultra_core::{EntityId, Query, RankedList};
use ultra_data::{KnowledgeOracle, OracleConfig, World};
use ultra_embed::contrastive::{train_contrastive, PairConfig};
use ultra_embed::EncoderConfig;
use ultra_eval::evaluate_method_par;
use ultra_nn::cosine;
use ultra_par::{set_threads, Pool};
use ultra_retexpan::{mine_lists, RetExpan, RetExpanConfig};

#[derive(Serialize)]
struct StageTiming {
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
}

#[derive(Serialize)]
struct ScoringStage {
    /// Pre-PR baseline: per-entity mean of `|S|` cosines (the code shape
    /// this PR replaced), timed on the same queries.
    scalar_prepr_ms: f64,
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
    /// Algorithmic speedup of the factorized batch kernel over the pre-PR
    /// scalar loop (threads=4 path vs scalar; core-count independent).
    speedup_vs_prepr_scalar: f64,
    ranked_lists_byte_identical: bool,
}

#[derive(Serialize)]
struct TrainingStage {
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
    loss_curve_bit_identical: bool,
    num_batches: usize,
}

#[derive(Serialize)]
struct BenchReport {
    profile: String,
    seed: u64,
    host_parallelism: usize,
    num_queries: usize,
    scoring: ScoringStage,
    training: TrainingStage,
    eval: StageTiming,
    note: String,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-3 wall clock for cheap stages (noise on shared hosts easily
/// exceeds the 10% level these comparisons care about).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            ms(t)
        })
        .fold(f64::INFINITY, f64::min)
}

/// FNV-1a over a ranked list's `(entity, score-bits)` stream — the byte
/// identity witness.
fn fingerprint(lists: &[RankedList]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for l in lists {
        for &(e, s) in l.entries() {
            eat(e.index() as u64);
            eat(s.to_bits() as u64);
        }
    }
    h
}

/// The pre-PR scoring loop: every candidate against every positive seed,
/// one cosine at a time.
fn scalar_preliminary(ret: &RetExpan, world: &World, q: &Query) -> Vec<(EntityId, f32)> {
    world
        .entities
        .iter()
        .filter(|e| !q.is_seed(e.id))
        .map(|e| {
            let s = if q.pos_seeds.is_empty() {
                0.0
            } else {
                q.pos_seeds
                    .iter()
                    .map(|&sd| cosine(ret.reps.row(e.id), ret.reps.row(sd)))
                    .sum::<f32>()
                    / q.pos_seeds.len() as f32
            };
            (e.id, s)
        })
        .collect()
}

fn expand_all(ret: &RetExpan, world: &World) -> Vec<RankedList> {
    world
        .queries()
        .map(|(_u, q)| ret.expand(world, q))
        .collect()
}

fn main() {
    let world = world_from_env();
    let profile = std::env::var("ULTRA_PROFILE").unwrap_or_else(|_| "small".into());
    let num_queries: usize = world.ultra_classes.iter().map(|u| u.queries.len()).sum();
    eprintln!("[perf] training RetExpan encoder…");
    let ret = RetExpan::train(&world, EncoderConfig::default(), RetExpanConfig::default());

    // --- Scoring stage -----------------------------------------------------
    // Warm up, then time whole passes over every query (best of 3).
    let _ = expand_all(&ret, &world);
    let mut scalar_checksum = 0.0f64;
    let scalar_prepr_ms = best_of_3(|| {
        scalar_checksum = 0.0;
        for (_u, q) in world.queries() {
            for (_, s) in scalar_preliminary(&ret, &world, q) {
                scalar_checksum += s as f64;
            }
        }
    });

    set_threads(1);
    let lists_t1 = expand_all(&ret, &world);
    let scoring_t1_ms = best_of_3(|| {
        let _ = expand_all(&ret, &world);
    });

    set_threads(4);
    let lists_t4 = expand_all(&ret, &world);
    let scoring_t4_ms = best_of_3(|| {
        let _ = expand_all(&ret, &world);
    });
    let ranked_identical = fingerprint(&lists_t1) == fingerprint(&lists_t4);

    // --- Training stage ----------------------------------------------------
    eprintln!("[perf] mining lists for contrastive training…");
    let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
    let mined = mine_lists(&world, &ret, &oracle, 30, 10);
    let pair_cfg = PairConfig::default();

    set_threads(1);
    let mut enc1 = ret.encoder.clone();
    let t = Instant::now();
    let losses_t1 = train_contrastive(&mut enc1, &world, &mined, &pair_cfg);
    let training_t1_ms = ms(t);

    set_threads(4);
    let mut enc4 = ret.encoder.clone();
    let t = Instant::now();
    let losses_t4 = train_contrastive(&mut enc4, &world, &mined, &pair_cfg);
    let training_t4_ms = ms(t);
    let loss_identical = losses_t1.len() == losses_t4.len()
        && losses_t1
            .iter()
            .zip(&losses_t4)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    // --- Eval stage --------------------------------------------------------
    let r1 = evaluate_method_par(&world, &Pool::new(1), |_u, q| ret.expand(&world, q));
    let eval_t1_ms = best_of_3(|| {
        let _ = evaluate_method_par(&world, &Pool::new(1), |_u, q| ret.expand(&world, q));
    });
    let r4 = evaluate_method_par(&world, &Pool::new(4), |_u, q| ret.expand(&world, q));
    let eval_t4_ms = best_of_3(|| {
        let _ = evaluate_method_par(&world, &Pool::new(4), |_u, q| ret.expand(&world, q));
    });
    assert_eq!(r1.num_queries, r4.num_queries);
    set_threads(0); // restore ambient default

    let report = BenchReport {
        profile,
        seed: world.config.seed,
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        num_queries,
        scoring: ScoringStage {
            scalar_prepr_ms,
            threads1_ms: scoring_t1_ms,
            threads4_ms: scoring_t4_ms,
            speedup_t4_vs_t1: scoring_t1_ms / scoring_t4_ms.max(1e-9),
            speedup_vs_prepr_scalar: scalar_prepr_ms / scoring_t4_ms.max(1e-9),
            ranked_lists_byte_identical: ranked_identical,
        },
        training: TrainingStage {
            threads1_ms: training_t1_ms,
            threads4_ms: training_t4_ms,
            speedup_t4_vs_t1: training_t1_ms / training_t4_ms.max(1e-9),
            loss_curve_bit_identical: loss_identical,
            num_batches: losses_t1.len(),
        },
        eval: StageTiming {
            threads1_ms: eval_t1_ms,
            threads4_ms: eval_t4_ms,
            speedup_t4_vs_t1: eval_t1_ms / eval_t4_ms.max(1e-9),
        },
        note: format!(
            "scalar checksum {scalar_checksum:.3}; threads=1 and threads=4 run the same \
             chunked kernels (fixed chunk boundaries, ordered reduction), so outputs are \
             byte-identical and t4-vs-t1 reflects hardware parallelism only. \
             speedup_vs_prepr_scalar is this PR's algorithmic win over the per-entity \
             mean-of-cosines loop it replaced."
        ),
    };
    assert!(
        report.scoring.ranked_lists_byte_identical,
        "ranked lists diverged between thread counts"
    );
    assert!(
        report.training.loss_curve_bit_identical,
        "loss curves diverged between thread counts"
    );
    dump_json("BENCH_expand", &report);
    // A copy at the repo root gives the acceptance gate a stable path.
    if let Ok(json) = serde_json::to_string_pretty(&report) {
        let _ = std::fs::write("BENCH_expand.json", json + "\n");
        eprintln!("[perf] wrote BENCH_expand.json");
    }
    println!(
        "scoring: scalar {:.1}ms  t1 {:.1}ms  t4 {:.1}ms  (vs-scalar {:.2}x, t4/t1 {:.2}x)",
        report.scoring.scalar_prepr_ms,
        report.scoring.threads1_ms,
        report.scoring.threads4_ms,
        report.scoring.speedup_vs_prepr_scalar,
        report.scoring.speedup_t4_vs_t1,
    );
    println!(
        "training: t1 {:.1}ms  t4 {:.1}ms  ({:.2}x, {} batches)",
        report.training.threads1_ms,
        report.training.threads4_ms,
        report.training.speedup_t4_vs_t1,
        report.training.num_batches,
    );
    println!(
        "eval: t1 {:.1}ms  t4 {:.1}ms  ({:.2}x)",
        report.eval.threads1_ms, report.eval.threads4_ms, report.eval.speedup_t4_vs_t1,
    );
}

//! `perf` — wall-clock benchmark of the `ultra-par` data-parallel hot
//! paths (preliminary-list scoring, contrastive training, evaluation) plus
//! the `ultra-ann` candidate index.
//!
//! Emits `BENCH_expand.json` (to `target/experiments/` and the repo root)
//! so future PRs have a perf trajectory to compare against. The report is
//! `schema_version: 4`:
//!
//! * `scoring` / `training` / `eval` — the schema-v1 thread-scaling stages.
//!   On the `huge` profile (100k+ entities) they are skipped (`null`): the
//!   profile exists to size the *index* comparison, and re-timing the
//!   training loop there would dominate the run without adding signal.
//! * `training` (schema v4) — the fused contrastive step: alongside the
//!   t1/t4 timings it records the committed v3 single-thread baseline and
//!   the fused path's speedup over it, plus one marker per gate saying
//!   whether that gate was `"enforced"` or why it was skipped. The ≥ 2x
//!   single-thread gate runs on the `small` profile (where the v3 baseline
//!   was measured); the t4/t1 ≥ 1.5 scaling gate runs wherever the host
//!   actually has ≥ 4 cores and is marked `"skipped (…)"` otherwise — a
//!   1-core container cannot witness thread scaling, and pretending it
//!   passed would poison the trajectory.
//! * `index` — per-index-type numbers: IVF build time, then a `nprobe`
//!   sweep reporting recall@10/recall@50 against the exhaustive preliminary
//!   ranking and per-query latency percentiles (p50/p99), plus the p50
//!   speedup over the exhaustive scan.
//! * `startup` (schema v3) — serve startup time: full train-at-startup vs
//!   loading a USNP snapshot of the same engine, with the byte-identity of
//!   the two engines' answers as a hard witness. Skipped on `huge` (the
//!   double training run would dominate the benchmark).
//!
//! Determinism gates enforced in-binary (hard asserts, not just fields):
//! ranked lists at threads=1 vs threads=4 are byte-identical, and the IVF
//! full-probe (`nprobe=all`) expansion is byte-identical to the exhaustive
//! path at both thread counts. On `huge` the acceptance gate also asserts
//! the sweep contains a point with recall@50 ≥ 0.95 and ≥ 5x p50 speedup;
//! on `small` the startup stage asserts snapshot load is ≥ 20x faster than
//! train-at-startup.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use ultra_ann::{CandidateSource, Exhaustive, IvfConfig, IvfIndex, IvfSource};
use ultra_bench::{dump_json, world_from_env};
use ultra_core::{EntityId, Query, RankedList};
use ultra_data::{KnowledgeOracle, OracleConfig, World};
use ultra_embed::contrastive::{train_contrastive, PairConfig};
use ultra_embed::EncoderConfig;
use ultra_eval::evaluate_method_par;
use ultra_nn::cosine;
use ultra_par::{set_threads, Pool};
use ultra_retexpan::{mine_lists, RetExpan, RetExpanConfig};
use ultra_serve::{EngineConfig, ExpansionEngine, Method, SnapshotRuntime};

#[derive(Serialize)]
struct StageTiming {
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
}

#[derive(Serialize)]
struct ScoringStage {
    /// Pre-PR baseline: per-entity mean of `|S|` cosines (the code shape
    /// the `ultra-par` PR replaced), timed on the same queries.
    scalar_prepr_ms: f64,
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
    /// Algorithmic speedup of the factorized batch kernel over the pre-PR
    /// scalar loop (threads=4 path vs scalar; core-count independent).
    speedup_vs_prepr_scalar: f64,
    ranked_lists_byte_identical: bool,
}

/// Single-thread contrastive-training wall clock of the committed
/// schema-v3 report (`small` profile), the denominator of the fused
/// path's ≥ 2x single-thread acceptance gate.
const V3_TRAINING_THREADS1_MS: f64 = 7851.805657;

#[derive(Serialize)]
struct TrainingStage {
    threads1_ms: f64,
    threads4_ms: f64,
    speedup_t4_vs_t1: f64,
    /// The committed v3 single-thread time this run is gated against.
    v3_baseline_threads1_ms: f64,
    /// `v3_baseline_threads1_ms / threads1_ms` — the fused path's
    /// single-thread speedup over the pre-fusion training loop.
    speedup_vs_v3_threads1: f64,
    /// `"enforced"` when the ≥ 2x single-thread gate ran (profile
    /// `small`, where the baseline was measured), else `"skipped (…)"`.
    single_thread_gate: String,
    /// `"enforced"` when the t4/t1 ≥ 1.5 gate ran (host has ≥ 4 cores),
    /// else `"skipped (…)"` — thread scaling is unmeasurable on fewer.
    thread_scaling_gate: String,
    loss_curve_bit_identical: bool,
    num_batches: usize,
}

/// One operating point of the IVF `nprobe` sweep. `nprobe: 0` means "probe
/// every list" (the configuration provably identical to exhaustive).
#[derive(Serialize)]
struct ProbePoint {
    nprobe: usize,
    recall_at_10: f64,
    recall_at_50: f64,
    p50_micros: u64,
    p99_micros: u64,
    speedup_vs_exhaustive_p50: f64,
}

#[derive(Serialize)]
struct IndexStage {
    kind: String,
    nlist: usize,
    kmeans_iters: usize,
    build_ms: f64,
    /// Exhaustive preliminary-scoring latency, the sweep's baseline.
    exhaustive_p50_micros: u64,
    exhaustive_p99_micros: u64,
    nprobe_sweep: Vec<ProbePoint>,
    /// Smallest swept `nprobe` whose recall@50 ≥ 0.95, with its speedup —
    /// the operating point the acceptance gate reads on `huge`.
    best_nprobe_at_recall50_95: Option<usize>,
    best_speedup_at_recall50_95: Option<f64>,
    /// Hard-asserted in-binary: IVF `nprobe=all` expansion output is
    /// byte-identical to the exhaustive path at threads 1 and 4.
    full_probe_byte_identical_to_exhaustive: bool,
}

/// Serve startup: full offline training vs loading a USNP snapshot of the
/// very same engine (schema v3).
#[derive(Serialize)]
struct StartupStage {
    /// `ExpansionEngine::build` wall clock: world generation + training.
    train_ms: f64,
    /// `ExpansionEngine::from_snapshot_bytes` wall clock: checksum-verified
    /// decode + world regeneration + cross-checks + reassembly.
    snapshot_load_ms: f64,
    speedup_load_vs_train: f64,
    snapshot_bytes: usize,
    /// Whole-file FNV fingerprint (hex) of the snapshot, as `/metrics`
    /// reports it.
    snapshot_fingerprint: String,
    /// Hard-asserted in-binary: the loaded engine answers every sampled
    /// query byte-identically to the trained one.
    answers_byte_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    profile: String,
    seed: u64,
    host_parallelism: usize,
    num_queries: usize,
    num_entities: usize,
    scoring: Option<ScoringStage>,
    training: Option<TrainingStage>,
    eval: Option<StageTiming>,
    index: IndexStage,
    startup: Option<StartupStage>,
    note: String,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-3 wall clock for cheap stages (noise on shared hosts easily
/// exceeds the 10% level these comparisons care about).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            ms(t)
        })
        .fold(f64::INFINITY, f64::min)
}

/// FNV-1a over a ranked list's `(entity, score-bits)` stream — the byte
/// identity witness.
fn fingerprint(lists: &[RankedList]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for l in lists {
        for &(e, s) in l.entries() {
            eat(e.index() as u64);
            eat(s.to_bits() as u64);
        }
    }
    h
}

/// The pre-`ultra-par` scoring loop: every candidate against every positive
/// seed, one cosine at a time.
fn scalar_preliminary(ret: &RetExpan, world: &World, q: &Query) -> Vec<(EntityId, f32)> {
    world
        .entities
        .iter()
        .filter(|e| !q.is_seed(e.id))
        .map(|e| {
            let s = if q.pos_seeds.is_empty() {
                0.0
            } else {
                q.pos_seeds
                    .iter()
                    .map(|&sd| cosine(ret.reps.row(e.id), ret.reps.row(sd)))
                    .sum::<f32>()
                    / q.pos_seeds.len() as f32
            };
            (e.id, s)
        })
        .collect()
}

fn expand_all<'w>(ret: &RetExpan, world: &'w World, queries: &[&'w Query]) -> Vec<RankedList> {
    queries.iter().map(|q| ret.expand(world, q)).collect()
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the preliminary scoring stage of `source` over every query, timing
/// each pass and keeping its top-`keep` entity ids (rank order: score desc,
/// then id — the `RankedList` contract). Returns `(sorted_micros, tops)`.
fn sweep_source(
    source: &dyn CandidateSource,
    ret: &RetExpan,
    queries: &[&Query],
    keep: usize,
    pool: &Pool,
) -> (Vec<u64>, Vec<Vec<EntityId>>) {
    let mut micros = Vec::with_capacity(queries.len());
    let mut tops = Vec::with_capacity(queries.len());
    for q in queries {
        let t = Instant::now();
        let scored = source.scored_candidates(&ret.reps, &q.pos_seeds, pool);
        let ranked = RankedList::from_scores(scored);
        micros.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
        tops.push(
            ranked
                .entries()
                .iter()
                .take(keep)
                .map(|&(e, _)| e)
                .collect(),
        );
    }
    micros.sort_unstable();
    (micros, tops)
}

/// Mean fraction of the exhaustive top-`k` recovered in the probed top-`k`.
fn recall_at(k: usize, exact: &[Vec<EntityId>], probed: &[Vec<EntityId>]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (e, p) in exact.iter().zip(probed) {
        let truth: Vec<EntityId> = e.iter().take(k).copied().collect();
        if truth.is_empty() {
            total += 1.0;
            continue;
        }
        let hit = p.iter().take(k).filter(|id| truth.contains(id)).count();
        total += hit as f64 / truth.len() as f64;
    }
    total / exact.len() as f64
}

fn main() {
    // `--profile <name>` mirrors `ULTRA_PROFILE` for call sites (CI, one-off
    // runs) where a flag is clearer than an env var; the flag wins.
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--profile") {
        let p = argv
            .get(i + 1)
            .expect("--profile requires a value (tiny|small|paper|huge)");
        std::env::set_var("ULTRA_PROFILE", p);
    }
    let world = world_from_env();
    let profile = std::env::var("ULTRA_PROFILE").unwrap_or_else(|_| "small".into());
    let huge = profile == "huge";
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let num_queries: usize = world.ultra_classes.iter().map(|u| u.queries.len()).sum();

    // On `huge` the encoder is deliberately cheap: the index stage measures
    // retrieval against the *exhaustive ranking over the same embeddings*,
    // so embedding quality is irrelevant — only N and dim matter.
    let encoder_cfg = if huge {
        EncoderConfig {
            epochs: 1,
            dim: 64,
            neg_samples: 16,
            max_sentences_per_entity: 2,
            ..EncoderConfig::default()
        }
    } else {
        EncoderConfig::default()
    };
    eprintln!("[perf] training RetExpan encoder…");
    let ret = RetExpan::train(&world, encoder_cfg, RetExpanConfig::default());

    let all_queries: Vec<&Query> = world.queries().map(|(_u, q)| q).collect();
    // The thread-identity gate re-runs full expansions several times; cap
    // the replayed set on `huge` so the gate stays minutes, not hours.
    let gate_queries: Vec<&Query> = if huge {
        all_queries.iter().copied().take(64).collect()
    } else {
        all_queries.clone()
    };

    // --- Scoring / training / eval stages (schema v1; skipped on huge) ----
    let mut scoring = None;
    let mut training = None;
    let mut eval = None;
    let mut scalar_checksum = 0.0f64;
    if !huge {
        // Warm up, then time whole passes over every query (best of 3).
        let _ = expand_all(&ret, &world, &all_queries);
        let scalar_prepr_ms = best_of_3(|| {
            scalar_checksum = 0.0;
            for q in &all_queries {
                for (_, s) in scalar_preliminary(&ret, &world, q) {
                    scalar_checksum += s as f64;
                }
            }
        });

        set_threads(1);
        let lists_t1 = expand_all(&ret, &world, &all_queries);
        let scoring_t1_ms = best_of_3(|| {
            let _ = expand_all(&ret, &world, &all_queries);
        });

        set_threads(4);
        let lists_t4 = expand_all(&ret, &world, &all_queries);
        let scoring_t4_ms = best_of_3(|| {
            let _ = expand_all(&ret, &world, &all_queries);
        });
        let ranked_identical = fingerprint(&lists_t1) == fingerprint(&lists_t4);
        scoring = Some(ScoringStage {
            scalar_prepr_ms,
            threads1_ms: scoring_t1_ms,
            threads4_ms: scoring_t4_ms,
            speedup_t4_vs_t1: scoring_t1_ms / scoring_t4_ms.max(1e-9),
            speedup_vs_prepr_scalar: scalar_prepr_ms / scoring_t4_ms.max(1e-9),
            ranked_lists_byte_identical: ranked_identical,
        });

        eprintln!("[perf] mining lists for contrastive training…");
        let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
        let mined = mine_lists(&world, &ret, &oracle, 30, 10);
        let pair_cfg = PairConfig::default();

        set_threads(1);
        let mut enc1 = ret.encoder.clone();
        let t = Instant::now();
        let losses_t1 = train_contrastive(&mut enc1, &world, &mined, &pair_cfg);
        let training_t1_ms = ms(t);

        set_threads(4);
        let mut enc4 = ret.encoder.clone();
        let t = Instant::now();
        let losses_t4 = train_contrastive(&mut enc4, &world, &mined, &pair_cfg);
        let training_t4_ms = ms(t);
        let loss_identical = losses_t1.len() == losses_t4.len()
            && losses_t1
                .iter()
                .zip(&losses_t4)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        let speedup_vs_v3 = V3_TRAINING_THREADS1_MS / training_t1_ms.max(1e-9);
        let single_thread_gate = if profile == "small" {
            assert!(
                speedup_vs_v3 >= 2.0,
                "fused training must be ≥ 2x faster single-threaded than the \
                 committed v3 baseline ({V3_TRAINING_THREADS1_MS:.1}ms), got \
                 {training_t1_ms:.1}ms ({speedup_vs_v3:.2}x)"
            );
            "enforced".to_string()
        } else {
            format!("skipped (v3 baseline was measured on the small profile, not {profile})")
        };
        let t4_vs_t1 = training_t1_ms / training_t4_ms.max(1e-9);
        let thread_scaling_gate = if host_parallelism >= 4 {
            assert!(
                t4_vs_t1 >= 1.5,
                "fused training must scale ≥ 1.5x from 1 to 4 threads on a \
                 ≥ 4-core host, got {t4_vs_t1:.2}x"
            );
            "enforced".to_string()
        } else {
            format!("skipped (host_parallelism={host_parallelism} < 4)")
        };
        training = Some(TrainingStage {
            threads1_ms: training_t1_ms,
            threads4_ms: training_t4_ms,
            speedup_t4_vs_t1: t4_vs_t1,
            v3_baseline_threads1_ms: V3_TRAINING_THREADS1_MS,
            speedup_vs_v3_threads1: speedup_vs_v3,
            single_thread_gate,
            thread_scaling_gate,
            loss_curve_bit_identical: loss_identical,
            num_batches: losses_t1.len(),
        });

        let r1 = evaluate_method_par(&world, &Pool::new(1), |_u, q| ret.expand(&world, q));
        let eval_t1_ms = best_of_3(|| {
            let _ = evaluate_method_par(&world, &Pool::new(1), |_u, q| ret.expand(&world, q));
        });
        let r4 = evaluate_method_par(&world, &Pool::new(4), |_u, q| ret.expand(&world, q));
        let eval_t4_ms = best_of_3(|| {
            let _ = evaluate_method_par(&world, &Pool::new(4), |_u, q| ret.expand(&world, q));
        });
        assert_eq!(r1.num_queries, r4.num_queries);
        eval = Some(StageTiming {
            threads1_ms: eval_t1_ms,
            threads4_ms: eval_t4_ms,
            speedup_t4_vs_t1: eval_t1_ms / eval_t4_ms.max(1e-9),
        });
        set_threads(0); // restore ambient default
    }

    // --- Index stage -------------------------------------------------------
    let pool = Pool::global();
    let ivf_cfg = IvfConfig::default();
    eprintln!("[perf] building IVF index…");
    let t = Instant::now();
    let index = Arc::new(IvfIndex::build(&ret.reps, &ivf_cfg, &pool));
    let build_ms = ms(t);
    let nlist = index.nlist();
    eprintln!("[perf] IVF ready: {nlist} lists, build {build_ms:.1}ms");

    let keep = 50;
    let (ex_micros, ex_tops) = sweep_source(&Exhaustive, &ret, &all_queries, keep, &pool);
    let exhaustive_p50 = percentile(&ex_micros, 0.50);
    let exhaustive_p99 = percentile(&ex_micros, 0.99);

    let mut sweep = Vec::new();
    for nprobe in [1usize, 2, 4, 8, 16, 32, 64, 0] {
        if nprobe >= nlist && nprobe != 0 {
            continue; // ≥ nlist is "all lists"; the 0 point already covers it
        }
        let source = IvfSource::new(index.clone(), nprobe);
        let (micros, tops) = sweep_source(&source, &ret, &all_queries, keep, &pool);
        let p50 = percentile(&micros, 0.50);
        let point = ProbePoint {
            nprobe,
            recall_at_10: recall_at(10, &ex_tops, &tops),
            recall_at_50: recall_at(50, &ex_tops, &tops),
            p50_micros: p50,
            p99_micros: percentile(&micros, 0.99),
            speedup_vs_exhaustive_p50: exhaustive_p50 as f64 / (p50.max(1)) as f64,
        };
        eprintln!(
            "[perf] nprobe={:<4} recall@10={:.3} recall@50={:.3} p50={}µs p99={}µs ({:.2}x)",
            if point.nprobe == 0 {
                "all".to_string()
            } else {
                point.nprobe.to_string()
            },
            point.recall_at_10,
            point.recall_at_50,
            point.p50_micros,
            point.p99_micros,
            point.speedup_vs_exhaustive_p50,
        );
        sweep.push(point);
    }

    // Full-probe recall must be exact — the sweep's own sanity anchor.
    if let Some(all_point) = sweep.iter().find(|p| p.nprobe == 0) {
        assert!(
            (all_point.recall_at_50 - 1.0).abs() < 1e-12,
            "nprobe=all recall@50 must be exactly 1.0, got {}",
            all_point.recall_at_50
        );
    }
    let best = sweep
        .iter()
        .filter(|p| p.nprobe != 0 && p.recall_at_50 >= 0.95)
        .min_by_key(|p| p.nprobe)
        .map(|p| (p.nprobe, p.speedup_vs_exhaustive_p50));

    // Byte-identity gate: IVF with nprobe=all routed through the full
    // RetExpan pipeline must reproduce the exhaustive expansion exactly,
    // at both thread counts.
    eprintln!("[perf] checking full-probe byte identity across thread counts…");
    let mut ret = ret;
    let mut full_probe_identical = true;
    for threads in [1usize, 4] {
        set_threads(threads);
        ret.set_source(Box::new(Exhaustive));
        let exhaustive_lists = expand_all(&ret, &world, &gate_queries);
        ret.set_source(Box::new(IvfSource::new(index.clone(), 0)));
        let ivf_lists = expand_all(&ret, &world, &gate_queries);
        let same = fingerprint(&exhaustive_lists) == fingerprint(&ivf_lists);
        eprintln!(
            "[perf]   threads={threads}: {}",
            if same { "identical" } else { "DIVERGED" }
        );
        full_probe_identical &= same;
    }
    ret.set_source(Box::new(Exhaustive));
    set_threads(0);
    assert!(
        full_probe_identical,
        "IVF nprobe=all expansion diverged from the exhaustive path"
    );

    let index_stage = IndexStage {
        kind: "ivf".into(),
        nlist,
        kmeans_iters: ivf_cfg.kmeans_iters,
        build_ms,
        exhaustive_p50_micros: exhaustive_p50,
        exhaustive_p99_micros: exhaustive_p99,
        nprobe_sweep: sweep,
        best_nprobe_at_recall50_95: best.map(|(np, _)| np),
        best_speedup_at_recall50_95: best.map(|(_, sp)| sp),
        full_probe_byte_identical_to_exhaustive: full_probe_identical,
    };

    if huge {
        let best = index_stage
            .best_speedup_at_recall50_95
            .expect("huge profile: no nprobe point reached recall@50 ≥ 0.95");
        assert!(
            best >= 5.0,
            "huge profile: IVF p50 speedup {best:.2}x < 5x at recall@50 ≥ 0.95"
        );
        eprintln!(
            "[perf] huge gate OK: nprobe={} gives {best:.2}x at recall@50 ≥ 0.95",
            index_stage.best_nprobe_at_recall50_95.unwrap_or(0)
        );
    }

    // --- Startup stage (schema v3; skipped on huge) ------------------------
    let mut startup = None;
    if !huge {
        eprintln!("[perf] startup stage: train-at-startup vs snapshot load…");
        let engine_cfg = EngineConfig {
            profile: profile.clone(),
            seed: world.config.seed,
            ..EngineConfig::default()
        };
        let t = Instant::now();
        let trained = ExpansionEngine::build(engine_cfg).expect("engine builds");
        let train_ms = ms(t);
        let bytes = trained.to_snapshot().expect("snapshot encodes").to_bytes();
        let snapshot_fingerprint = format!("{:016x}", ultra_snap::file_fingerprint(&bytes));
        let t = Instant::now();
        let loaded = ExpansionEngine::from_snapshot_bytes(&bytes, SnapshotRuntime::default())
            .expect("snapshot loads");
        let snapshot_load_ms = ms(t);

        let answers = |engine: &ExpansionEngine| -> Vec<RankedList> {
            engine
                .world()
                .queries()
                .take(64)
                .map(|(_u, q)| {
                    engine
                        .expand_uncached(Method::RetExpan, q, 0)
                        .expect("engine expands")
                })
                .collect()
        };
        let identical = fingerprint(&answers(&trained)) == fingerprint(&answers(&loaded));
        assert!(
            identical,
            "snapshot-loaded engine diverged from train-at-startup"
        );
        let speedup = train_ms / snapshot_load_ms.max(1e-9);
        eprintln!(
            "[perf] startup: train {train_ms:.0}ms vs snapshot load {snapshot_load_ms:.1}ms \
             ({speedup:.0}x, {} bytes, fingerprint {snapshot_fingerprint})",
            bytes.len()
        );
        if profile == "small" {
            assert!(
                speedup >= 20.0,
                "small profile: snapshot load must be ≥ 20x faster than training, got {speedup:.1}x"
            );
        }
        startup = Some(StartupStage {
            train_ms,
            snapshot_load_ms,
            speedup_load_vs_train: speedup,
            snapshot_bytes: bytes.len(),
            snapshot_fingerprint,
            answers_byte_identical: identical,
        });
    }

    let report = BenchReport {
        schema_version: 4,
        profile,
        seed: world.config.seed,
        host_parallelism,
        num_queries,
        num_entities: world.num_entities(),
        scoring,
        training,
        eval,
        index: index_stage,
        startup,
        note: format!(
            "scalar checksum {scalar_checksum:.3}; threads=1 and threads=4 run the same \
             chunked kernels (fixed chunk boundaries, ordered reduction), so outputs are \
             byte-identical and t4-vs-t1 reflects hardware parallelism only. The index \
             sweep times the preliminary scoring stage (candidate generation + ranking) \
             per query; IVF speedups are algorithmic (scan nprobe/nlist of the entities) \
             and hold on single-core hosts. scoring/training/eval/startup are null on \
             the huge profile by design. The training stage times the fused batched \
             contrastive step (persistent worker team, cost-weighted chunks, recycled \
             workspaces) against the committed v3 per-example baseline. The startup \
             stage times the full offline phase against a checksum-verified USNP \
             snapshot load of the same engine."
        ),
    };
    if let Some(s) = &report.scoring {
        assert!(
            s.ranked_lists_byte_identical,
            "ranked lists diverged between thread counts"
        );
    }
    if let Some(t) = &report.training {
        assert!(
            t.loss_curve_bit_identical,
            "loss curves diverged between thread counts"
        );
    }
    dump_json("BENCH_expand", &report);
    // A copy at the repo root gives the acceptance gate a stable path.
    if let Ok(json) = serde_json::to_string_pretty(&report) {
        let _ = std::fs::write("BENCH_expand.json", json + "\n");
        eprintln!("[perf] wrote BENCH_expand.json");
    }
    if let Some(s) = &report.scoring {
        println!(
            "scoring: scalar {:.1}ms  t1 {:.1}ms  t4 {:.1}ms  (vs-scalar {:.2}x, t4/t1 {:.2}x)",
            s.scalar_prepr_ms,
            s.threads1_ms,
            s.threads4_ms,
            s.speedup_vs_prepr_scalar,
            s.speedup_t4_vs_t1,
        );
    }
    if let Some(t) = &report.training {
        println!(
            "training: t1 {:.1}ms  t4 {:.1}ms  (t4/t1 {:.2}x [{}], vs-v3 {:.2}x [{}], {} batches)",
            t.threads1_ms,
            t.threads4_ms,
            t.speedup_t4_vs_t1,
            t.thread_scaling_gate,
            t.speedup_vs_v3_threads1,
            t.single_thread_gate,
            t.num_batches,
        );
    }
    if let Some(e) = &report.eval {
        println!(
            "eval: t1 {:.1}ms  t4 {:.1}ms  ({:.2}x)",
            e.threads1_ms, e.threads4_ms, e.speedup_t4_vs_t1,
        );
    }
    if let Some(s) = &report.startup {
        println!(
            "startup: train {:.0}ms  snapshot load {:.1}ms  ({:.0}x, {} bytes)",
            s.train_ms, s.snapshot_load_ms, s.speedup_load_vs_train, s.snapshot_bytes,
        );
    }
    println!(
        "index: ivf nlist={} build {:.1}ms  exhaustive p50={}µs  best ≥0.95-recall point: {}",
        report.index.nlist,
        report.index.build_ms,
        report.index.exhaustive_p50_micros,
        match (
            report.index.best_nprobe_at_recall50_95,
            report.index.best_speedup_at_recall50_95
        ) {
            (Some(np), Some(sp)) => format!("nprobe={np} ({sp:.2}x)"),
            _ => "none".into(),
        },
    );
}

//! Table 1 — comparison of ESE datasets. The four prior datasets' numbers
//! are the paper's; the UltraWiki column is recomputed from the generated
//! world.

use ultra_bench::{dump_json, world_from_env};
use ultra_data::WorldStats;
use ultra_eval::TableWriter;

fn main() {
    let world = world_from_env();
    let stats = WorldStats::compute(&world);

    let mut t = TableWriter::new(vec![
        "",
        "Wiki",
        "APR",
        "CoNLL",
        "ONs",
        "UltraWiki (generated)",
    ]);
    t.row(vec![
        "# Semantic Classes".to_string(),
        "8".into(),
        "3".into(),
        "4".into(),
        "8".into(),
        stats.num_ultra_classes.to_string(),
    ]);
    t.row(vec![
        "Semantic granularity".to_string(),
        "Fine".into(),
        "Fine".into(),
        "Coarse".into(),
        "Coarse".into(),
        "Ultra-Fine".into(),
    ]);
    t.row(vec![
        "# Queries per Class".to_string(),
        "5".into(),
        "5".into(),
        "1".into(),
        "1".into(),
        world.config.queries_per_class.to_string(),
    ]);
    t.row(vec![
        "# Pos Seeds per Query".to_string(),
        "3".into(),
        "3".into(),
        "10".into(),
        "10".into(),
        format!("{}-{}", world.config.seeds_min, world.config.seeds_max),
    ]);
    t.row(vec![
        "# Neg Seeds per Query".to_string(),
        "N/A".into(),
        "N/A".into(),
        "N/A".into(),
        "N/A".into(),
        format!("{}-{}", world.config.seeds_min, world.config.seeds_max),
    ]);
    t.row(vec![
        "# Candidate Entities".to_string(),
        "33K".into(),
        "76K".into(),
        "6K".into(),
        "20K".into(),
        format!("{:.1}K", stats.num_entities as f64 / 1000.0),
    ]);
    t.row(vec![
        "# Sentences of Corpus".to_string(),
        "973K".into(),
        "1043K".into(),
        "21K".into(),
        "144K".into(),
        format!("{:.1}K", stats.num_sentences as f64 / 1000.0),
    ]);
    t.row(vec![
        "Entity Attribution".to_string(),
        "x".into(),
        "x".into(),
        "x".into(),
        "x".into(),
        "yes".into(),
    ]);
    println!("\nTable 1 — Comparison of ESE datasets");
    println!("{}", t.render());
    println!(
        "(generated world additionally: {} fine-grained classes, avg |P| = {:.1}, avg |N| = {:.1}, \
         ultra-class overlap fraction = {:.2})",
        stats.num_fine_classes, stats.avg_pos_targets, stats.avg_neg_targets, stats.overlap_fraction
    );
    // Annotation quality (Section 4.2): three simulated annotators at 96%
    // per-label accuracy land near the paper's reported Fleiss κ = 0.90.
    let kappa = ultra_data::simulated_annotation_kappa(&world, 3, 0.96);
    println!("simulated 3-annotator Fleiss kappa = {kappa:.2} (paper reports 0.90)");
    dump_json("table1", &stats);
}

//! `loadgen` — concurrent load generator for `ultrawiki serve`.
//!
//! Replays the served world's generated query set over N client threads and
//! reports throughput plus latency percentiles, split into *cold* (cache
//! miss) and *hit* requests via the `X-Ultra-Cache` response header. Along
//! the way it enforces the serving determinism contract: every response for
//! the same `(method, query_index, top_k)` must be byte-identical to the
//! first one seen, and every request must come back 200.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--threads N] [--top-k K]
//!         [--profile tiny|small|paper|huge] [--ann exhaustive|ivf] [--nprobe K]
//!         [--snapshot PATH]
//! ```
//!
//! Without `--addr` it boots an in-process server on an ephemeral port
//! (profile/seed from `--profile` / `ULTRA_PROFILE` / `ULTRA_SEED`, default
//! `tiny`; `--ann`/`--nprobe` select the candidate source), so
//! `cargo run -p ultra-bench --bin loadgen` works standalone. `--snapshot`
//! boots the in-process server from a snapshot file (built with
//! `ultrawiki build-index`) instead of training, and conflicts with
//! `--profile`/`--ann`/`--nprobe`, which a snapshot pins. After the run
//! it reads back `GET /metrics` and prints the server's active candidate
//! source, so results are attributable to an index configuration. Exits 0 on
//! success, 1 on any non-200 response or determinism mismatch.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use ultra_serve::http::{read_response, write_json_request};
use ultra_serve::{EngineConfig, ExpandRequest, ExpansionEngine, Method, Server, ServerConfig};

struct Flags {
    addr: Option<String>,
    requests: usize,
    threads: usize,
    top_k: usize,
    profile: Option<String>,
    ann: String,
    nprobe: Option<usize>,
    snapshot: Option<String>,
}

fn parse_args() -> Flags {
    let mut flags = Flags {
        addr: None,
        requests: 300,
        threads: 8,
        top_k: 20,
        profile: None,
        ann: "exhaustive".into(),
        nprobe: None,
        snapshot: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match (args[i].as_str(), value) {
            ("--addr", Some(v)) => flags.addr = Some(v.clone()),
            ("--requests", Some(v)) => {
                flags.requests = v.parse().expect("--requests takes a number")
            }
            ("--threads", Some(v)) => flags.threads = v.parse().expect("--threads takes a number"),
            ("--top-k", Some(v)) => flags.top_k = v.parse().expect("--top-k takes a number"),
            ("--profile", Some(v)) => flags.profile = Some(v.clone()),
            ("--ann", Some(v)) => flags.ann = v.clone(),
            ("--nprobe", Some(v)) => {
                flags.nprobe = Some(v.parse().expect("--nprobe takes a number"))
            }
            ("--snapshot", Some(v)) => flags.snapshot = Some(v.clone()),
            (other, _) => {
                eprintln!("unknown or valueless flag `{other}`");
                eprintln!(
                    "usage: loadgen [--addr HOST:PORT] [--requests N] [--threads N] [--top-k K] \
                     [--profile tiny|small|paper|huge] [--ann exhaustive|ivf] [--nprobe K] \
                     [--snapshot PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    flags
}

/// One round trip; returns `(status, cache_header, body, micros)`.
fn request(addr: &str, body: &[u8]) -> std::io::Result<(u16, String, Vec<u8>, u64)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    write_json_request(&mut stream, "POST", "/expand", body)?;
    let response = read_response(&mut BufReader::new(stream))
        .map_err(|e| std::io::Error::other(format!("{e}")))?;
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let cache = response.header("x-ultra-cache").unwrap_or("").to_string();
    Ok((response.status, cache, response.body, micros))
}

fn get_json(addr: &str, path: &str) -> serde_json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_json_request(&mut stream, "GET", path, b"").expect("write request");
    let response = read_response(&mut BufReader::new(stream)).expect("read response");
    assert_eq!(response.status, 200, "{path} must answer 200");
    serde_json::from_slice(&response.body).expect("valid JSON")
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(label: &str, latencies: &mut [u64]) -> u64 {
    latencies.sort_unstable();
    let p50 = percentile(latencies, 0.50);
    println!(
        "{label:>5}: n={:<6} p50={p50}µs p90={}µs p99={}µs max={}µs",
        latencies.len(),
        percentile(latencies, 0.90),
        percentile(latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
    p50
}

fn main() {
    let flags = parse_args();

    // Either target a running server or boot one in-process.
    let (addr, _local) = match &flags.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let engine = if let Some(path) = &flags.snapshot {
                if flags.profile.is_some() || flags.ann != "exhaustive" || flags.nprobe.is_some() {
                    eprintln!(
                        "--snapshot pins profile/ann/nprobe; drop those flags when replaying one"
                    );
                    std::process::exit(2);
                }
                eprintln!("[loadgen] no --addr; booting in-process server from snapshot {path}…");
                ExpansionEngine::load_snapshot(
                    std::path::Path::new(path),
                    ultra_serve::SnapshotRuntime::default(),
                )
                .expect("snapshot load")
            } else {
                let profile = flags
                    .profile
                    .clone()
                    .or_else(|| std::env::var("ULTRA_PROFILE").ok())
                    .unwrap_or_else(|| "tiny".into());
                let seed: u64 = std::env::var("ULTRA_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(42);
                let ann = ultra_ann::AnnSpec::from_flags(&flags.ann, None, flags.nprobe)
                    .unwrap_or_else(|| {
                        eprintln!("unknown --ann `{}` (expected exhaustive|ivf)", flags.ann);
                        std::process::exit(2);
                    });
                eprintln!(
                    "[loadgen] no --addr; booting in-process server \
                     (profile={profile}, seed={seed})…"
                );
                ExpansionEngine::build(EngineConfig {
                    profile,
                    seed,
                    retexpan: ultra_retexpan::RetExpanConfig {
                        ann,
                        ..ultra_retexpan::RetExpanConfig::default()
                    },
                    ..EngineConfig::default()
                })
                .expect("engine build")
            };
            let handle = Server::start(
                Arc::new(engine),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    ..ServerConfig::default()
                },
            )
            .expect("server start");
            (handle.addr().to_string(), Some(handle))
        }
    };

    let health = get_json(&addr, "/healthz");
    let num_queries = health
        .get("queries")
        .and_then(serde_json::Value::as_u64)
        .expect("healthz reports query count") as usize;
    assert!(num_queries > 0, "server has no queries to replay");
    eprintln!("[loadgen] target {addr}: {num_queries} queries available");

    let next = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicBool::new(false));
    // query_index -> first response body seen (the byte-identity reference).
    let reference: Arc<Mutex<HashMap<usize, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let cold = Arc::new(Mutex::new(Vec::new()));
    let hits = Arc::new(Mutex::new(Vec::new()));

    let started = Instant::now();
    let workers: Vec<_> = (0..flags.threads.max(1))
        .map(|_| {
            let (addr, next, failed, reference, cold, hits) = (
                addr.clone(),
                next.clone(),
                failed.clone(),
                reference.clone(),
                cold.clone(),
                hits.clone(),
            );
            let (requests, top_k) = (flags.requests, flags.top_k);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests || failed.load(Ordering::Relaxed) {
                    break;
                }
                let query_index = i % num_queries;
                let body = serde_json::to_vec(&ExpandRequest::replay(
                    Method::RetExpan,
                    query_index,
                    top_k,
                ))
                .expect("serialize request");
                match request(&addr, &body) {
                    Ok((200, cache, response_body, micros)) => {
                        let mut seen = reference.lock().expect("reference lock");
                        if let Some(first) = seen.get(&query_index) {
                            if *first != response_body {
                                eprintln!("[loadgen] DETERMINISM MISMATCH on query {query_index}");
                                failed.store(true, Ordering::Relaxed);
                            }
                        } else {
                            seen.insert(query_index, response_body);
                        }
                        drop(seen);
                        let bucket = if cache == "hit" { &hits } else { &cold };
                        bucket.lock().expect("latency lock").push(micros);
                    }
                    Ok((status, _, body, _)) => {
                        eprintln!(
                            "[loadgen] non-200 response ({status}): {}",
                            String::from_utf8_lossy(&body)
                        );
                        failed.store(true, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("[loadgen] request failed: {e}");
                        failed.store(true, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let elapsed = started.elapsed();

    let mut cold = cold.lock().expect("cold lock").clone();
    let mut hits = hits.lock().expect("hits lock").clone();
    let total = cold.len() + hits.len();
    println!(
        "ran {total} requests over {} threads in {:.2}s ({:.0} req/s)",
        flags.threads,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    let cold_p50 = summarize("cold", &mut cold);
    let hit_p50 = summarize("hit", &mut hits);
    if hit_p50 > 0 {
        println!(
            "cold/hit p50 speedup: {:.1}x",
            cold_p50 as f64 / hit_p50 as f64
        );
    }

    let metrics = get_json(&addr, "/metrics");
    if let Some(index) = metrics.get("index") {
        let source = index
            .get("candidate_source")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("unknown");
        let build_micros = index
            .get("index_build_micros")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        println!(
            "candidate source: {source} (index build {:.1}ms)",
            build_micros as f64 / 1e3
        );
        if let Some(fp) = index
            .get("snapshot_fingerprint")
            .and_then(serde_json::Value::as_str)
        {
            let load_micros = index
                .get("snapshot_load_micros")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            println!(
                "served from snapshot {fp} (loaded in {:.1}ms)",
                load_micros as f64 / 1e3
            );
        }
    }

    if failed.load(Ordering::Relaxed) {
        eprintln!("[loadgen] FAILED (non-200 or determinism mismatch)");
        std::process::exit(1);
    }
    println!("[loadgen] OK: all responses 200 and byte-identical per query");
}

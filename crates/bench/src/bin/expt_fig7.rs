//! Figure 7 — parameter analysis: label smoothing η and segment length l
//! (RetExpan); mined-list size |L_pos|=|L_neg| (contrastive strategy);
//! Top-p and segment length (GenExpan).

use std::collections::BTreeMap;
use ultra_bench::{dump_json, methods, world_from_env, Suite};
use ultra_embed::{EncoderConfig, PairConfig};
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_retexpan::{RetExpan, RetExpanConfig};

fn main() {
    let mut suite = Suite::new(world_from_env());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    // (a) Label smoothing η.
    let mut t = TableWriter::new(vec!["eta", "PosMAP", "NegMAP", "CombMAP"]);
    for eta in [0.0f32, 0.05, 0.075, 0.15, 0.3] {
        let model = RetExpan::train(
            &suite.world,
            EncoderConfig::default().with_eta(eta),
            RetExpanConfig::default(),
        );
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        t.row(vec![
            format!("{eta}"),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
        ]);
        json.insert(format!("eta={eta}"), r);
    }
    println!("\nFigure 7a — RetExpan label smoothing η");
    println!("{}", t.render());

    // (b) Segment length l for RetExpan (0 = naive global re-rank).
    let ret = suite.retexpan();
    let mut t = TableWriter::new(vec!["l", "PosMAP", "NegMAP", "CombMAP"]);
    for l in [5usize, 10, 20, 50, 100, 0] {
        let mut model =
            RetExpan::from_encoder(&suite.world, ret.encoder.clone(), ret.config.clone());
        model.config.segment_len = l;
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        let label = if l == 0 {
            "global".to_string()
        } else {
            l.to_string()
        };
        t.row(vec![
            label.clone(),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
        ]);
        json.insert(format!("ret_l={label}"), r);
    }
    println!("Figure 7b — RetExpan re-ranking segment length l");
    println!("{}", t.render());

    // (c) Mined-list size |L_pos| = |L_neg|.
    let mut t = TableWriter::new(vec!["|L|", "PosMAP", "NegMAP", "CombMAP"]);
    for cap in [5usize, 10, 20, 40] {
        let model = methods::retexpan_contrast_sized(&mut suite, &PairConfig::default(), cap);
        let r = evaluate_method(&suite.world, |_u, q| model.expand(&suite.world, q));
        t.row(vec![
            cap.to_string(),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
        ]);
        json.insert(format!("list_cap={cap}"), r);
    }
    println!("Figure 7c — Contrastive mined-list size");
    println!("{}", t.render());

    // (d) GenExpan Top-p.
    let mut t = TableWriter::new(vec!["top-p", "PosMAP", "NegMAP", "CombMAP"]);
    for p in [0.5f64, 0.6, 0.7, 0.8, 0.9] {
        let model = methods::genexpan_with(&mut suite, |g| g.config.top_p_frac = p);
        let r = evaluate_method(&suite.world, |u, q| model.expand(&suite.world, u, q));
        t.row(vec![
            format!("{p}"),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
        ]);
        json.insert(format!("top_p={p}"), r);
    }
    println!("Figure 7d — GenExpan Top-p");
    println!("{}", t.render());

    // (e) GenExpan segment length.
    let mut t = TableWriter::new(vec!["l", "PosMAP", "NegMAP", "CombMAP"]);
    for l in [5usize, 10, 20, 50, 0] {
        let model = methods::genexpan_with(&mut suite, |g| g.config.segment_len = l);
        let r = evaluate_method(&suite.world, |u, q| model.expand(&suite.world, u, q));
        let label = if l == 0 {
            "global".to_string()
        } else {
            l.to_string()
        };
        t.row(vec![
            label.clone(),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
        ]);
        json.insert(format!("gen_l={label}"), r);
    }
    println!("Figure 7e — GenExpan re-ranking segment length l");
    println!("{}", t.render());

    dump_json("fig7", &json);
}

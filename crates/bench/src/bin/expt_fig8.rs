//! Figure 8 — LLM family and size scaling: the BLOOM/LLaMA ladder mapped
//! to n-gram order (size) and smoothing family (family). Expectation:
//! larger is better within a family; LLaMA (absolute discounting) beats
//! BLOOM (Witten-Bell) at equal size.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, world_from_env, Suite};
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::{GenExpan, GenExpanConfig};
use ultra_lm::ModelSpec;

fn main() {
    let suite = Suite::new(world_from_env());
    let mut t = TableWriter::new(vec!["Backbone", "PosMAP", "NegMAP", "CombMAP", "CombAvg"]);
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();
    for spec in ModelSpec::figure8_ladder() {
        let name = spec.name;
        let model = GenExpan::train(
            &suite.world,
            GenExpanConfig {
                model: spec,
                ..GenExpanConfig::default()
            },
        );
        let r = evaluate_method(&suite.world, |u, q| model.expand(&suite.world, u, q));
        t.row(vec![
            name.to_string(),
            format!("{:.2}", r.avg_pos_map()),
            format!("{:.2}", r.avg_neg_map()),
            format!("{:.2}", r.avg_comb_map()),
            format!("{:.2}", r.avg_comb()),
        ]);
        json.insert(name.to_string(), r);
    }
    println!("\nFigure 8 — GenExpan backbone families and sizes");
    println!("{}", t.render());
    dump_json("fig8", &json);
}

//! Table 10 — interaction of the two paradigms: model A recalls the top
//! 1000 candidates, model B runs restricted to them.

use std::collections::BTreeMap;
use ultra_bench::{dump_json, fmt, world_from_env, Suite};
use ultra_core::EntityId;
use ultra_eval::{evaluate_method, MetricReport, TableWriter};
use ultra_genexpan::{GenExpan, GenExpanConfig};
use ultra_retexpan::{RetExpan, RetExpanConfig};

/// Recall budget handed from model A to model B (the paper uses 1000;
/// scaled down with the small profile's vocabulary).
fn recall_budget(num_entities: usize) -> usize {
    (num_entities / 10).clamp(200, 1000)
}

fn main() {
    let mut suite = Suite::new(world_from_env());
    let budget = recall_budget(suite.world.num_entities());
    eprintln!("[table10] recall budget = {budget}");
    let mut t = TableWriter::new(fmt::map_headers());
    let mut json: BTreeMap<String, MetricReport> = BTreeMap::new();

    // Plain RetExpan and GenExpan.
    let ret = suite.retexpan();
    let gen = suite.genexpan();
    let r = evaluate_method(&suite.world, |_u, q| ret.expand(&suite.world, q));
    fmt::push_map_rows(&mut t, "RetExpan", &r);
    json.insert("RetExpan".into(), r);
    let r = evaluate_method(&suite.world, |u, q| gen.expand(&suite.world, u, q));
    fmt::push_map_rows(&mut t, "GenExpan", &r);
    json.insert("GenExpan".into(), r);

    // RetExpan + GenExpan: RetExpan recalls, a pooled GenExpan expands.
    // (The candidate pool differs per query, so GenExpan's trie is rebuilt
    // per query over the recalled entities.)
    let mut wide_ret =
        RetExpan::from_encoder(&suite.world, ret.encoder.clone(), RetExpanConfig::default());
    wide_ret.config.top_k = budget;
    wide_ret.config.rerank = false;
    let r = evaluate_method(&suite.world, |u, q| {
        let pool: Vec<EntityId> = wide_ret
            .preliminary_list(&suite.world, q, None)
            .entities()
            .collect();
        let pooled = GenExpan::train_with_pool(&suite.world, GenExpanConfig::default(), Some(pool));
        pooled.expand(&suite.world, u, q)
    });
    fmt::push_map_rows(&mut t, "RetExpan + GenExpan", &r);
    json.insert("RetExpan + GenExpan".into(), r);

    // GenExpan + RetExpan: GenExpan recalls (large target), RetExpan
    // re-scores within the recalled pool.
    let mut wide_gen: GenExpan = (*gen).clone();
    wide_gen.config.target_size = budget;
    wide_gen.config.max_rounds = 80;
    wide_gen.config.rerank = false;
    let r = evaluate_method(&suite.world, |u, q| {
        let pool: Vec<EntityId> = wide_gen
            .expand(&suite.world, u, q)
            .entities()
            .filter(|e| e.index() < suite.world.num_entities())
            .collect();
        ret.expand_restricted(&suite.world, q, Some(&pool))
    });
    fmt::push_map_rows(&mut t, "GenExpan + RetExpan", &r);
    json.insert("GenExpan + RetExpan".into(), r);

    println!("\nTable 10 — Paradigm interaction (MAP)");
    println!("{}", t.render());
    dump_json("table10", &json);
}

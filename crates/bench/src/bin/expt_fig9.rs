//! Figure 9 — case study: ranked GenExpan outputs (plain, +RA, +CoT) with
//! the paper's markers: `+++` positive target, `---` negative target,
//! `!!!` irrelevant same-fine-class entity.

use ultra_bench::{methods, world_from_env, Suite};
use ultra_core::{Query, RankedList, UltraClass};
use ultra_data::World;
use ultra_genexpan::{CotConfig, GenRaSource};

fn tag(world: &World, u: &UltraClass, e: ultra_core::EntityId) -> &'static str {
    if e.index() >= world.num_entities() {
        return "???"; // hallucination
    }
    if u.pos_targets.contains(&e) {
        "+++"
    } else if u.neg_targets.contains(&e) {
        "---"
    } else if world.entity(e).class == Some(u.fine) {
        "!!!"
    } else {
        "   "
    }
}

fn show(world: &World, u: &UltraClass, q: &Query, title: &str, list: &RankedList) {
    println!("\n  {title}");
    for (i, e) in list.entities().take(12).enumerate() {
        let name = if e.index() < world.num_entities() {
            world.entity(e).name.clone()
        } else {
            "<hallucination>".to_string()
        };
        println!("    {:2}  {} {}", i + 1, tag(world, u, e), name);
    }
    let _ = q;
}

fn main() {
    let mut suite = Suite::new(world_from_env());
    let gen = suite.genexpan();
    let ra = methods::genexpan_with(&mut suite, |g| g.config.ra = GenRaSource::Introduction);
    let cot = methods::genexpan_with(&mut suite, |g| g.config.cot = CotConfig::default_cot());
    let world = &suite.world;

    println!(
        "\nFigure 9 — Case studies (+++ positive target, --- negative target, !!! same fine class)"
    );
    // Show-case the two classes the paper uses: China cities and Countries.
    for class_name in ["China cities", "Countries"] {
        let Some(u) = world
            .ultra_classes
            .iter()
            .find(|u| world.classes[u.fine.index()].name == class_name)
        else {
            continue;
        };
        let q = &u.queries[0];
        println!("\n== {} ==", world.describe_ultra(u));
        println!(
            "  positive seeds: {}",
            q.pos_seeds
                .iter()
                .map(|&e| world.entity(e).name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  negative seeds: {}",
            q.neg_seeds
                .iter()
                .map(|&e| world.entity(e).name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        show(world, u, q, "GenExpan", &gen.expand(world, u, q));
        show(world, u, q, "GenExpan + RA", &ra.expand(world, u, q));
        show(world, u, q, "GenExpan + CoT", &cot.expand(world, u, q));
    }
}

//! Row-formatting helpers shared by the experiment binaries.

use ultra_eval::{MetricReport, TableWriter};

/// Headers for a MAP-only analysis table (Tables 3–10 style).
pub fn map_headers() -> Vec<&'static str> {
    vec!["Method", "Type", "M@10", "M@20", "M@50", "M@100", "Avg"]
}

/// Pushes the three Pos/Neg/Comb MAP rows of one method.
pub fn push_map_rows(table: &mut TableWriter, name: &str, r: &MetricReport) {
    let fmt = |v: f64| format!("{v:.2}");
    let mut pos = vec![name.to_string(), "Pos".into()];
    pos.extend(r.pos_map.iter().map(|&v| fmt(v)));
    pos.push(fmt(r.avg_pos_map()));
    table.row(pos);
    let mut neg = vec![String::new(), "Neg".into()];
    neg.extend(r.neg_map.iter().map(|&v| fmt(v)));
    neg.push(fmt(r.avg_neg_map()));
    table.row(neg);
    let mut comb = vec![String::new(), "Comb".into()];
    comb.extend(r.comb_map.iter().map(|&v| fmt(v)));
    comb.push(fmt(r.avg_comb_map()));
    table.row(comb);
}

/// Pushes a single Comb-MAP row (Table 3 style).
pub fn push_comb_row(table: &mut TableWriter, name: &str, r: &MetricReport) {
    let mut row = vec![name.to_string()];
    row.extend(r.comb_map.iter().map(|&v| format!("{v:.2}")));
    row.push(format!("{:.2}", r.avg_comb_map()));
    table.row(row);
}

/// Pushes Δ rows between two reports (Table 5 style), `b − a`.
pub fn push_delta_rows(table: &mut TableWriter, name: &str, a: &MetricReport, b: &MetricReport) {
    let fmt = |x: f64, y: f64| format!("{:+.2}", y - x);
    let mut pos = vec![name.to_string(), "ΔPos".into()];
    pos.extend((0..4).map(|i| fmt(a.pos_map[i], b.pos_map[i])));
    pos.push(fmt(a.avg_pos_map(), b.avg_pos_map()));
    table.row(pos);
    let mut neg = vec![String::new(), "ΔNeg".into()];
    neg.extend((0..4).map(|i| fmt(a.neg_map[i], b.neg_map[i])));
    neg.push(fmt(a.avg_neg_map(), b.avg_neg_map()));
    table.row(neg);
    let mut comb = vec![String::new(), "ΔComb".into()];
    comb.extend((0..4).map(|i| fmt(a.comb_map[i], b.comb_map[i])));
    comb.push(fmt(a.avg_comb_map(), b.avg_comb_map()));
    table.row(comb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_eval::{MetricReport, QueryEval};

    fn report() -> MetricReport {
        MetricReport::aggregate(&[QueryEval {
            pos_map: [40.0; 4],
            neg_map: [10.0; 4],
            pos_p: [50.0; 4],
            neg_p: [20.0; 4],
        }])
    }

    #[test]
    fn map_rows_have_header_width() {
        let mut t = TableWriter::new(map_headers());
        push_map_rows(&mut t, "X", &report());
        assert_eq!(t.len(), 3);
        let rendered = t.render();
        assert!(
            rendered.contains("65.00"),
            "CombMAP = (40+100-10)/2: {rendered}"
        );
    }

    #[test]
    fn comb_row_is_single() {
        let mut t = TableWriter::new(vec!["Method", "C@10", "C@20", "C@50", "C@100", "Avg"]);
        push_comb_row(&mut t, "X", &report());
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("65.00"));
    }

    #[test]
    fn delta_rows_are_signed() {
        let mut t = TableWriter::new(map_headers());
        let a = report();
        let b = MetricReport::aggregate(&[QueryEval {
            pos_map: [42.0; 4],
            neg_map: [9.0; 4],
            pos_p: [50.0; 4],
            neg_p: [20.0; 4],
        }]);
        push_delta_rows(&mut t, "D", &a, &b);
        let rendered = t.render();
        assert!(rendered.contains("+2.00"));
        assert!(rendered.contains("-1.00"));
    }
}

//! Reusable training workspaces: every buffer the fused contrastive step
//! needs, allocated once and recycled across batches.
//!
//! The pre-fusion training path allocated per *example*: a fresh
//! `MlpGrad::zeros_like` (two weight-shaped matrices), a `SparseGrad`
//! BTreeMap, and a dozen intermediate `Vec`s per forward/backward. At
//! thousands of batches per epoch that allocation and zeroing traffic
//! dominated the actual gradient arithmetic (BENCH_expand.json v3: 7.85 s
//! of training vs 40 ms of scoring). A [`TrainWorkspace`] owns all of it;
//! [`TrainWorkspace::ensure`] reshapes lazily (allocating only on growth,
//! since `Vec` capacity is sticky) and [`TrainWorkspace::reset`] zeroes
//! just the accumulators — forward buffers are fully overwritten each
//! batch and need no clearing.
//!
//! One workspace serves one chunk of a batch; [`TrainWorkspaces`] holds
//! the per-chunk set so chunk kernels can run on different threads without
//! sharing mutable state. Merging chunk accumulators in chunk order is the
//! caller's job (see `ultra-embed`).

use crate::embedding::SparseSink;
use crate::linear::{Mlp, MlpGrad};
use crate::matrix::Matrix;

/// All scratch for one fused contrastive chunk: batched forward buffers
/// (one row per bag), per-row backward scratch, and the chunk's gradient
/// accumulators.
#[derive(Clone, Debug)]
pub struct TrainWorkspace {
    /// Encoded bags, one row per bag in example order (anchor, positive,
    /// negatives…). Input to the projection head's batched forward.
    pub h: Matrix,
    /// Hidden activations of the projection head, row-aligned with `h`.
    pub hidden: Matrix,
    /// Pre-normalization projection outputs, row-aligned with `h`.
    pub pre: Matrix,
    /// l2-normalized projections (`pre` copied then normalized per row).
    pub z: Matrix,
    /// Pre-normalization norms, one per row (for the normalize backward).
    pub norms: Vec<f32>,
    /// Loss gradients w.r.t. `z`, row-aligned with `h`.
    pub dz: Matrix,
    /// InfoNCE logit/probability scratch (`1 + max negatives` long).
    pub logits: Vec<f32>,
    /// Gradients w.r.t. `pre` (the normalize backward's output),
    /// row-aligned with `h` — input to the block backward.
    pub dpre: Matrix,
    /// Output-layer pre-activation gradients, row-aligned with `h`.
    pub dz_out: Matrix,
    /// Gradients w.r.t. the hidden activation, row-aligned with `h`.
    pub dh: Matrix,
    /// Hidden-layer pre-activation gradients, row-aligned with `h`.
    pub dz_hidden: Matrix,
    /// Gradients w.r.t. the encoded bags, row-aligned with `h`.
    pub dx: Matrix,
    /// Per-row scratch: gradient w.r.t. the mean-pooled embedding (input
    /// dim), after the encoder nonlinearity's backward.
    pub row_demb: Vec<f32>,
    /// Partial-sum lanes (4 + tail) for the sweep-form batched forward
    /// ([`crate::linear::Mlp::forward_batch_pret`]).
    pub lanes: Matrix,
    /// Chunk-level projection-head gradient accumulator.
    pub proj_grad: MlpGrad,
    /// Chunk-level sparse embedding gradient accumulator.
    pub sink: SparseSink,
}

impl Default for TrainWorkspace {
    fn default() -> Self {
        Self {
            h: Matrix::zeros(0, 0),
            hidden: Matrix::zeros(0, 0),
            pre: Matrix::zeros(0, 0),
            z: Matrix::zeros(0, 0),
            norms: Vec::new(),
            dz: Matrix::zeros(0, 0),
            logits: Vec::new(),
            dpre: Matrix::zeros(0, 0),
            dz_out: Matrix::zeros(0, 0),
            dh: Matrix::zeros(0, 0),
            dz_hidden: Matrix::zeros(0, 0),
            dx: Matrix::zeros(0, 0),
            row_demb: Vec::new(),
            lanes: Matrix::zeros(0, 0),
            proj_grad: MlpGrad::empty(),
            sink: SparseSink::new(),
        }
    }
}

/// Reshapes `m` to `(rows × cols)`, reusing the allocation when only the
/// row count changes. Exposed rows hold stale values — workspace buffers
/// are fully overwritten before being read.
fn ensure_mat(m: &mut Matrix, rows: usize, cols: usize) {
    if m.cols() != cols {
        *m = Matrix::zeros(rows, cols);
    } else {
        m.resize_rows(rows);
    }
}

impl TrainWorkspace {
    /// An unshaped workspace; [`ensure`](Self::ensure) shapes it on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shapes every buffer for a chunk of `rows` bags against projection
    /// head `proj` and a `vocab_size`-row embedding table, with at most
    /// `max_logits` InfoNCE logits per example. Allocates only when a
    /// dimension grows or changes; steady-state training reshapes for
    /// free.
    pub fn ensure(&mut self, proj: &Mlp, vocab_size: usize, rows: usize, max_logits: usize) {
        let in_dim = proj.hidden.in_dim();
        let hid_dim = proj.hidden.out_dim();
        let out_dim = proj.out.out_dim();
        ensure_mat(&mut self.h, rows, in_dim);
        ensure_mat(&mut self.hidden, rows, hid_dim);
        ensure_mat(&mut self.pre, rows, out_dim);
        ensure_mat(&mut self.z, rows, out_dim);
        ensure_mat(&mut self.dz, rows, out_dim);
        self.norms.resize(rows, 0.0);
        if self.logits.len() < max_logits {
            self.logits.resize(max_logits, 0.0);
        }
        ensure_mat(&mut self.dpre, rows, out_dim);
        ensure_mat(&mut self.dz_out, rows, out_dim);
        ensure_mat(&mut self.dh, rows, hid_dim);
        ensure_mat(&mut self.dz_hidden, rows, hid_dim);
        ensure_mat(&mut self.dx, rows, in_dim);
        self.row_demb.resize(in_dim, 0.0);
        ensure_mat(&mut self.lanes, 5, hid_dim.max(out_dim));
        self.proj_grad.ensure_like(proj);
        self.sink.ensure(vocab_size, in_dim);
    }

    /// Zeroes the gradient accumulators for a new chunk. Forward and
    /// per-row buffers are left as-is: the kernel overwrites every element
    /// it reads, which the stale-buffer proptest in
    /// `tests/par_determinism.rs` pins down.
    pub fn reset(&mut self) {
        self.proj_grad.reset();
        self.sink.clear();
    }
}

/// The per-chunk workspace set for one training loop: chunk `c` of every
/// batch uses `chunks[c]`, so concurrent chunk kernels never share mutable
/// buffers and reuse is deterministic.
#[derive(Clone, Debug, Default)]
pub struct TrainWorkspaces {
    /// One workspace per batch chunk.
    pub chunks: Vec<TrainWorkspace>,
}

impl TrainWorkspaces {
    /// `n` unshaped workspaces (one per chunk a batch can split into).
    pub fn new(n: usize) -> Self {
        Self {
            chunks: (0..n).map(|_| TrainWorkspace::new()).collect(),
        }
    }
}

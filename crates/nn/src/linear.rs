//! Linear layer and two-layer MLP with explicit backward passes.

use crate::matrix::Matrix;
use crate::optim::GradApply;
use ultra_core::rng::UltraRng;

/// Elementwise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Hyperbolic tangent (the encoder's nonlinearity).
    Tanh,
    /// Rectified linear unit (the projection head's nonlinearity).
    Relu,
}

impl Activation {
    #[inline]
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *output* `y = forward(x)`.
    #[inline]
    fn backward_from_output(self, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Fully-connected layer `y = act(W x + b)` with gradient accumulation.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    act: Activation,
    use_bias: bool,
}

impl Linear {
    /// Xavier-initialised layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        Self {
            w: Matrix::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            act,
            use_bias: true,
        }
    }

    /// Bias-free layer. Contrastive projection heads use this: under an
    /// l2-normalized similarity loss a trainable output bias is a flat
    /// direction — growing it raises *every* pairwise cosine equally, so
    /// the optimizer can drift into representation collapse without
    /// resistance from the loss.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        let mut l = Self::new(in_dim, out_dim, act, rng);
        l.use_bias = false;
        l
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        if self.use_bias {
            for (yi, bi) in y.iter_mut().zip(&self.b) {
                *yi = self.act.forward(*yi + bi);
            }
        } else {
            for yi in y.iter_mut() {
                *yi = self.act.forward(*yi);
            }
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// `x` is the input given to [`forward`](Self::forward), `y` its output,
    /// `dy` the loss gradient w.r.t. `y`.
    pub fn backward(&mut self, x: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        // Pre-activation gradient.
        let dz: Vec<f32> = dy
            .iter()
            .zip(y)
            .map(|(&d, &yv)| d * self.act.backward_from_output(yv))
            .collect();
        self.gw.add_outer(1.0, &dz, x);
        if self.use_bias {
            for (g, d) in self.gb.iter_mut().zip(&dz) {
                *g += d;
            }
        }
        self.w.matvec_t(&dz)
    }

    /// Direct read access to the weight matrix (used by read-out heads).
    #[inline]
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

impl GradApply for Linear {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        f(&mut self.b, &mut self.gb);
    }

    fn zero_grads(&mut self) {
        self.gw.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Two-layer MLP `Linear → act → Linear` (the paper's classification and
/// contrastive mapping heads are both "MLP"s).
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Hidden layer (with activation).
    pub hidden: Linear,
    /// Output layer (no activation; callers add softmax / l2-norm).
    pub out: Linear,
}

impl Mlp {
    /// Builds `in_dim → hidden_dim → out_dim` with the given hidden
    /// activation.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new(in_dim, hidden_dim, act, rng),
            out: Linear::new(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Projection-head variant: bias-free throughout (see
    /// [`Linear::new_no_bias`]) so the l2-normalized contrastive space has
    /// no loss-flat collapse direction.
    pub fn new_projection(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new_no_bias(in_dim, hidden_dim, act, rng),
            out: Linear::new_no_bias(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Forward pass returning `(hidden activation, output)`; the hidden
    /// activation must be fed back to [`backward`](Self::backward).
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let h = self.hidden.forward(x);
        let y = self.out.forward(&h);
        (h, y)
    }

    /// Backward pass; returns gradient w.r.t. the input.
    pub fn backward(&mut self, x: &[f32], h: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        let dh = self.out.backward(h, y, dy);
        self.hidden.backward(x, h, &dh)
    }
}

impl GradApply for Mlp {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.hidden.visit(f);
        self.out.visit(f);
    }

    fn zero_grads(&mut self) {
        self.hidden.zero_grads();
        self.out.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use ultra_core::derive_rng;

    /// Numerically checks dL/dx for L = sum(y) through a tanh linear layer.
    #[test]
    fn linear_backward_matches_finite_differences() {
        let mut rng = derive_rng(3, 0);
        let mut layer = Linear::new(3, 2, Activation::Tanh, &mut rng);
        let x = vec![0.3f32, -0.7, 0.2];
        let y = layer.forward(&x);
        let dy = vec![1.0f32; 2];
        let dx = layer.backward(&x, &y, &dy);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f32 = layer.forward(&xp).iter().sum();
            let fm: f32 = layer.forward(&xm).iter().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd {fd} vs {}", dx[i]);
        }
    }

    /// One SGD step on a tiny regression problem must reduce the loss.
    #[test]
    fn sgd_step_reduces_squared_error() {
        let mut rng = derive_rng(4, 0);
        let mut layer = Linear::new(2, 1, Activation::None, &mut rng);
        let x = vec![1.0f32, -1.0];
        let target = 0.75f32;
        let loss = |l: &Linear| {
            let y = l.forward(&x)[0];
            (y - target) * (y - target)
        };
        let before = loss(&layer);
        let y = layer.forward(&x);
        let dy = vec![2.0 * (y[0] - target)];
        layer.backward(&x, &y, &dy);
        Sgd::new(0.05).step(&mut layer);
        assert!(loss(&layer) < before);
    }

    #[test]
    fn mlp_shapes_compose() {
        let mut rng = derive_rng(5, 0);
        let mlp = Mlp::new(4, 8, 3, Activation::Relu, &mut rng);
        let (h, y) = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(h.len(), 8);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn relu_backward_gates_negative_outputs() {
        assert_eq!(Activation::Relu.backward_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.backward_from_output(1.5), 1.0);
    }
}

//! Linear layer and two-layer MLP with explicit backward passes.

use crate::matrix::Matrix;
use crate::optim::GradApply;
use ultra_core::rng::UltraRng;

/// Elementwise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Hyperbolic tangent (the encoder's nonlinearity).
    Tanh,
    /// Rectified linear unit (the projection head's nonlinearity).
    Relu,
}

impl Activation {
    #[inline]
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *output* `y = forward(x)`.
    #[inline]
    fn backward_from_output(self, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Fully-connected layer `y = act(W x + b)` with gradient accumulation.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    act: Activation,
    use_bias: bool,
}

impl Linear {
    /// Xavier-initialised layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        Self {
            w: Matrix::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            act,
            use_bias: true,
        }
    }

    /// Bias-free layer. Contrastive projection heads use this: under an
    /// l2-normalized similarity loss a trainable output bias is a flat
    /// direction — growing it raises *every* pairwise cosine equally, so
    /// the optimizer can drift into representation collapse without
    /// resistance from the loss.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        let mut l = Self::new(in_dim, out_dim, act, rng);
        l.use_bias = false;
        l
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        if self.use_bias {
            for (yi, bi) in y.iter_mut().zip(&self.b) {
                *yi = self.act.forward(*yi + bi);
            }
        } else {
            for yi in y.iter_mut() {
                *yi = self.act.forward(*yi);
            }
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// `x` is the input given to [`forward`](Self::forward), `y` its output,
    /// `dy` the loss gradient w.r.t. `y`.
    pub fn backward(&mut self, x: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        backward_core(
            &self.w,
            self.act,
            self.use_bias,
            x,
            y,
            dy,
            &mut self.gw,
            &mut self.gb,
        )
    }

    /// Non-mutating backward pass into an external gradient buffer.
    ///
    /// Identical math to [`backward`](Self::backward), but `self` stays
    /// frozen — this is what lets per-sample gradients be computed in
    /// parallel against one parameter snapshot and merged in a fixed order
    /// afterwards (see `ultra-par`).
    pub fn backward_into(&self, x: &[f32], y: &[f32], dy: &[f32], g: &mut LinearGrad) -> Vec<f32> {
        backward_core(
            &self.w,
            self.act,
            self.use_bias,
            x,
            y,
            dy,
            &mut g.gw,
            &mut g.gb,
        )
    }

    /// Adds an externally accumulated gradient buffer into the layer's
    /// internal one, readying an optimizer step.
    pub fn accumulate(&mut self, g: &LinearGrad) {
        self.gw.add_assign(&g.gw);
        for (a, &b) in self.gb.iter_mut().zip(&g.gb) {
            *a += b;
        }
    }

    /// Direct read access to the weight matrix (used by read-out heads).
    #[inline]
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

/// Shared backward math of [`Linear::backward`] and
/// [`Linear::backward_into`]: both must produce the same bits.
#[allow(clippy::too_many_arguments)]
fn backward_core(
    w: &Matrix,
    act: Activation,
    use_bias: bool,
    x: &[f32],
    y: &[f32],
    dy: &[f32],
    gw: &mut Matrix,
    gb: &mut [f32],
) -> Vec<f32> {
    // Pre-activation gradient.
    let dz: Vec<f32> = dy
        .iter()
        .zip(y)
        .map(|(&d, &yv)| d * act.backward_from_output(yv))
        .collect();
    gw.add_outer(1.0, &dz, x);
    if use_bias {
        for (g, d) in gb.iter_mut().zip(&dz) {
            *g += d;
        }
    }
    w.matvec_t(&dz)
}

/// Detached gradient buffer for a [`Linear`] layer.
#[derive(Clone, Debug)]
pub struct LinearGrad {
    gw: Matrix,
    gb: Vec<f32>,
}

impl LinearGrad {
    /// A zeroed buffer shaped like `layer`'s parameters.
    pub fn zeros_like(layer: &Linear) -> Self {
        Self {
            gw: Matrix::zeros(layer.out_dim(), layer.in_dim()),
            gb: vec![0.0; layer.out_dim()],
        }
    }

    /// Elementwise merge (`self += other`). Merge order is the caller's
    /// contract: deterministic pipelines merge per-sample buffers in sample
    /// order.
    pub fn add_assign(&mut self, other: &LinearGrad) {
        self.gw.add_assign(&other.gw);
        for (a, &b) in self.gb.iter_mut().zip(&other.gb) {
            *a += b;
        }
    }
}

impl GradApply for Linear {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        f(&mut self.b, &mut self.gb);
    }

    fn zero_grads(&mut self) {
        self.gw.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Two-layer MLP `Linear → act → Linear` (the paper's classification and
/// contrastive mapping heads are both "MLP"s).
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Hidden layer (with activation).
    pub hidden: Linear,
    /// Output layer (no activation; callers add softmax / l2-norm).
    pub out: Linear,
}

impl Mlp {
    /// Builds `in_dim → hidden_dim → out_dim` with the given hidden
    /// activation.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new(in_dim, hidden_dim, act, rng),
            out: Linear::new(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Projection-head variant: bias-free throughout (see
    /// [`Linear::new_no_bias`]) so the l2-normalized contrastive space has
    /// no loss-flat collapse direction.
    pub fn new_projection(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new_no_bias(in_dim, hidden_dim, act, rng),
            out: Linear::new_no_bias(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Forward pass returning `(hidden activation, output)`; the hidden
    /// activation must be fed back to [`backward`](Self::backward).
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let h = self.hidden.forward(x);
        let y = self.out.forward(&h);
        (h, y)
    }

    /// Backward pass; returns gradient w.r.t. the input.
    pub fn backward(&mut self, x: &[f32], h: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        let dh = self.out.backward(h, y, dy);
        self.hidden.backward(x, h, &dh)
    }

    /// Non-mutating backward pass into an external [`MlpGrad`]; same math
    /// (and bits) as [`backward`](Self::backward).
    pub fn backward_into(
        &self,
        x: &[f32],
        h: &[f32],
        y: &[f32],
        dy: &[f32],
        g: &mut MlpGrad,
    ) -> Vec<f32> {
        let dh = self.out.backward_into(h, y, dy, &mut g.out);
        self.hidden.backward_into(x, h, &dh, &mut g.hidden)
    }

    /// Adds an external gradient buffer into the internal one.
    pub fn accumulate(&mut self, g: &MlpGrad) {
        self.hidden.accumulate(&g.hidden);
        self.out.accumulate(&g.out);
    }
}

/// Detached gradient buffer for an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpGrad {
    hidden: LinearGrad,
    out: LinearGrad,
}

impl MlpGrad {
    /// A zeroed buffer shaped like `mlp`'s parameters.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            hidden: LinearGrad::zeros_like(&mlp.hidden),
            out: LinearGrad::zeros_like(&mlp.out),
        }
    }

    /// Elementwise merge (`self += other`), in the caller's order.
    pub fn add_assign(&mut self, other: &MlpGrad) {
        self.hidden.add_assign(&other.hidden);
        self.out.add_assign(&other.out);
    }
}

impl GradApply for Mlp {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.hidden.visit(f);
        self.out.visit(f);
    }

    fn zero_grads(&mut self) {
        self.hidden.zero_grads();
        self.out.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use ultra_core::derive_rng;

    /// Numerically checks dL/dx for L = sum(y) through a tanh linear layer.
    #[test]
    fn linear_backward_matches_finite_differences() {
        let mut rng = derive_rng(3, 0);
        let mut layer = Linear::new(3, 2, Activation::Tanh, &mut rng);
        let x = vec![0.3f32, -0.7, 0.2];
        let y = layer.forward(&x);
        let dy = vec![1.0f32; 2];
        let dx = layer.backward(&x, &y, &dy);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f32 = layer.forward(&xp).iter().sum();
            let fm: f32 = layer.forward(&xm).iter().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd {fd} vs {}", dx[i]);
        }
    }

    /// One SGD step on a tiny regression problem must reduce the loss.
    #[test]
    fn sgd_step_reduces_squared_error() {
        let mut rng = derive_rng(4, 0);
        let mut layer = Linear::new(2, 1, Activation::None, &mut rng);
        let x = vec![1.0f32, -1.0];
        let target = 0.75f32;
        let loss = |l: &Linear| {
            let y = l.forward(&x)[0];
            (y - target) * (y - target)
        };
        let before = loss(&layer);
        let y = layer.forward(&x);
        let dy = vec![2.0 * (y[0] - target)];
        layer.backward(&x, &y, &dy);
        Sgd::new(0.05).step(&mut layer);
        assert!(loss(&layer) < before);
    }

    #[test]
    fn mlp_shapes_compose() {
        let mut rng = derive_rng(5, 0);
        let mlp = Mlp::new(4, 8, 3, Activation::Relu, &mut rng);
        let (h, y) = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(h.len(), 8);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn backward_into_plus_accumulate_matches_backward_bitwise() {
        let mut rng = derive_rng(11, 0);
        let proto = Mlp::new_projection(3, 5, 4, Activation::Tanh, &mut rng);
        let x = vec![0.4f32, -0.9, 0.15];
        let dy = vec![0.7f32, -0.3, 0.2, 1.1];

        // Path A: in-place backward.
        let mut a = proto.clone();
        let (h, y) = a.forward(&x);
        let dxa = a.backward(&x, &h, &y, &dy);

        // Path B: detached buffer, then accumulate.
        let mut b = proto.clone();
        let mut g = MlpGrad::zeros_like(&b);
        let dxb = b.backward_into(&x, &h, &y, &dy, &mut g);
        b.accumulate(&g);

        assert_eq!(dxa, dxb);
        let collect = |m: &mut Mlp| {
            let mut out: Vec<u32> = Vec::new();
            m.visit(&mut |_, grads| out.extend(grads.iter().map(|g| g.to_bits())));
            out
        };
        assert_eq!(collect(&mut a), collect(&mut b));
    }

    #[test]
    fn grad_buffers_merge_in_caller_order() {
        let mut rng = derive_rng(12, 0);
        let layer = Linear::new(2, 2, Activation::None, &mut rng);
        let mut g1 = LinearGrad::zeros_like(&layer);
        let mut g2 = LinearGrad::zeros_like(&layer);
        let x = vec![1.0f32, -1.0];
        let y = layer.forward(&x);
        layer.backward_into(&x, &y, &[1.0, 0.0], &mut g1);
        layer.backward_into(&x, &y, &[0.0, 2.0], &mut g2);
        let mut merged = LinearGrad::zeros_like(&layer);
        merged.add_assign(&g1);
        merged.add_assign(&g2);
        let mut l = layer.clone();
        l.accumulate(&merged);
        // The merged buffer equals the sequential two-sample accumulation.
        let mut seq = layer.clone();
        seq.backward(&x, &y, &[1.0, 0.0]);
        seq.backward(&x, &y, &[0.0, 2.0]);
        let grads = |m: &mut Linear| {
            let mut out: Vec<u32> = Vec::new();
            m.visit(&mut |_, g| out.extend(g.iter().map(|v| v.to_bits())));
            out
        };
        assert_eq!(grads(&mut l), grads(&mut seq));
    }

    #[test]
    fn relu_backward_gates_negative_outputs() {
        assert_eq!(Activation::Relu.backward_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.backward_from_output(1.5), 1.0);
    }
}

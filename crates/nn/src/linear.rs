//! Linear layer and two-layer MLP with explicit backward passes.

use crate::matrix::Matrix;
use crate::optim::GradApply;
use ultra_core::rng::UltraRng;

/// Elementwise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Hyperbolic tangent (the encoder's nonlinearity).
    Tanh,
    /// Rectified linear unit (the projection head's nonlinearity).
    Relu,
}

impl Activation {
    #[inline]
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *output* `y = forward(x)`.
    #[inline]
    fn backward_from_output(self, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Fully-connected layer `y = act(W x + b)` with gradient accumulation.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    act: Activation,
    use_bias: bool,
}

impl Linear {
    /// Xavier-initialised layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        Self {
            w: Matrix::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            act,
            use_bias: true,
        }
    }

    /// Bias-free layer. Contrastive projection heads use this: under an
    /// l2-normalized similarity loss a trainable output bias is a flat
    /// direction — growing it raises *every* pairwise cosine equally, so
    /// the optimizer can drift into representation collapse without
    /// resistance from the loss.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, act: Activation, rng: &mut UltraRng) -> Self {
        let mut l = Self::new(in_dim, out_dim, act, rng);
        l.use_bias = false;
        l
    }

    /// Input dimensionality.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.matvec(x);
        if self.use_bias {
            for (yi, bi) in y.iter_mut().zip(&self.b) {
                *yi = self.act.forward(*yi + bi);
            }
        } else {
            for yi in y.iter_mut() {
                *yi = self.act.forward(*yi);
            }
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// `x` is the input given to [`forward`](Self::forward), `y` its output,
    /// `dy` the loss gradient w.r.t. `y`.
    pub fn backward(&mut self, x: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        backward_core(
            &self.w,
            self.act,
            self.use_bias,
            x,
            y,
            dy,
            &mut self.gw,
            &mut self.gb,
        )
    }

    /// Non-mutating backward pass into an external gradient buffer.
    ///
    /// Identical math to [`backward`](Self::backward), but `self` stays
    /// frozen — this is what lets per-sample gradients be computed in
    /// parallel against one parameter snapshot and merged in a fixed order
    /// afterwards (see `ultra-par`).
    pub fn backward_into(&self, x: &[f32], y: &[f32], dy: &[f32], g: &mut LinearGrad) -> Vec<f32> {
        backward_core(
            &self.w,
            self.act,
            self.use_bias,
            x,
            y,
            dy,
            &mut g.gw,
            &mut g.gb,
        )
    }

    /// Batched forward pass: row `r` of `y` becomes `forward(x.row(r))`.
    /// One blocked GEMM ([`Matrix::matmat_nt_into`]) replaces `B`
    /// independent `matvec`s; because both paths compute every output
    /// element with the same `dot_unrolled` kernel, the batch is
    /// bit-identical to the per-row loop. `y` must be pre-shaped
    /// `(x.rows × out_dim)`.
    pub fn forward_batch(&self, x: &Matrix, y: &mut Matrix) {
        x.matmat_nt_into(&self.w, y);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            if self.use_bias {
                for (yi, bi) in row.iter_mut().zip(&self.b) {
                    *yi = self.act.forward(*yi + bi);
                }
            } else {
                for yi in row.iter_mut() {
                    *yi = self.act.forward(*yi);
                }
            }
        }
    }

    /// [`forward_batch`](Self::forward_batch) against a pre-transposed
    /// weight matrix (`wt = wᵀ`, kept fresh by the caller): the GEMM runs
    /// in throughput-bound sweep form ([`Matrix::matmat_nt_pret_into`])
    /// instead of dot form, with `lanes` as the sweep's partial-sum
    /// scratch. Bit-identical to `forward_batch` — the sweep reproduces
    /// `dot_unrolled`'s exact summand grouping — and the bias/activation
    /// epilogue is the same loop.
    // ultra-lint: hot
    pub fn forward_batch_pret(&self, x: &Matrix, wt: &Matrix, y: &mut Matrix, lanes: &mut Matrix) {
        debug_assert_eq!(wt.rows(), self.w.cols(), "forward_batch_pret: stale wt");
        debug_assert_eq!(wt.cols(), self.w.rows(), "forward_batch_pret: stale wt");
        x.matmat_nt_pret_into(wt, y, lanes);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            if self.use_bias {
                for (yi, bi) in row.iter_mut().zip(&self.b) {
                    *yi = self.act.forward(*yi + bi);
                }
            } else {
                for yi in row.iter_mut() {
                    *yi = self.act.forward(*yi);
                }
            }
        }
    }

    /// [`backward_into`](Self::backward_into) against caller-owned scratch:
    /// the pre-activation gradient lands in `dz` (`len == out_dim`) and the
    /// input gradient in `dx` (`len == in_dim`) instead of fresh `Vec`s.
    /// Same math, same bits, zero allocations — the training-workspace
    /// form.
    // ultra-lint: hot
    pub fn backward_into_buf(
        &self,
        x: &[f32],
        y: &[f32],
        dy: &[f32],
        g: &mut LinearGrad,
        dz: &mut [f32],
        dx: &mut [f32],
    ) {
        for ((dzi, &d), &yv) in dz.iter_mut().zip(dy).zip(y) {
            *dzi = d * self.act.backward_from_output(yv);
        }
        g.gw.add_outer(1.0, dz, x);
        if self.use_bias {
            for (gb, &d) in g.gb.iter_mut().zip(dz.iter()) {
                *gb += d;
            }
        }
        self.w.matvec_t_into(dz, dx);
    }

    /// Backward over a block of rows `r0..r1` of batched forward buffers
    /// (`x` inputs, `y` outputs, `dy` output gradients, all row-aligned):
    /// per row exactly the [`backward_into_buf`](Self::backward_into_buf)
    /// math, but with each weight/gradient matrix streamed once per
    /// *block* instead of once per row. The per-row backward is
    /// bandwidth-bound — `gw` and `w` together far exceed L1 — so a
    /// four-row block cuts that traffic ~4×.
    ///
    /// Bit-compatibility is structural, not approximate: every
    /// `gw[i][j]` (and `gb[i]`) receives exactly the summands of the
    /// per-row kernel in ascending-`r` order, every `dx[r][j]` its
    /// summands in ascending-`i` order, and the zero-skips mirror
    /// [`Matrix::add_outer`] / [`Matrix::matvec_t_into`] — so a block is
    /// bit-identical to `r1 - r0` sequential `backward_into_buf` calls.
    // ultra-lint: hot
    #[allow(clippy::too_many_arguments)]
    pub fn backward_rows_into_buf(
        &self,
        x: &Matrix,
        y: &Matrix,
        dy: &Matrix,
        r0: usize,
        r1: usize,
        g: &mut LinearGrad,
        dz: &mut Matrix,
        dx: &mut Matrix,
    ) {
        // Pre-activation gradients, elementwise per row.
        for r in r0..r1 {
            for ((dzi, &d), &yv) in dz.row_mut(r).iter_mut().zip(dy.row(r)).zip(y.row(r)) {
                *dzi = d * self.act.backward_from_output(yv);
            }
        }
        // `gw += dzᵀ·x` / `gb += Σ dz`: stream each `gw` row once for the
        // whole block; per element the `r` fold order matches `add_outer`
        // called row by row.
        for i in 0..self.w.rows() {
            let gwrow = g.gw.row_mut(i);
            for r in r0..r1 {
                let c = dz.row(r)[i];
                if self.use_bias {
                    g.gb[i] += c;
                }
                if c == 0.0 {
                    continue; // the `add_outer` zero-skip
                }
                for (w, &xv) in gwrow.iter_mut().zip(x.row(r)) {
                    *w += c * xv;
                }
            }
        }
        // `dx[r] = wᵀ·dz[r]`: stream each weight row once for the block;
        // per element the `i` fold order matches `matvec_t_into`.
        for r in r0..r1 {
            dx.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
        }
        for i in 0..self.w.rows() {
            let wrow = self.w.row(i);
            for r in r0..r1 {
                let c = dz.row(r)[i];
                if c == 0.0 {
                    continue; // the `matvec_t_into` zero-skip
                }
                for (v, &wv) in dx.row_mut(r).iter_mut().zip(wrow) {
                    *v += c * wv;
                }
            }
        }
    }

    /// Adds an externally accumulated gradient buffer into the layer's
    /// internal one, readying an optimizer step.
    pub fn accumulate(&mut self, g: &LinearGrad) {
        self.gw.add_assign(&g.gw);
        for (a, &b) in self.gb.iter_mut().zip(&g.gb) {
            *a += b;
        }
    }

    /// Direct read access to the weight matrix (used by read-out heads).
    #[inline]
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

/// Shared backward math of [`Linear::backward`] and
/// [`Linear::backward_into`]: both must produce the same bits.
#[allow(clippy::too_many_arguments)]
fn backward_core(
    w: &Matrix,
    act: Activation,
    use_bias: bool,
    x: &[f32],
    y: &[f32],
    dy: &[f32],
    gw: &mut Matrix,
    gb: &mut [f32],
) -> Vec<f32> {
    // Pre-activation gradient.
    let dz: Vec<f32> = dy
        .iter()
        .zip(y)
        .map(|(&d, &yv)| d * act.backward_from_output(yv))
        .collect();
    gw.add_outer(1.0, &dz, x);
    if use_bias {
        for (g, d) in gb.iter_mut().zip(&dz) {
            *g += d;
        }
    }
    w.matvec_t(&dz)
}

/// Detached gradient buffer for a [`Linear`] layer.
#[derive(Clone, Debug)]
pub struct LinearGrad {
    gw: Matrix,
    gb: Vec<f32>,
}

impl LinearGrad {
    /// A zeroed buffer shaped like `layer`'s parameters.
    pub fn zeros_like(layer: &Linear) -> Self {
        Self {
            gw: Matrix::zeros(layer.out_dim(), layer.in_dim()),
            gb: vec![0.0; layer.out_dim()],
        }
    }

    /// A zero-capacity buffer to be shaped later by
    /// [`ensure_like`](Self::ensure_like) — lets workspaces be `Default`
    /// without knowing layer shapes up front.
    pub fn empty() -> Self {
        Self {
            gw: Matrix::zeros(0, 0),
            gb: Vec::new(),
        }
    }

    /// Reshapes to match `layer` if needed (reallocating only on a shape
    /// change); contents are unspecified afterwards — call
    /// [`reset`](Self::reset) before accumulating.
    pub fn ensure_like(&mut self, layer: &Linear) {
        if self.gw.rows() != layer.out_dim() || self.gw.cols() != layer.in_dim() {
            self.gw = Matrix::zeros(layer.out_dim(), layer.in_dim());
            self.gb = vec![0.0; layer.out_dim()];
        }
    }

    /// Zeroes the buffer in place for reuse across steps.
    pub fn reset(&mut self) {
        self.gw.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Elementwise merge (`self += other`). Merge order is the caller's
    /// contract: deterministic pipelines merge per-sample buffers in sample
    /// order.
    pub fn add_assign(&mut self, other: &LinearGrad) {
        self.gw.add_assign(&other.gw);
        for (a, &b) in self.gb.iter_mut().zip(&other.gb) {
            *a += b;
        }
    }
}

impl GradApply for Linear {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.as_mut_slice(), self.gw.as_mut_slice());
        f(&mut self.b, &mut self.gb);
    }

    fn zero_grads(&mut self) {
        self.gw.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Two-layer MLP `Linear → act → Linear` (the paper's classification and
/// contrastive mapping heads are both "MLP"s).
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Hidden layer (with activation).
    pub hidden: Linear,
    /// Output layer (no activation; callers add softmax / l2-norm).
    pub out: Linear,
}

impl Mlp {
    /// Builds `in_dim → hidden_dim → out_dim` with the given hidden
    /// activation.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new(in_dim, hidden_dim, act, rng),
            out: Linear::new(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Projection-head variant: bias-free throughout (see
    /// [`Linear::new_no_bias`]) so the l2-normalized contrastive space has
    /// no loss-flat collapse direction.
    pub fn new_projection(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut UltraRng,
    ) -> Self {
        Self {
            hidden: Linear::new_no_bias(in_dim, hidden_dim, act, rng),
            out: Linear::new_no_bias(hidden_dim, out_dim, Activation::None, rng),
        }
    }

    /// Forward pass returning `(hidden activation, output)`; the hidden
    /// activation must be fed back to [`backward`](Self::backward).
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let h = self.hidden.forward(x);
        let y = self.out.forward(&h);
        (h, y)
    }

    /// Backward pass; returns gradient w.r.t. the input.
    pub fn backward(&mut self, x: &[f32], h: &[f32], y: &[f32], dy: &[f32]) -> Vec<f32> {
        let dh = self.out.backward(h, y, dy);
        self.hidden.backward(x, h, &dh)
    }

    /// Batched forward pass over a row matrix of examples: two blocked
    /// GEMMs instead of `2B` matvecs. `h` must be pre-shaped
    /// `(x.rows × hidden_dim)` and `y` `(x.rows × out_dim)`; row `r` of
    /// `(h, y)` is bit-identical to `forward(x.row(r))`.
    pub fn forward_batch(&self, x: &Matrix, h: &mut Matrix, y: &mut Matrix) {
        self.hidden.forward_batch(x, h);
        self.out.forward_batch(h, y);
    }

    /// [`forward_batch`](Self::forward_batch) through a transposed weight
    /// snapshot (see [`MlpT`]): both GEMMs run in sweep form. Bit-identical
    /// to `forward_batch` as long as `t` is fresh — refresh the snapshot
    /// after every parameter update.
    // ultra-lint: hot
    pub fn forward_batch_pret(
        &self,
        t: &MlpT,
        x: &Matrix,
        h: &mut Matrix,
        y: &mut Matrix,
        lanes: &mut Matrix,
    ) {
        self.hidden.forward_batch_pret(x, &t.hidden_t, h, lanes);
        self.out.forward_batch_pret(h, &t.out_t, y, lanes);
    }

    /// [`backward_into`](Self::backward_into) against caller-owned scratch
    /// (`dz_out`/`dh` sized like the output layer's `out`/`in`,
    /// `dz_hidden`/`dx` like the hidden layer's): same math and bits, zero
    /// allocations.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_into_buf(
        &self,
        x: &[f32],
        h: &[f32],
        y: &[f32],
        dy: &[f32],
        g: &mut MlpGrad,
        dz_out: &mut [f32],
        dh: &mut [f32],
        dz_hidden: &mut [f32],
        dx: &mut [f32],
    ) {
        self.out.backward_into_buf(h, y, dy, &mut g.out, dz_out, dh);
        self.hidden
            .backward_into_buf(x, h, dh, &mut g.hidden, dz_hidden, dx);
    }

    /// Block-of-rows variant of [`backward_into_buf`](Self::backward_into_buf)
    /// over batched forward buffers (`x` inputs, `h` hidden activations,
    /// `y` outputs, `dy` output gradients, all row-aligned): both layers
    /// run their [`Linear::backward_rows_into_buf`] sweep over rows
    /// `r0..r1`, so weight and gradient matrices stream once per block.
    /// Bit-identical to per-row calls — see the layer kernel's contract.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_rows_into_buf(
        &self,
        x: &Matrix,
        h: &Matrix,
        y: &Matrix,
        dy: &Matrix,
        r0: usize,
        r1: usize,
        g: &mut MlpGrad,
        dz_out: &mut Matrix,
        dh: &mut Matrix,
        dz_hidden: &mut Matrix,
        dx: &mut Matrix,
    ) {
        self.out
            .backward_rows_into_buf(h, y, dy, r0, r1, &mut g.out, dz_out, dh);
        self.hidden
            .backward_rows_into_buf(x, h, dh, r0, r1, &mut g.hidden, dz_hidden, dx);
    }

    /// Non-mutating backward pass into an external [`MlpGrad`]; same math
    /// (and bits) as [`backward`](Self::backward).
    pub fn backward_into(
        &self,
        x: &[f32],
        h: &[f32],
        y: &[f32],
        dy: &[f32],
        g: &mut MlpGrad,
    ) -> Vec<f32> {
        let dh = self.out.backward_into(h, y, dy, &mut g.out);
        self.hidden.backward_into(x, h, &dh, &mut g.hidden)
    }

    /// Adds an external gradient buffer into the internal one.
    pub fn accumulate(&mut self, g: &MlpGrad) {
        self.hidden.accumulate(&g.hidden);
        self.out.accumulate(&g.out);
    }
}

/// Transposed snapshot of an [`Mlp`]'s weight matrices, the right-hand
/// operands of the sweep-form batched forward
/// ([`Mlp::forward_batch_pret`]). The snapshot is a pure function of the
/// parameters and must be [`refresh`](Self::refresh)ed after every
/// optimizer step; transposing twice per step (~`2·d²` copies) is noise
/// next to the GEMM work it unlocks.
#[derive(Clone, Debug)]
pub struct MlpT {
    /// `hidden.wᵀ` (`in_dim × hidden_dim`).
    pub hidden_t: Matrix,
    /// `out.wᵀ` (`hidden_dim × out_dim`).
    pub out_t: Matrix,
}

impl Default for MlpT {
    fn default() -> Self {
        Self {
            hidden_t: Matrix::zeros(0, 0),
            out_t: Matrix::zeros(0, 0),
        }
    }
}

impl MlpT {
    /// An empty snapshot; [`refresh`](Self::refresh) shapes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-transposes both weight matrices from `mlp` (allocating only on
    /// first use or shape change).
    pub fn refresh(&mut self, mlp: &Mlp) {
        mlp.hidden.w.transpose_into(&mut self.hidden_t);
        mlp.out.w.transpose_into(&mut self.out_t);
    }
}

/// Detached gradient buffer for an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpGrad {
    hidden: LinearGrad,
    out: LinearGrad,
}

impl MlpGrad {
    /// A zeroed buffer shaped like `mlp`'s parameters.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            hidden: LinearGrad::zeros_like(&mlp.hidden),
            out: LinearGrad::zeros_like(&mlp.out),
        }
    }

    /// A zero-capacity buffer to be shaped later by
    /// [`ensure_like`](Self::ensure_like).
    pub fn empty() -> Self {
        Self {
            hidden: LinearGrad::empty(),
            out: LinearGrad::empty(),
        }
    }

    /// Reshapes to match `mlp` if needed; contents are unspecified — call
    /// [`reset`](Self::reset) before accumulating.
    pub fn ensure_like(&mut self, mlp: &Mlp) {
        self.hidden.ensure_like(&mlp.hidden);
        self.out.ensure_like(&mlp.out);
    }

    /// Zeroes the buffer in place for reuse across steps.
    pub fn reset(&mut self) {
        self.hidden.reset();
        self.out.reset();
    }

    /// Elementwise merge (`self += other`), in the caller's order.
    pub fn add_assign(&mut self, other: &MlpGrad) {
        self.hidden.add_assign(&other.hidden);
        self.out.add_assign(&other.out);
    }
}

impl Default for MlpGrad {
    fn default() -> Self {
        Self::empty()
    }
}

impl GradApply for Mlp {
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.hidden.visit(f);
        self.out.visit(f);
    }

    fn zero_grads(&mut self) {
        self.hidden.zero_grads();
        self.out.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use ultra_core::derive_rng;

    /// Numerically checks dL/dx for L = sum(y) through a tanh linear layer.
    #[test]
    fn linear_backward_matches_finite_differences() {
        let mut rng = derive_rng(3, 0);
        let mut layer = Linear::new(3, 2, Activation::Tanh, &mut rng);
        let x = vec![0.3f32, -0.7, 0.2];
        let y = layer.forward(&x);
        let dy = vec![1.0f32; 2];
        let dx = layer.backward(&x, &y, &dy);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f32 = layer.forward(&xp).iter().sum();
            let fm: f32 = layer.forward(&xm).iter().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - dx[i]).abs() < 1e-2, "dx[{i}]: fd {fd} vs {}", dx[i]);
        }
    }

    /// The block-of-rows backward must be bit-identical to per-row
    /// `backward_into_buf` calls — for every block size, for a biased
    /// tanh layer and a bias-free identity layer, across `gw`, `gb`,
    /// `dz`, and `dx`.
    #[test]
    fn backward_rows_into_buf_is_bit_identical_to_per_row_calls() {
        let mut rng = derive_rng(11, 0);
        for (use_bias, act) in [(true, Activation::Tanh), (false, Activation::None)] {
            let layer = if use_bias {
                Linear::new(5, 4, act, &mut rng)
            } else {
                Linear::new_no_bias(5, 4, act, &mut rng)
            };
            let rows = 7usize;
            let mut x = Matrix::zeros(rows, 5);
            for r in 0..rows {
                for c in 0..5 {
                    x.row_mut(r)[c] = ((r * 5 + c) as f32 * 0.37).sin();
                }
            }
            let mut y = Matrix::zeros(rows, 4);
            let mut dy = Matrix::zeros(rows, 4);
            for r in 0..rows {
                let out = layer.forward(x.row(r));
                y.row_mut(r).copy_from_slice(&out);
                for c in 0..4 {
                    // Include an exact zero to exercise the zero-skips.
                    dy.row_mut(r)[c] = if (r + c) % 5 == 0 {
                        0.0
                    } else {
                        ((r * 4 + c) as f32 * 0.71).cos()
                    };
                }
            }

            // Reference: per-row kernel, rows in ascending order.
            let mut g_ref = LinearGrad::zeros_like(&layer);
            let mut dz_ref = Matrix::zeros(rows, 4);
            let mut dx_ref = Matrix::zeros(rows, 5);
            for r in 0..rows {
                let mut dz = vec![0.0f32; 4];
                let mut dx = vec![0.0f32; 5];
                layer.backward_into_buf(
                    x.row(r),
                    y.row(r),
                    dy.row(r),
                    &mut g_ref,
                    &mut dz,
                    &mut dx,
                );
                dz_ref.row_mut(r).copy_from_slice(&dz);
                dx_ref.row_mut(r).copy_from_slice(&dx);
            }

            for block in 1..=rows {
                let mut g = LinearGrad::zeros_like(&layer);
                let mut dz = Matrix::zeros(rows, 4);
                let mut dx = Matrix::zeros(rows, 5);
                let mut r0 = 0;
                while r0 < rows {
                    let r1 = (r0 + block).min(rows);
                    layer.backward_rows_into_buf(&x, &y, &dy, r0, r1, &mut g, &mut dz, &mut dx);
                    r0 = r1;
                }
                let bits =
                    |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&g.gw), bits(&g_ref.gw), "gw, block={block}");
                assert_eq!(
                    g.gb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    g_ref.gb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "gb, block={block}"
                );
                assert_eq!(bits(&dz), bits(&dz_ref), "dz, block={block}");
                assert_eq!(bits(&dx), bits(&dx_ref), "dx, block={block}");
            }
        }
    }

    /// The sweep-form batched forward through a transposed snapshot must
    /// be bit-identical to the dot-form `forward_batch` — biased tanh
    /// layers included (the projection head is bias-free, so only this
    /// test exercises the bias epilogue of the pret path).
    #[test]
    fn forward_batch_pret_is_bit_identical_to_forward_batch() {
        let mut rng = derive_rng(13, 0);
        let mlp = Mlp::new(5, 6, 4, Activation::Tanh, &mut rng);
        let mut t = MlpT::new();
        t.refresh(&mlp);
        let rows = 7usize;
        let mut x = Matrix::zeros(rows, 5);
        for r in 0..rows {
            for c in 0..5 {
                x.row_mut(r)[c] = ((r * 5 + c) as f32 * 0.61).cos();
            }
        }
        let (mut h1, mut y1) = (Matrix::zeros(rows, 6), Matrix::zeros(rows, 4));
        mlp.forward_batch(&x, &mut h1, &mut y1);
        let (mut h2, mut y2) = (Matrix::zeros(rows, 6), Matrix::zeros(rows, 4));
        let mut lanes = Matrix::zeros(5, 6);
        mlp.forward_batch_pret(&t, &x, &mut h2, &mut y2, &mut lanes);
        for (a, b) in h1.as_slice().iter().zip(h2.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// One SGD step on a tiny regression problem must reduce the loss.
    #[test]
    fn sgd_step_reduces_squared_error() {
        let mut rng = derive_rng(4, 0);
        let mut layer = Linear::new(2, 1, Activation::None, &mut rng);
        let x = vec![1.0f32, -1.0];
        let target = 0.75f32;
        let loss = |l: &Linear| {
            let y = l.forward(&x)[0];
            (y - target) * (y - target)
        };
        let before = loss(&layer);
        let y = layer.forward(&x);
        let dy = vec![2.0 * (y[0] - target)];
        layer.backward(&x, &y, &dy);
        Sgd::new(0.05).step(&mut layer);
        assert!(loss(&layer) < before);
    }

    #[test]
    fn mlp_shapes_compose() {
        let mut rng = derive_rng(5, 0);
        let mlp = Mlp::new(4, 8, 3, Activation::Relu, &mut rng);
        let (h, y) = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(h.len(), 8);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn backward_into_plus_accumulate_matches_backward_bitwise() {
        let mut rng = derive_rng(11, 0);
        let proto = Mlp::new_projection(3, 5, 4, Activation::Tanh, &mut rng);
        let x = vec![0.4f32, -0.9, 0.15];
        let dy = vec![0.7f32, -0.3, 0.2, 1.1];

        // Path A: in-place backward.
        let mut a = proto.clone();
        let (h, y) = a.forward(&x);
        let dxa = a.backward(&x, &h, &y, &dy);

        // Path B: detached buffer, then accumulate.
        let mut b = proto.clone();
        let mut g = MlpGrad::zeros_like(&b);
        let dxb = b.backward_into(&x, &h, &y, &dy, &mut g);
        b.accumulate(&g);

        assert_eq!(dxa, dxb);
        let collect = |m: &mut Mlp| {
            let mut out: Vec<u32> = Vec::new();
            m.visit(&mut |_, grads| out.extend(grads.iter().map(|g| g.to_bits())));
            out
        };
        assert_eq!(collect(&mut a), collect(&mut b));
    }

    #[test]
    fn batched_forward_matches_per_row_forward_bitwise() {
        let mut rng = derive_rng(21, 0);
        // Both variants: with bias+tanh and the bias-free projection.
        for mlp in [
            Mlp::new(6, 9, 5, Activation::Tanh, &mut rng),
            Mlp::new_projection(6, 9, 5, Activation::Relu, &mut rng),
        ] {
            let mut x = Matrix::zeros(23, 6);
            for r in 0..23 {
                for c in 0..6 {
                    x.row_mut(r)[c] = ((r * 7 + c) as f32 * 0.31).sin();
                }
            }
            let mut h = Matrix::zeros(23, 9);
            let mut y = Matrix::zeros(23, 5);
            mlp.forward_batch(&x, &mut h, &mut y);
            for r in 0..23 {
                let (hr, yr) = mlp.forward(x.row(r));
                let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(h.row(r)), bits(&hr), "hidden row {r}");
                assert_eq!(bits(y.row(r)), bits(&yr), "output row {r}");
            }
        }
    }

    #[test]
    fn buffered_backward_matches_backward_into_bitwise() {
        let mut rng = derive_rng(22, 0);
        let mlp = Mlp::new_projection(4, 6, 3, Activation::Tanh, &mut rng);
        let x = vec![0.4f32, -0.9, 0.15, 0.7];
        let (h, y) = mlp.forward(&x);
        let dy = vec![0.7f32, -0.3, 0.2];
        let mut ga = MlpGrad::zeros_like(&mlp);
        let dxa = mlp.backward_into(&x, &h, &y, &dy, &mut ga);
        let mut gb = MlpGrad::zeros_like(&mlp);
        // Scratch deliberately starts dirty: every element must be
        // overwritten, not accumulated into.
        let mut dz_out = vec![9.0f32; 3];
        let mut dh = vec![9.0f32; 6];
        let mut dz_hidden = vec![9.0f32; 6];
        let mut dxb = vec![9.0f32; 4];
        mlp.backward_into_buf(
            &x,
            &h,
            &y,
            &dy,
            &mut gb,
            &mut dz_out,
            &mut dh,
            &mut dz_hidden,
            &mut dxb,
        );
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&dxa), bits(&dxb));
        let mut a = mlp.clone();
        let mut b = mlp.clone();
        a.accumulate(&ga);
        b.accumulate(&gb);
        let collect = |m: &mut Mlp| {
            let mut out: Vec<u32> = Vec::new();
            m.visit(&mut |_, grads| out.extend(grads.iter().map(|g| g.to_bits())));
            out
        };
        assert_eq!(collect(&mut a), collect(&mut b));
    }

    #[test]
    fn grad_buffers_merge_in_caller_order() {
        let mut rng = derive_rng(12, 0);
        let layer = Linear::new(2, 2, Activation::None, &mut rng);
        let mut g1 = LinearGrad::zeros_like(&layer);
        let mut g2 = LinearGrad::zeros_like(&layer);
        let x = vec![1.0f32, -1.0];
        let y = layer.forward(&x);
        layer.backward_into(&x, &y, &[1.0, 0.0], &mut g1);
        layer.backward_into(&x, &y, &[0.0, 2.0], &mut g2);
        let mut merged = LinearGrad::zeros_like(&layer);
        merged.add_assign(&g1);
        merged.add_assign(&g2);
        let mut l = layer.clone();
        l.accumulate(&merged);
        // The merged buffer equals the sequential two-sample accumulation.
        let mut seq = layer.clone();
        seq.backward(&x, &y, &[1.0, 0.0]);
        seq.backward(&x, &y, &[0.0, 2.0]);
        let grads = |m: &mut Linear| {
            let mut out: Vec<u32> = Vec::new();
            m.visit(&mut |_, g| out.extend(g.iter().map(|v| v.to_bits())));
            out
        };
        assert_eq!(grads(&mut l), grads(&mut seq));
    }

    #[test]
    fn relu_backward_gates_negative_outputs() {
        assert_eq!(Activation::Relu.backward_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.backward_from_output(1.5), 1.0);
    }
}

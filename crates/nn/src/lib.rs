//! `ultra-nn` — minimal neural-network substrate for the UltraWiki
//! reproduction.
//!
//! The paper trains a BERT-base encoder (entity prediction + contrastive
//! heads) on 8×RTX 3090. This crate provides the exact training machinery
//! those heads need — dense matrices, linear / embedding-bag layers with
//! explicit backward passes, label-smoothed softmax cross-entropy (Eq. 3),
//! InfoNCE (Section 5.1.2), SGD with weight decay and gradient clipping, and
//! Adam — as deterministic, dependency-free CPU code. Models here are
//! shallow by design (see DESIGN.md §1: the substitution preserves the
//! training dynamics the paper's analysis depends on, not transformer
//! capacity).
//!
//! Layout convention: vectors are `Vec<f32>`, matrices are row-major
//! [`Matrix`] with shape `(rows, cols)`; a layer maps `in_dim → out_dim`
//! with weight shape `(out_dim, in_dim)`.

pub mod embedding;
pub mod linear;
pub mod loss;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod workspace;

pub use embedding::{EmbeddingBag, SparseGrad, SparseSink};
pub use linear::{Activation, Linear, LinearGrad, Mlp, MlpGrad, MlpT};
pub use loss::{infonce, infonce_weighted, infonce_weighted_into, label_smoothed_ce, InfoNceGrads};
pub use matrix::Matrix;
pub use ops::{
    cosine, dot, dot_unrolled, l2_normalize, l2_normalize_backward, l2_normalize_backward_into,
    mean_pool,
};
pub use optim::{Adam, GradApply, Sgd};
pub use workspace::{TrainWorkspace, TrainWorkspaces};

//! Vector kernels shared by the encoder and both frameworks.

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product unrolled into four independent accumulators, combined in
/// the fixed order `((s0+s1) + (s2+s3)) + tail`.
///
/// On the scoring hot path this breaks the serial dependency chain of the
/// naive fold (≈4× more instruction-level parallelism); the combine order
/// is part of the function's contract — every call site gets the same bits
/// for the same inputs, which the deterministic batch-scoring layer relies
/// on. Note the result intentionally differs in low-order bits from
/// [`dot`]: the two kernels are separate summation orders, not
/// interchangeable implementations.
// ultra-lint: hot
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Cosine similarity; returns 0 for zero vectors instead of NaN so that
/// never-mentioned entities rank last rather than poisoning sorts.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// In-place l2 normalization; zero vectors are left untouched.
/// Returns the original norm.
pub fn l2_normalize(v: &mut [f32]) -> f32 {
    let n = dot(v, v).sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// Backward pass of l2 normalization.
///
/// Given the *normalized* output `y`, the pre-normalization norm `n`, and
/// the loss gradient w.r.t. `y`, returns the gradient w.r.t. the
/// unnormalized input: `(dy - y·(y·dy)) / n`.
pub fn l2_normalize_backward(y: &[f32], norm: f32, dy: &[f32]) -> Vec<f32> {
    if norm == 0.0 {
        return dy.to_vec();
    }
    let proj = dot(y, dy);
    y.iter()
        .zip(dy)
        .map(|(&yi, &di)| (di - yi * proj) / norm)
        .collect()
}

/// [`l2_normalize_backward`] into a caller-owned buffer — same math and
/// bits, no allocation. `dx.len()` must equal `y.len()`.
// ultra-lint: hot
pub fn l2_normalize_backward_into(y: &[f32], norm: f32, dy: &[f32], dx: &mut [f32]) {
    debug_assert_eq!(dx.len(), y.len());
    if norm == 0.0 {
        dx.copy_from_slice(dy);
        return;
    }
    let proj = dot(y, dy);
    for ((o, &yi), &di) in dx.iter_mut().zip(y).zip(dy) {
        *o = (di - yi * proj) / norm;
    }
}

/// Mean of a set of equal-length vectors; `None` if the set is empty.
pub fn mean_pool<'a, I>(vectors: I, dim: usize) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for v in vectors {
        debug_assert_eq!(v.len(), dim);
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += x;
        }
        count += 1;
    }
    if count == 0 {
        return None;
    }
    let inv = 1.0 / count as f32;
    acc.iter_mut().for_each(|a| *a *= inv);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_and_orthogonal_vectors() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 3.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_unrolled_matches_dot_closely_and_handles_tails() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 96, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.71).cos()).collect();
            let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            let got = dot_unrolled(&a, &b);
            assert!((got as f64 - exact).abs() < 1e-4, "n={n}: {got} vs {exact}");
        }
    }

    #[test]
    fn dot_unrolled_is_deterministic_bit_for_bit() {
        let a: Vec<f32> = (0..103).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let b: Vec<f32> = (0..103).map(|i| (i as f32).sqrt()).collect();
        assert_eq!(
            dot_unrolled(&a, &b).to_bits(),
            dot_unrolled(&a, &b).to_bits()
        );
    }

    #[test]
    fn cosine_zero_vector_is_zero_not_nan() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm_and_returns_old_norm() {
        let mut v = vec![3.0, 4.0];
        let n = l2_normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-6);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_backward_matches_finite_differences() {
        let x = [0.8f32, -0.4, 1.3];
        let dy = [0.3f32, 0.9, -0.2];
        // Analytic gradient.
        let mut y = x.to_vec();
        let n = l2_normalize(&mut y);
        let dx = l2_normalize_backward(&y, n, &dy);
        // Finite differences on f(x) = dy · normalize(x).
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            xp[i] += eps;
            l2_normalize(&mut xp);
            let mut xm = x.to_vec();
            xm[i] -= eps;
            l2_normalize(&mut xm);
            let fd = (dot(&xp, &dy) - dot(&xm, &dy)) / (2.0 * eps);
            assert!(
                (fd - dx[i]).abs() < 1e-2,
                "component {i}: fd {fd} vs analytic {}",
                dx[i]
            );
        }
    }

    #[test]
    fn mean_pool_averages_and_rejects_empty() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let m = mean_pool([a.as_slice(), b.as_slice()], 2).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_pool(std::iter::empty::<&[f32]>(), 2).is_none());
    }
}

//! Optimizers: SGD with weight decay + gradient clipping, and Adam.
//!
//! Appendix B trains RetExpan with lr 4e-5 / weight-decay 1e-2, Appendix C
//! pre-trains the LM with gradient clipping 1.0 — both optimizer features
//! are implemented here.

/// Visitor trait exposing `(parameters, gradients)` pairs of a model.
///
/// Layers accumulate gradients in their backward passes; optimizers walk
/// the pairs via this trait. Visit order is stable, which is what lets
/// Adam keep per-parameter state externally.
pub trait GradApply {
    /// Calls `f(params, grads)` for every parameter block, in a stable order.
    fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Clears accumulated gradients.
    fn zero_grads(&mut self);
}

/// Plain SGD: `w -= lr · (clip(g) + wd · w)`.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Global l2 gradient-norm clip; `0` disables clipping.
    pub clip: f32,
}

impl Sgd {
    /// SGD with the given learning rate, no decay, no clipping.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
            clip: 0.0,
        }
    }

    /// Sets weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the global gradient-norm clip.
    pub fn with_clip(mut self, clip: f32) -> Self {
        self.clip = clip;
        self
    }

    /// Applies one update and clears gradients.
    pub fn step(&self, model: &mut dyn GradApply) {
        let scale = clip_scale(model, self.clip);
        let (lr, wd) = (self.lr, self.weight_decay);
        model.visit(&mut |params, grads| {
            for (w, g) in params.iter_mut().zip(grads.iter()) {
                *w -= lr * (g * scale + wd * *w);
            }
        });
        model.zero_grads();
    }
}

/// Computes the global-norm clip scale (1.0 when disabled or under limit).
fn clip_scale(model: &mut dyn GradApply, clip: f32) -> f32 {
    if clip <= 0.0 {
        return 1.0;
    }
    let mut sq = 0.0f64;
    model.visit(&mut |_, grads| {
        for g in grads.iter() {
            sq += (*g as f64) * (*g as f64);
        }
    });
    let norm = sq.sqrt() as f32;
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay and bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f32,
    step: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with conventional betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            moments: Vec::new(),
        }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update and clears gradients.
    ///
    /// Moment buffers are allocated lazily on the first step and matched to
    /// parameter blocks by visit order, so the same `Adam` instance must
    /// always step the same model.
    pub fn step(&mut self, model: &mut dyn GradApply) {
        self.step += 1;
        let t = self.step as i32;
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        let moments = &mut self.moments;
        let mut idx = 0usize;
        model.visit(&mut |params, grads| {
            if moments.len() <= idx {
                moments.push((vec![0.0; params.len()], vec![0.0; params.len()]));
            }
            let (m, v) = &mut moments[idx];
            assert_eq!(m.len(), params.len(), "model shape changed under Adam");
            for i in 0..params.len() {
                let g = grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                params[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * params[i]);
            }
            idx += 1;
        });
        model.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single scalar parameter for optimizer unit tests.
    struct Scalar {
        w: [f32; 1],
        g: [f32; 1],
    }

    impl GradApply for Scalar {
        fn visit(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
            f(&mut self.w, &mut self.g);
        }
        fn zero_grads(&mut self) {
            self.g[0] = 0.0;
        }
    }

    #[test]
    fn sgd_descends_and_clears_grads() {
        let mut s = Scalar { w: [1.0], g: [2.0] };
        Sgd::new(0.1).step(&mut s);
        assert!((s.w[0] - 0.8).abs() < 1e-6);
        assert_eq!(s.g[0], 0.0);
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut s = Scalar { w: [1.0], g: [0.0] };
        Sgd::new(0.1).with_weight_decay(0.5).step(&mut s);
        assert!((s.w[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn sgd_clipping_limits_update_magnitude() {
        let mut s = Scalar {
            w: [0.0],
            g: [100.0],
        };
        Sgd::new(1.0).with_clip(1.0).step(&mut s);
        assert!((s.w[0] + 1.0).abs() < 1e-5, "update clipped to norm 1");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (w-3)^2 from w=0.
        let mut s = Scalar { w: [0.0], g: [0.0] };
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            s.g[0] = 2.0 * (s.w[0] - 3.0);
            adam.step(&mut s);
        }
        assert!((s.w[0] - 3.0).abs() < 0.05, "w = {}", s.w[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step is ≈ lr·sign(g).
        let mut s = Scalar { w: [0.0], g: [5.0] };
        let mut adam = Adam::new(0.01);
        adam.step(&mut s);
        assert!((s.w[0] + 0.01).abs() < 1e-4);
    }
}

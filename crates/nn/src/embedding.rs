//! Embedding-bag layer: mean of embedding rows with sparse gradients.
//!
//! The entity encoder consumes a masked context as a *bag of token ids*
//! and produces its mean embedding. Gradients touch only the rows that
//! appeared in a batch, which keeps training O(active rows) instead of
//! O(vocabulary) per step.

use crate::matrix::Matrix;
use std::collections::{BTreeMap, HashMap};
use ultra_core::rng::UltraRng;
use ultra_core::TokenId;

/// A detached sparse gradient buffer: token row → gradient vector.
///
/// Backed by a `BTreeMap` so that traversal order is the token order — a
/// pure function of the content, never of hashing — which keeps merged
/// buffers and their parameter updates deterministic. Per-sample buffers
/// are filled in parallel via [`EmbeddingBag::backward_into`] and merged in
/// sample order with [`merge`](Self::merge).
#[derive(Clone, Debug, Default)]
pub struct SparseGrad {
    grads: BTreeMap<u32, Vec<f32>>,
}

impl SparseGrad {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dy * scale` into the row for `token`.
    pub fn add_scaled(&mut self, token: TokenId, dy: &[f32], scale: f32) {
        let g = self
            .grads
            .entry(token.0)
            .or_insert_with(|| vec![0.0; dy.len()]);
        for (gi, &d) in g.iter_mut().zip(dy) {
            *gi += d * scale;
        }
    }

    /// Merges `other` into `self`, row by row. Each row's additions happen
    /// in the order `merge` is called, so folding per-sample buffers in
    /// sample order yields bit-identical sums at any thread count.
    pub fn merge(&mut self, other: SparseGrad) {
        for (row, grad) in other.grads {
            match self.grads.entry(row) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(grad);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    for (a, &b) in o.get_mut().iter_mut().zip(&grad) {
                        *a += b;
                    }
                }
            }
        }
    }

    /// Number of rows with pending gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

/// Mean-pooled embedding lookup with sparse gradient accumulation.
#[derive(Clone, Debug)]
pub struct EmbeddingBag {
    table: Matrix,
    sparse_grads: HashMap<u32, Vec<f32>>,
}

impl EmbeddingBag {
    /// Xavier-initialised table of `vocab_size × dim`.
    pub fn new(vocab_size: usize, dim: usize, rng: &mut UltraRng) -> Self {
        Self {
            table: Matrix::xavier(vocab_size, dim, rng),
            sparse_grads: HashMap::new(),
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary capacity.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.table.rows()
    }

    /// One row of the table.
    #[inline]
    pub fn row(&self, t: TokenId) -> &[f32] {
        self.table.row(t.index())
    }

    /// Mean of the rows for `tokens`; `None` if `tokens` is empty.
    pub fn forward(&self, tokens: &[TokenId]) -> Option<Vec<f32>> {
        if tokens.is_empty() {
            return None;
        }
        let mut acc = vec![0.0f32; self.dim()];
        for &t in tokens {
            for (a, &x) in acc.iter_mut().zip(self.row(t)) {
                *a += x;
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        acc.iter_mut().for_each(|a| *a *= inv);
        Some(acc)
    }

    /// Accumulates the gradient of the mean pool: each participating row
    /// receives `dy / n`.
    pub fn backward(&mut self, tokens: &[TokenId], dy: &[f32]) {
        if tokens.is_empty() {
            return;
        }
        let inv = 1.0 / tokens.len() as f32;
        for &t in tokens {
            let g = self
                .sparse_grads
                .entry(t.0)
                .or_insert_with(|| vec![0.0; dy.len()]);
            for (gi, &d) in g.iter_mut().zip(dy) {
                *gi += d * inv;
            }
        }
    }

    /// Non-mutating variant of [`backward`](Self::backward): accumulates
    /// the mean-pool gradient into a detached [`SparseGrad`] buffer, so
    /// per-sample gradients can be computed in parallel against a frozen
    /// table. Same math (and bits) as `backward`.
    pub fn backward_into(&self, tokens: &[TokenId], dy: &[f32], g: &mut SparseGrad) {
        if tokens.is_empty() {
            return;
        }
        let inv = 1.0 / tokens.len() as f32;
        for &t in tokens {
            g.add_scaled(t, dy, inv);
        }
    }

    /// Applies accumulated sparse gradients with plain SGD
    /// (`w -= lr · (g + wd · w)`), clipping each row gradient to
    /// `clip` in l2 norm, then clears the gradient buffer.
    ///
    /// Embedding rows use a dedicated sparse step rather than the dense
    /// [`GradApply`](crate::optim::GradApply) path because dense traversal
    /// of a vocabulary-sized table per batch would dominate training time.
    pub fn apply_sparse_sgd(&mut self, lr: f32, weight_decay: f32, clip: f32) {
        for (row_idx, grad) in self.sparse_grads.drain() {
            Self::sparse_row_update(
                self.table.row_mut(row_idx as usize),
                &grad,
                lr,
                weight_decay,
                clip,
            );
        }
    }

    /// [`apply_sparse_sgd`](Self::apply_sparse_sgd) over a detached buffer:
    /// identical per-row update math, consuming `g` instead of the internal
    /// accumulator. Row updates are independent, so the two paths agree
    /// bit-for-bit for equal row gradients.
    pub fn apply_sparse_sgd_from(&mut self, g: SparseGrad, lr: f32, weight_decay: f32, clip: f32) {
        for (row_idx, grad) in g.grads {
            Self::sparse_row_update(
                self.table.row_mut(row_idx as usize),
                &grad,
                lr,
                weight_decay,
                clip,
            );
        }
    }

    fn sparse_row_update(row: &mut [f32], grad: &[f32], lr: f32, weight_decay: f32, clip: f32) {
        let norm: f32 = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
        let scale = if clip > 0.0 && norm > clip {
            clip / norm
        } else {
            1.0
        };
        for (w, &g) in row.iter_mut().zip(grad) {
            *w -= lr * (g * scale + weight_decay * *w);
        }
    }

    /// Number of rows with pending gradients (test/diagnostic hook).
    pub fn pending_rows(&self) -> usize {
        self.sparse_grads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }

    #[test]
    fn forward_means_rows() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(4, 2, &mut rng);
        let a = bag.row(t(0)).to_vec();
        let b = bag.row(t(1)).to_vec();
        let m = bag.forward(&[t(0), t(1)]).unwrap();
        assert!((m[0] - (a[0] + b[0]) / 2.0).abs() < 1e-6);
        assert!((m[1] - (a[1] + b[1]) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn forward_empty_is_none() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(4, 2, &mut rng);
        assert!(bag.forward(&[]).is_none());
    }

    #[test]
    fn backward_touches_only_active_rows() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(8, 2, &mut rng);
        bag.backward(&[t(1), t(3)], &[1.0, -1.0]);
        assert_eq!(bag.pending_rows(), 2);
        let before = bag.row(t(5)).to_vec();
        bag.apply_sparse_sgd(0.1, 0.0, 0.0);
        assert_eq!(bag.row(t(5)), before.as_slice(), "inactive row untouched");
        assert_eq!(bag.pending_rows(), 0);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(2, 2, &mut rng);
        let before = bag.row(t(0)).to_vec();
        bag.backward(&[t(0)], &[1.0, 0.0]);
        bag.apply_sparse_sgd(0.5, 0.0, 0.0);
        let after = bag.row(t(0));
        assert!((after[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after[1] - before[1]).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_row_update() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(1, 2, &mut rng);
        let before = bag.row(t(0)).to_vec();
        bag.backward(&[t(0)], &[30.0, 40.0]); // norm 50
        bag.apply_sparse_sgd(1.0, 0.0, 5.0); // clipped to norm 5
        let after = bag.row(t(0));
        let delta = ((after[0] - before[0]).powi(2) + (after[1] - before[1]).powi(2)).sqrt();
        assert!((delta - 5.0).abs() < 1e-4);
    }

    #[test]
    fn detached_sparse_path_matches_internal_path_bitwise() {
        let mut rng = derive_rng(2, 0);
        let proto = EmbeddingBag::new(8, 3, &mut rng);

        // Internal path: two backward calls, one apply.
        let mut a = proto.clone();
        a.backward(&[t(1), t(3)], &[0.5, -1.0, 2.0]);
        a.backward(&[t(3), t(6)], &[1.5, 0.25, -0.75]);
        a.apply_sparse_sgd(0.1, 1e-4, 5.0);

        // Detached path: per-sample buffers merged in sample order.
        let mut b = proto.clone();
        let mut g1 = SparseGrad::new();
        let mut g2 = SparseGrad::new();
        b.backward_into(&[t(1), t(3)], &[0.5, -1.0, 2.0], &mut g1);
        b.backward_into(&[t(3), t(6)], &[1.5, 0.25, -0.75], &mut g2);
        g1.merge(g2);
        assert_eq!(g1.len(), 3);
        b.apply_sparse_sgd_from(g1, 0.1, 1e-4, 5.0);

        for r in 0..8 {
            let ra: Vec<u32> = a.row(t(r)).iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = b.row(t(r)).iter().map(|v| v.to_bits()).collect();
            assert_eq!(ra, rb, "row {r} diverged");
        }
    }

    #[test]
    fn repeated_tokens_average_not_sum() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(2, 2, &mut rng);
        let single = bag.forward(&[t(0)]).unwrap();
        let repeated = bag.forward(&[t(0), t(0)]).unwrap();
        assert_eq!(single, repeated);
    }
}

//! Embedding-bag layer: mean of embedding rows with sparse gradients.
//!
//! The entity encoder consumes a masked context as a *bag of token ids*
//! and produces its mean embedding. Gradients touch only the rows that
//! appeared in a batch, which keeps training O(active rows) instead of
//! O(vocabulary) per step.

use crate::matrix::Matrix;
use std::collections::{BTreeMap, HashMap};
use ultra_core::rng::UltraRng;
use ultra_core::TokenId;

/// A detached sparse gradient buffer: token row → gradient vector.
///
/// Backed by a `BTreeMap` so that traversal order is the token order — a
/// pure function of the content, never of hashing — which keeps merged
/// buffers and their parameter updates deterministic. Per-sample buffers
/// are filled in parallel via [`EmbeddingBag::backward_into`] and merged in
/// sample order with [`merge`](Self::merge).
#[derive(Clone, Debug, Default)]
pub struct SparseGrad {
    grads: BTreeMap<u32, Vec<f32>>,
}

impl SparseGrad {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dy * scale` into the row for `token`.
    pub fn add_scaled(&mut self, token: TokenId, dy: &[f32], scale: f32) {
        let g = self
            .grads
            .entry(token.0)
            .or_insert_with(|| vec![0.0; dy.len()]);
        for (gi, &d) in g.iter_mut().zip(dy) {
            *gi += d * scale;
        }
    }

    /// Merges `other` into `self`, row by row. Each row's additions happen
    /// in the order `merge` is called, so folding per-sample buffers in
    /// sample order yields bit-identical sums at any thread count.
    pub fn merge(&mut self, other: SparseGrad) {
        for (row, grad) in other.grads {
            match self.grads.entry(row) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(grad);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    for (a, &b) in o.get_mut().iter_mut().zip(&grad) {
                        *a += b;
                    }
                }
            }
        }
    }

    /// Number of rows with pending gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

/// Reusable sparse-gradient accumulator with O(touched) clearing — the
/// workspace counterpart of [`SparseGrad`].
///
/// `SparseGrad`'s `BTreeMap` allocates a node per touched row per batch;
/// at ~140 touched rows × thousands of batches that allocation traffic
/// dominates the embedding backward. `SparseSink` instead keeps a
/// vocab-sized slot map (`token → packed row + 1`, 0 = empty), a
/// first-touch-order list of touched tokens, and one flat row buffer — all
/// retained across batches, so the steady state allocates nothing.
///
/// Per-row arithmetic is the same `+=` sequence as `SparseGrad`'s, and row
/// updates are independent, so a sink and a map fed the same
/// `add_scaled`/merge sequence produce identical row bits even though the
/// sink applies rows in first-touch order rather than token order.
#[derive(Clone, Debug, Default)]
pub struct SparseSink {
    dim: usize,
    slots: Vec<u32>,
    touched: Vec<u32>,
    rows: Vec<f32>,
}

impl SparseSink {
    /// An empty, unshaped sink; call [`ensure`](Self::ensure) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shapes the sink for a `vocab_size × dim` table, preserving buffers
    /// (and their capacity) when the shape already matches.
    pub fn ensure(&mut self, vocab_size: usize, dim: usize) {
        if self.slots.len() != vocab_size || self.dim != dim {
            self.dim = dim;
            self.slots = vec![0; vocab_size];
            self.touched.clear();
            self.rows.clear();
        }
    }

    /// Clears accumulated rows in O(touched), keeping all capacity.
    pub fn clear(&mut self) {
        for &t in &self.touched {
            self.slots[t as usize] = 0;
        }
        self.touched.clear();
        self.rows.clear();
    }

    /// Packed row index for `token`, appending a zeroed row on first touch.
    #[inline]
    fn row_index(&mut self, token: u32) -> usize {
        let slot = self.slots[token as usize];
        if slot != 0 {
            return (slot - 1) as usize;
        }
        let idx = self.touched.len();
        self.slots[token as usize] = idx as u32 + 1;
        self.touched.push(token);
        self.rows.resize(self.rows.len() + self.dim, 0.0);
        idx
    }

    /// Adds `dy * scale` into the row for `token` — same accumulation
    /// arithmetic as [`SparseGrad::add_scaled`].
    #[inline]
    pub fn add_scaled(&mut self, token: TokenId, dy: &[f32], scale: f32) {
        let idx = self.row_index(token.0);
        let row = &mut self.rows[idx * self.dim..(idx + 1) * self.dim];
        for (gi, &d) in row.iter_mut().zip(dy) {
            *gi += d * scale;
        }
    }

    /// Merges `other`'s rows into `self` in `other`'s first-touch order —
    /// the sink analogue of [`SparseGrad::merge`]. For rows new to `self`
    /// the first merge lands on a zeroed row (`0.0 + x`); that matches the
    /// map's vacant-entry *move* bit-for-bit because accumulated row sums
    /// are never `-0.0` (each row sum starts from `+0.0`, and IEEE-754
    /// round-to-nearest addition only yields `-0.0` from two `-0.0`
    /// operands).
    pub fn merge_from(&mut self, other: &SparseSink) {
        for (i, &t) in other.touched.iter().enumerate() {
            let src = &other.rows[i * other.dim..(i + 1) * other.dim];
            let idx = self.row_index(t);
            let dst = &mut self.rows[idx * self.dim..(idx + 1) * self.dim];
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
    }

    /// Number of rows with pending gradients.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether the sink holds no pending rows.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }
}

/// Mean-pooled embedding lookup with sparse gradient accumulation.
#[derive(Clone, Debug)]
pub struct EmbeddingBag {
    table: Matrix,
    sparse_grads: HashMap<u32, Vec<f32>>,
}

impl EmbeddingBag {
    /// Xavier-initialised table of `vocab_size × dim`.
    pub fn new(vocab_size: usize, dim: usize, rng: &mut UltraRng) -> Self {
        Self {
            table: Matrix::xavier(vocab_size, dim, rng),
            sparse_grads: HashMap::new(),
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary capacity.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.table.rows()
    }

    /// One row of the table.
    #[inline]
    pub fn row(&self, t: TokenId) -> &[f32] {
        self.table.row(t.index())
    }

    /// Mean of the rows for `tokens`; `None` if `tokens` is empty.
    pub fn forward(&self, tokens: &[TokenId]) -> Option<Vec<f32>> {
        if tokens.is_empty() {
            return None;
        }
        let mut acc = vec![0.0f32; self.dim()];
        for &t in tokens {
            for (a, &x) in acc.iter_mut().zip(self.row(t)) {
                *a += x;
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        acc.iter_mut().for_each(|a| *a *= inv);
        Some(acc)
    }

    /// [`forward`](Self::forward) into a caller-owned buffer
    /// (`out.len() == dim`). Returns `false` (leaving `out` untouched) for
    /// an empty bag. Same accumulate-then-scale arithmetic, so same bits.
    pub fn forward_into(&self, tokens: &[TokenId], out: &mut [f32]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        out.iter_mut().for_each(|a| *a = 0.0);
        for &t in tokens {
            for (a, &x) in out.iter_mut().zip(self.row(t)) {
                *a += x;
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        out.iter_mut().for_each(|a| *a *= inv);
        true
    }

    /// [`backward_into`](Self::backward_into) against a reusable
    /// [`SparseSink`]: identical per-token `+=` sequence, no per-batch
    /// allocation.
    pub fn backward_into_sink(&self, tokens: &[TokenId], dy: &[f32], g: &mut SparseSink) {
        if tokens.is_empty() {
            return;
        }
        let inv = 1.0 / tokens.len() as f32;
        for &t in tokens {
            g.add_scaled(t, dy, inv);
        }
    }

    /// Accumulates the gradient of the mean pool: each participating row
    /// receives `dy / n`.
    pub fn backward(&mut self, tokens: &[TokenId], dy: &[f32]) {
        if tokens.is_empty() {
            return;
        }
        let inv = 1.0 / tokens.len() as f32;
        for &t in tokens {
            let g = self
                .sparse_grads
                .entry(t.0)
                .or_insert_with(|| vec![0.0; dy.len()]);
            for (gi, &d) in g.iter_mut().zip(dy) {
                *gi += d * inv;
            }
        }
    }

    /// Non-mutating variant of [`backward`](Self::backward): accumulates
    /// the mean-pool gradient into a detached [`SparseGrad`] buffer, so
    /// per-sample gradients can be computed in parallel against a frozen
    /// table. Same math (and bits) as `backward`.
    pub fn backward_into(&self, tokens: &[TokenId], dy: &[f32], g: &mut SparseGrad) {
        if tokens.is_empty() {
            return;
        }
        let inv = 1.0 / tokens.len() as f32;
        for &t in tokens {
            g.add_scaled(t, dy, inv);
        }
    }

    /// Applies accumulated sparse gradients with plain SGD
    /// (`w -= lr · (g + wd · w)`), clipping each row gradient to
    /// `clip` in l2 norm, then clears the gradient buffer.
    ///
    /// Embedding rows use a dedicated sparse step rather than the dense
    /// [`GradApply`](crate::optim::GradApply) path because dense traversal
    /// of a vocabulary-sized table per batch would dominate training time.
    pub fn apply_sparse_sgd(&mut self, lr: f32, weight_decay: f32, clip: f32) {
        for (row_idx, grad) in self.sparse_grads.drain() {
            Self::sparse_row_update(
                self.table.row_mut(row_idx as usize),
                &grad,
                lr,
                weight_decay,
                clip,
            );
        }
    }

    /// [`apply_sparse_sgd`](Self::apply_sparse_sgd) over a detached buffer:
    /// identical per-row update math, consuming `g` instead of the internal
    /// accumulator. Row updates are independent, so the two paths agree
    /// bit-for-bit for equal row gradients.
    pub fn apply_sparse_sgd_from(&mut self, g: SparseGrad, lr: f32, weight_decay: f32, clip: f32) {
        for (row_idx, grad) in g.grads {
            Self::sparse_row_update(
                self.table.row_mut(row_idx as usize),
                &grad,
                lr,
                weight_decay,
                clip,
            );
        }
    }

    /// [`apply_sparse_sgd_from`](Self::apply_sparse_sgd_from) over a
    /// [`SparseSink`], borrowing it (callers [`SparseSink::clear`] it for
    /// reuse). Rows are visited in first-touch order instead of token
    /// order; row updates are independent, so the table bits match the
    /// map-based path for equal row gradients.
    pub fn apply_sparse_sgd_from_sink(
        &mut self,
        g: &SparseSink,
        lr: f32,
        weight_decay: f32,
        clip: f32,
    ) {
        for (i, &t) in g.touched.iter().enumerate() {
            let grad = &g.rows[i * g.dim..(i + 1) * g.dim];
            Self::sparse_row_update(self.table.row_mut(t as usize), grad, lr, weight_decay, clip);
        }
    }

    fn sparse_row_update(row: &mut [f32], grad: &[f32], lr: f32, weight_decay: f32, clip: f32) {
        let norm: f32 = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
        let scale = if clip > 0.0 && norm > clip {
            clip / norm
        } else {
            1.0
        };
        for (w, &g) in row.iter_mut().zip(grad) {
            *w -= lr * (g * scale + weight_decay * *w);
        }
    }

    /// Number of rows with pending gradients (test/diagnostic hook).
    pub fn pending_rows(&self) -> usize {
        self.sparse_grads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }

    #[test]
    fn forward_means_rows() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(4, 2, &mut rng);
        let a = bag.row(t(0)).to_vec();
        let b = bag.row(t(1)).to_vec();
        let m = bag.forward(&[t(0), t(1)]).unwrap();
        assert!((m[0] - (a[0] + b[0]) / 2.0).abs() < 1e-6);
        assert!((m[1] - (a[1] + b[1]) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn forward_empty_is_none() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(4, 2, &mut rng);
        assert!(bag.forward(&[]).is_none());
    }

    #[test]
    fn backward_touches_only_active_rows() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(8, 2, &mut rng);
        bag.backward(&[t(1), t(3)], &[1.0, -1.0]);
        assert_eq!(bag.pending_rows(), 2);
        let before = bag.row(t(5)).to_vec();
        bag.apply_sparse_sgd(0.1, 0.0, 0.0);
        assert_eq!(bag.row(t(5)), before.as_slice(), "inactive row untouched");
        assert_eq!(bag.pending_rows(), 0);
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(2, 2, &mut rng);
        let before = bag.row(t(0)).to_vec();
        bag.backward(&[t(0)], &[1.0, 0.0]);
        bag.apply_sparse_sgd(0.5, 0.0, 0.0);
        let after = bag.row(t(0));
        assert!((after[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after[1] - before[1]).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_row_update() {
        let mut rng = derive_rng(1, 0);
        let mut bag = EmbeddingBag::new(1, 2, &mut rng);
        let before = bag.row(t(0)).to_vec();
        bag.backward(&[t(0)], &[30.0, 40.0]); // norm 50
        bag.apply_sparse_sgd(1.0, 0.0, 5.0); // clipped to norm 5
        let after = bag.row(t(0));
        let delta = ((after[0] - before[0]).powi(2) + (after[1] - before[1]).powi(2)).sqrt();
        assert!((delta - 5.0).abs() < 1e-4);
    }

    #[test]
    fn detached_sparse_path_matches_internal_path_bitwise() {
        let mut rng = derive_rng(2, 0);
        let proto = EmbeddingBag::new(8, 3, &mut rng);

        // Internal path: two backward calls, one apply.
        let mut a = proto.clone();
        a.backward(&[t(1), t(3)], &[0.5, -1.0, 2.0]);
        a.backward(&[t(3), t(6)], &[1.5, 0.25, -0.75]);
        a.apply_sparse_sgd(0.1, 1e-4, 5.0);

        // Detached path: per-sample buffers merged in sample order.
        let mut b = proto.clone();
        let mut g1 = SparseGrad::new();
        let mut g2 = SparseGrad::new();
        b.backward_into(&[t(1), t(3)], &[0.5, -1.0, 2.0], &mut g1);
        b.backward_into(&[t(3), t(6)], &[1.5, 0.25, -0.75], &mut g2);
        g1.merge(g2);
        assert_eq!(g1.len(), 3);
        b.apply_sparse_sgd_from(g1, 0.1, 1e-4, 5.0);

        for r in 0..8 {
            let ra: Vec<u32> = a.row(t(r)).iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = b.row(t(r)).iter().map(|v| v.to_bits()).collect();
            assert_eq!(ra, rb, "row {r} diverged");
        }
    }

    #[test]
    fn sink_path_matches_map_path_bitwise_across_reuse() {
        let mut rng = derive_rng(3, 0);
        let proto = EmbeddingBag::new(16, 3, &mut rng);
        let batches: Vec<Vec<(Vec<TokenId>, Vec<f32>)>> = vec![
            vec![
                (vec![t(1), t(3)], vec![0.5, -1.0, 2.0]),
                (vec![t(3), t(6), t(6)], vec![1.5, 0.25, -0.75]),
            ],
            vec![
                (vec![t(6)], vec![-0.5, 0.125, 0.33]),
                (vec![t(1), t(15)], vec![0.1, 0.2, 0.3]),
            ],
        ];
        let mut a = proto.clone();
        let mut b = proto.clone();
        // One sink reused across batches (clear between steps) vs fresh
        // BTreeMap buffers: table bits must agree after every step.
        let mut sink = SparseSink::new();
        sink.ensure(16, 3);
        let mut other = SparseSink::new();
        other.ensure(16, 3);
        for batch in &batches {
            let mut map = SparseGrad::new();
            sink.clear();
            other.clear();
            for (tokens, dy) in batch {
                a.backward_into(tokens, dy, &mut map);
            }
            // Split the same work across two sinks and merge, exercising
            // the first-touch merge path.
            b.backward_into_sink(&batch[0].0, &batch[0].1, &mut sink);
            b.backward_into_sink(&batch[1].0, &batch[1].1, &mut other);
            sink.merge_from(&other);
            assert_eq!(sink.len(), map.len());
            a.apply_sparse_sgd_from(map, 0.1, 1e-4, 5.0);
            b.apply_sparse_sgd_from_sink(&sink, 0.1, 1e-4, 5.0);
            for r in 0..16 {
                let ra: Vec<u32> = a.row(t(r)).iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = b.row(t(r)).iter().map(|v| v.to_bits()).collect();
                assert_eq!(ra, rb, "row {r} diverged");
            }
        }
    }

    #[test]
    fn repeated_tokens_average_not_sum() {
        let mut rng = derive_rng(1, 0);
        let bag = EmbeddingBag::new(2, 2, &mut rng);
        let single = bag.forward(&[t(0)]).unwrap();
        let repeated = bag.forward(&[t(0), t(0)]).unwrap();
        assert_eq!(single, repeated);
    }
}

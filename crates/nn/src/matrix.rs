//! Row-major dense matrix on a flat `Vec<f32>`.

use rand::Rng;
use ultra_core::rng::UltraRng;

/// Row-major dense matrix.
///
/// Kept deliberately small: the substrate needs matrix-vector products,
/// row views, and in-place axpy-style updates — nothing else. All hot loops
/// operate on slices so the compiler elides bounds checks.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialised matrix, deterministic under `rng`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut UltraRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = self · x` (matrix-vector product). `x.len()` must equal `cols`.
    // ultra-lint: hot
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` (transposed matrix-vector product).
    /// `x.len()` must equal `rows`; result has length `cols`.
    // ultra-lint: hot
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (yc, &w) in y.iter_mut().zip(self.row(r).iter()) {
                *yc += xr * w;
            }
        }
        y
    }

    /// Rank-1 update `self += alpha · u vᵀ`
    /// (`u.len() == rows`, `v.len() == cols`). The workhorse of gradient
    /// accumulation for linear layers.
    // ultra-lint: hot
    pub fn add_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let coef = alpha * ur;
            for (w, &vc) in self.row_mut(r).iter_mut().zip(v.iter()) {
                *w += coef * vc;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Elementwise `self += other` (gradient-buffer merge). Shapes must
    /// match.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_assign shape mismatch");
        assert_eq!(self.cols, other.cols, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Batch scoring primitive: dots of the rows in `rows` against `query`,
    /// via the unrolled kernel ([`crate::ops::dot_unrolled`]). This is the
    /// per-chunk kernel of the blocked candidate-scoring path; callers
    /// parallelize over disjoint row ranges.
    // ultra-lint: hot
    pub fn score_batch(&self, query: &[f32], rows: std::ops::Range<usize>) -> Vec<f32> {
        assert_eq!(query.len(), self.cols, "score_batch dimension mismatch");
        assert!(rows.end <= self.rows, "score_batch row range out of bounds");
        rows.map(|r| crate::ops::dot_unrolled(self.row(r), query))
            .collect()
    }

    /// `C = self · otherᵀ` — both operands row-major, so every inner product
    /// reads two contiguous rows (the cache-friendly "NT" layout used by
    /// blocked scoring). `self` is `(m × k)`, `other` is `(n × k)`, the
    /// result is `(m × n)`.
    // ultra-lint: hot
    pub fn matmat_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmat_nt inner dimension mismatch");
        let (m, n) = (self.rows, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a = self.row(i);
            let row = out.row_mut(i);
            for (j, o) in row.iter_mut().enumerate() {
                *o = crate::ops::dot_unrolled(a, other.row(j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates_rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let mut r1 = derive_rng(7, 0);
        let mut r2 = derive_rng(7, 0);
        let a = Matrix::xavier(4, 4, &mut r1);
        let b = Matrix::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f64 / 8.0).sqrt() as f32;
        assert!(a.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shapes() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn score_batch_matches_per_row_matvec() {
        let mut rng = derive_rng(9, 0);
        let m = Matrix::xavier(7, 5, &mut rng);
        let q = vec![0.3, -1.2, 0.8, 0.05, 2.0];
        let scores = m.score_batch(&q, 0..7);
        for (r, &s) in scores.iter().enumerate() {
            let exact: f32 = crate::ops::dot_unrolled(m.row(r), &q);
            assert_eq!(s.to_bits(), exact.to_bits());
        }
        assert_eq!(m.score_batch(&q, 2..2).len(), 0);
    }

    #[test]
    fn matmat_nt_matches_matvec_per_row() {
        let mut rng = derive_rng(10, 0);
        let a = Matrix::xavier(4, 6, &mut rng);
        let b = Matrix::xavier(3, 6, &mut rng);
        let c = a.matmat_nt(&b);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 3);
        for i in 0..4 {
            for j in 0..3 {
                let exact = crate::ops::dot_unrolled(a.row(i), b.row(j));
                assert_eq!(c.row(i)[j].to_bits(), exact.to_bits());
            }
        }
    }

    #[test]
    fn add_assign_merges_elementwise() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![0.5, -2.0, 1.0, 0.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 0.0, 4.0, 4.0]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }
}

//! Row-major dense matrix on a flat `Vec<f32>`.

use rand::Rng;
use ultra_core::rng::UltraRng;

/// Row-major dense matrix.
///
/// Kept deliberately small: the substrate needs matrix-vector products,
/// row views, and in-place axpy-style updates — nothing else. All hot loops
/// operate on slices so the compiler elides bounds checks.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialised matrix, deterministic under `rng`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut UltraRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = self · x` (matrix-vector product). `x.len()` must equal `cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` (transposed matrix-vector product).
    /// `x.len()` must equal `rows`; result has length `cols`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (yc, &w) in y.iter_mut().zip(self.row(r).iter()) {
                *yc += xr * w;
            }
        }
        y
    }

    /// Rank-1 update `self += alpha · u vᵀ`
    /// (`u.len() == rows`, `v.len() == cols`). The workhorse of gradient
    /// accumulation for linear layers.
    pub fn add_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let coef = alpha * ur;
            for (w, &vc) in self.row_mut(r).iter_mut().zip(v.iter()) {
                *w += coef * vc;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates_rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let mut r1 = derive_rng(7, 0);
        let mut r2 = derive_rng(7, 0);
        let a = Matrix::xavier(4, 4, &mut r1);
        let b = Matrix::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f64 / 8.0).sqrt() as f32;
        assert!(a.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shapes() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }
}

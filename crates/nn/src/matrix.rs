//! Row-major dense matrix on a flat `Vec<f32>`.

use rand::Rng;
use ultra_core::rng::UltraRng;

/// Row-major dense matrix.
///
/// Kept deliberately small: the substrate needs matrix-vector products,
/// row views, and in-place axpy-style updates — nothing else. All hot loops
/// operate on slices so the compiler elides bounds checks.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialised matrix, deterministic under `rng`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut UltraRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat parameter buffer (for optimizers).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = self · x` (matrix-vector product). `x.len()` must equal `cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`matvec`](Self::matvec) into a caller-owned buffer
    /// (`y.len() == rows`), the allocation-free form used by training
    /// workspaces. Each output element is one [`crate::ops::dot_unrolled`]
    /// — the *same* kernel [`matmat_nt`](Self::matmat_nt) applies per
    /// element, so a batched forward over a row matrix and a per-row
    /// forward produce identical bits.
    // ultra-lint: hot
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = crate::ops::dot_unrolled(self.row(r), x);
        }
    }

    /// `y = selfᵀ · x` (transposed matrix-vector product).
    /// `x.len()` must equal `rows`; result has length `cols`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.matvec_t_into(x, &mut y);
        y
    }

    /// [`matvec_t`](Self::matvec_t) into a caller-owned buffer
    /// (`y.len() == cols`); `y` is overwritten, not accumulated into.
    // ultra-lint: hot
    pub fn matvec_t_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output length mismatch");
        y.iter_mut().for_each(|v| *v = 0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (yc, &w) in y.iter_mut().zip(self.row(r).iter()) {
                *yc += xr * w;
            }
        }
    }

    /// Rank-1 update `self += alpha · u vᵀ`
    /// (`u.len() == rows`, `v.len() == cols`). The workhorse of gradient
    /// accumulation for linear layers.
    // ultra-lint: hot
    pub fn add_outer(&mut self, alpha: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let coef = alpha * ur;
            for (w, &vc) in self.row_mut(r).iter_mut().zip(v.iter()) {
                *w += coef * vc;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Elementwise `self += other` (gradient-buffer merge). Shapes must
    /// match.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_assign shape mismatch");
        assert_eq!(self.cols, other.cols, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Batch scoring primitive: dots of the rows in `rows` against `query`,
    /// via the unrolled kernel ([`crate::ops::dot_unrolled`]). This is the
    /// per-chunk kernel of the blocked candidate-scoring path; callers
    /// parallelize over disjoint row ranges.
    // ultra-lint: hot
    pub fn score_batch(&self, query: &[f32], rows: std::ops::Range<usize>) -> Vec<f32> {
        assert_eq!(query.len(), self.cols, "score_batch dimension mismatch");
        assert!(rows.end <= self.rows, "score_batch row range out of bounds");
        rows.map(|r| crate::ops::dot_unrolled(self.row(r), query))
            .collect()
    }

    /// `C = self · otherᵀ` — both operands row-major, so every inner product
    /// reads two contiguous rows (the cache-friendly "NT" layout used by
    /// blocked scoring). `self` is `(m × k)`, `other` is `(n × k)`, the
    /// result is `(m × n)`.
    pub fn matmat_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmat_nt_into(other, &mut out);
        out
    }

    /// [`matmat_nt`](Self::matmat_nt) into a caller-owned `(m × n)` output,
    /// blocked over 16×16 output tiles so both operand row groups stay
    /// cache-resident across the tile. Each output element is still one
    /// full-depth [`crate::ops::dot_unrolled`] — tiling reorders only
    /// *which element* is computed next, never the additions inside an
    /// element — so the result is bit-identical to the naive double loop
    /// and to per-row [`matvec_into`](Self::matvec_into).
    // ultra-lint: hot
    pub fn matmat_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmat_nt inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmat_nt output row mismatch");
        assert_eq!(out.cols, other.rows, "matmat_nt output col mismatch");
        const TILE: usize = 16;
        let (m, n) = (self.rows, other.rows);
        let mut ib = 0;
        while ib < m {
            let ie = (ib + TILE).min(m);
            let mut jb = 0;
            while jb < n {
                let je = (jb + TILE).min(n);
                for i in ib..ie {
                    let a = self.row(i);
                    let row = &mut out.data[i * out.cols..(i + 1) * out.cols];
                    for (j, o) in row[jb..je].iter_mut().enumerate() {
                        *o = crate::ops::dot_unrolled(a, other.row(jb + j));
                    }
                }
                jb = je;
            }
            ib = ie;
        }
    }

    /// Writes `selfᵀ` into `out`, reshaping `out` to `(cols × rows)` if
    /// needed (reusing its allocation when the element count matches).
    /// Small matrices only — the write pattern keeps one cache line per
    /// output row live, which fits L1 for the model-sized (≤ a few hundred
    /// rows) weight matrices this serves.
    pub fn transpose_into(&self, out: &mut Matrix) {
        if out.rows != self.cols || out.cols != self.rows {
            *out = Matrix::zeros(self.cols, self.rows);
        }
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                out.data[j * out.cols + i] = v;
            }
        }
    }

    /// [`matmat_nt_into`](Self::matmat_nt_into) against a *pre-transposed*
    /// right operand: `other_t` is `otherᵀ` (`k × n`), and the kernel sweeps
    /// it row-wise — `out[r][..] += a[i] · other_t[i][..]` — instead of
    /// taking `n` row-dot-products. The sweep form is throughput-bound
    /// (pure elementwise multiply-adds, no serial reduction chain), which
    /// makes it ~2x faster than the dot form on the training shapes.
    ///
    /// Bit-identical to the dot form by construction: `dot_unrolled` folds
    /// element `i` into partial sum `i % 4` (ascending `i` within each
    /// lane), the depth tail (`i ≥ 4⌊k/4⌋`) into a fifth sequential
    /// accumulator, and combines as `((s0+s1)+(s2+s3))+tail`. The four
    /// `lanes` rows plus the tail row reproduce exactly that grouping,
    /// order, and combine for every output element at once — the same
    /// IEEE-754 operations in the same order, just batched across `j`.
    ///
    /// `lanes` is caller-owned scratch with at least 5 rows of at least
    /// `n` columns (the rows are the 4 partial-sum lanes plus the tail).
    // ultra-lint: hot
    pub fn matmat_nt_pret_into(&self, other_t: &Matrix, out: &mut Matrix, lanes: &mut Matrix) {
        let (k, n) = (other_t.rows, other_t.cols);
        assert_eq!(self.cols, k, "matmat_nt_pret inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmat_nt_pret output row mismatch");
        assert_eq!(out.cols, n, "matmat_nt_pret output col mismatch");
        assert!(
            lanes.rows >= 5 && lanes.cols >= n,
            "matmat_nt_pret lane scratch too small"
        );
        let k4 = k - (k % 4);
        for r in 0..self.rows {
            let a = self.row(r);
            for l in 0..5 {
                lanes.row_mut(l)[..n].iter_mut().for_each(|v| *v = 0.0);
            }
            for (i, &c) in a[..k4].iter().enumerate() {
                let lane = lanes.row_mut(i % 4);
                for (s, &wv) in lane.iter_mut().zip(other_t.row(i)) {
                    *s += c * wv;
                }
            }
            for (i, &c) in a[k4..].iter().enumerate() {
                let tail = lanes.row_mut(4);
                for (s, &wv) in tail.iter_mut().zip(other_t.row(k4 + i)) {
                    *s += c * wv;
                }
            }
            let (s0, s1, s2, s3, tail) = (
                lanes.row(0),
                lanes.row(1),
                lanes.row(2),
                lanes.row(3),
                lanes.row(4),
            );
            for (j, o) in out.data[r * n..(r + 1) * n].iter_mut().enumerate() {
                *o = ((s0[j] + s1[j]) + (s2[j] + s3[j])) + tail[j];
            }
        }
    }

    /// Resizes the row count in place, keeping `cols` and reusing the
    /// backing allocation (capacity is sticky across shrinks). Newly
    /// exposed rows hold stale values — this is a *workspace* primitive for
    /// buffers whose every element is overwritten before being read.
    pub fn resize_rows(&mut self, rows: usize) {
        self.rows = rows;
        self.data.resize(rows * self.cols, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates_rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let mut r1 = derive_rng(7, 0);
        let mut r2 = derive_rng(7, 0);
        let a = Matrix::xavier(4, 4, &mut r1);
        let b = Matrix::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f64 / 8.0).sqrt() as f32;
        assert!(a.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shapes() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn score_batch_matches_per_row_matvec() {
        let mut rng = derive_rng(9, 0);
        let m = Matrix::xavier(7, 5, &mut rng);
        let q = vec![0.3, -1.2, 0.8, 0.05, 2.0];
        let scores = m.score_batch(&q, 0..7);
        for (r, &s) in scores.iter().enumerate() {
            let exact: f32 = crate::ops::dot_unrolled(m.row(r), &q);
            assert_eq!(s.to_bits(), exact.to_bits());
        }
        assert_eq!(m.score_batch(&q, 2..2).len(), 0);
    }

    #[test]
    fn matmat_nt_matches_matvec_per_row() {
        let mut rng = derive_rng(10, 0);
        let a = Matrix::xavier(4, 6, &mut rng);
        let b = Matrix::xavier(3, 6, &mut rng);
        let c = a.matmat_nt(&b);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 3);
        for i in 0..4 {
            for j in 0..3 {
                let exact = crate::ops::dot_unrolled(a.row(i), b.row(j));
                assert_eq!(c.row(i)[j].to_bits(), exact.to_bits());
            }
        }
    }

    #[test]
    fn blocked_matmat_matches_per_row_matvec_bitwise() {
        // Sizes straddle the 16×16 tile so ragged edge tiles are hit.
        let mut rng = derive_rng(13, 0);
        let a = Matrix::xavier(37, 21, &mut rng);
        let b = Matrix::xavier(19, 21, &mut rng);
        let c = a.matmat_nt(&b);
        for i in 0..37 {
            let per_row = b.matvec(a.row(i));
            let bits: Vec<u32> = per_row.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = c.row(i).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, bits, "row {i} diverged from matvec");
        }
    }

    #[test]
    fn resize_rows_keeps_cols_and_reuses_buffer() {
        let mut m = Matrix::zeros(4, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.resize_rows(2);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.resize_rows(6);
        assert_eq!((m.rows(), m.cols()), (6, 3));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.as_slice().len(), 18);
    }

    #[test]
    fn add_assign_merges_elementwise() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![0.5, -2.0, 1.0, 0.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 0.0, 4.0, 4.0]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_into_roundtrips() {
        let mut rng = derive_rng(11, 0);
        let m = Matrix::xavier(5, 9, &mut rng);
        let mut t = Matrix::zeros(0, 0);
        m.transpose_into(&mut t);
        assert_eq!((t.rows(), t.cols()), (9, 5));
        for i in 0..5 {
            for j in 0..9 {
                assert_eq!(m.row(i)[j].to_bits(), t.row(j)[i].to_bits());
            }
        }
        let mut back = Matrix::zeros(5, 9);
        t.transpose_into(&mut back);
        assert_eq!(back, m);
    }

    /// The sweep-form GEMM must be bit-identical to the dot-form one for
    /// every depth parity (multiple of 4, and each tail length 1–3) and in
    /// the presence of exact zeros — the summand grouping proof in the doc
    /// comment, checked empirically.
    #[test]
    fn matmat_nt_pret_into_is_bit_identical_to_dot_form() {
        let mut rng = derive_rng(12, 0);
        for k in [4usize, 5, 6, 7, 8, 96] {
            let mut a = Matrix::xavier(7, k, &mut rng);
            let b = Matrix::xavier(9, k, &mut rng);
            // Plant exact zeros on both sides.
            a.row_mut(2)[k / 2] = 0.0;
            a.row_mut(3).iter_mut().for_each(|v| *v = 0.0);
            let mut bt = Matrix::zeros(0, 0);
            b.transpose_into(&mut bt);
            let mut want = Matrix::zeros(7, 9);
            a.matmat_nt_into(&b, &mut want);
            let mut got = Matrix::zeros(7, 9);
            // Oversized, dirty lane scratch — the kernel must not care.
            let mut lanes = Matrix::from_vec(6, 16, vec![7.5; 96]);
            a.matmat_nt_pret_into(&bt, &mut got, &mut lanes);
            for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(w.to_bits(), g.to_bits(), "k={k}");
            }
        }
    }
}

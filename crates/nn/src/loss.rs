//! Training losses: label-smoothed softmax cross-entropy (Eq. 3) and
//! InfoNCE (Section 5.1.2).

use crate::ops::dot;

/// Numerically-stable softmax.
fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Label-smoothed softmax cross-entropy.
///
/// Implements the entity-prediction objective of Eq. 3 in its standard
/// smoothed-target form: the target distribution is
/// `(1-η)` on the gold entity and `η/(C-1)` spread over the rest, so the
/// smoothing factor `η` "mitigates over-penalization for entities that
/// exhibit similar semantics to the ground-truth entity".
///
/// Returns `(loss, dlogits)` where `dlogits = softmax(logits) - target`.
pub fn label_smoothed_ce(logits: &[f32], gold: usize, eta: f32) -> (f32, Vec<f32>) {
    assert!(gold < logits.len(), "gold index out of range");
    assert!(
        (0.0..1.0).contains(&eta),
        "smoothing factor must be in [0,1)"
    );
    let probs = softmax(logits);
    let c = logits.len();
    let off = if c > 1 { eta / (c as f32 - 1.0) } else { 0.0 };
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(c);
    for (j, &p) in probs.iter().enumerate() {
        let target = if j == gold { 1.0 - eta } else { off };
        // Clamp avoids log(0) on fully-saturated logits.
        loss -= target * p.max(1e-12).ln();
        grad.push(p - target);
    }
    (loss, grad)
}

/// Gradients produced by one InfoNCE term.
#[derive(Clone, Debug)]
pub struct InfoNceGrads {
    /// Loss value.
    pub loss: f32,
    /// Gradient w.r.t. the anchor vector.
    pub d_anchor: Vec<f32>,
    /// Gradient w.r.t. the positive vector.
    pub d_pos: Vec<f32>,
    /// Gradients w.r.t. each negative vector, in input order.
    pub d_negs: Vec<Vec<f32>>,
}

/// InfoNCE contrastive loss over *pre-normalized* vectors.
///
/// `L = -log( exp(a·p/τ) / (exp(a·p/τ) + Σ_k exp(a·n_k/τ)) )`.
///
/// Inputs are assumed l2-normalized (the contrastive head l2-normalizes its
/// projections, matching the paper's "new hypersphere space"), so similarity
/// is the dot product. All negatives share the denominator with equal
/// weight — the property the paper's Table 7 analysis attributes the
/// dilution of hard-negative penalties to.
pub fn infonce(anchor: &[f32], positive: &[f32], negatives: &[&[f32]], tau: f32) -> InfoNceGrads {
    infonce_weighted(anchor, positive, negatives, None, tau)
}

/// InfoNCE with per-negative weights.
///
/// A weight `w_k > 1` multiplies negative `k`'s exponential in the
/// denominator, amplifying its repulsion — the "directly increasing the
/// weights of negative terms" idea whose ineffectiveness the paper reports
/// (Section 6.2 point 4: mined hard negatives "inevitably contain errors",
/// so amplifying them amplifies the noise). `None` weights reduce to plain
/// InfoNCE.
pub fn infonce_weighted(
    anchor: &[f32],
    positive: &[f32],
    negatives: &[&[f32]],
    weights: Option<&[f32]>,
    tau: f32,
) -> InfoNceGrads {
    assert!(tau > 0.0, "temperature must be positive");
    if let Some(w) = weights {
        assert_eq!(w.len(), negatives.len(), "one weight per negative");
        assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
    }
    let d = anchor.len();
    // Logits: positive first, then negatives. Weight w_k enters as an
    // additive ln(w_k) on the negative logit (w·exp(x) = exp(x + ln w)).
    let mut logits = Vec::with_capacity(1 + negatives.len());
    logits.push(dot(anchor, positive) / tau);
    for (k, n) in negatives.iter().enumerate() {
        let lw = weights.map_or(0.0, |w| w[k].ln());
        logits.push(dot(anchor, n) / tau + lw);
    }
    let probs = softmax(&logits);
    let loss = -probs[0].max(1e-12).ln();

    // d loss / d logit_0 = p0 - 1 ; d loss / d logit_k = pk.
    let mut d_anchor = vec![0.0f32; d];
    let coef0 = (probs[0] - 1.0) / tau;
    let mut d_pos = vec![0.0f32; d];
    for i in 0..d {
        d_anchor[i] += coef0 * positive[i];
        d_pos[i] = coef0 * anchor[i];
    }
    let mut d_negs = Vec::with_capacity(negatives.len());
    for (k, n) in negatives.iter().enumerate() {
        let coef = probs[k + 1] / tau;
        let mut dn = vec![0.0f32; d];
        for i in 0..d {
            d_anchor[i] += coef * n[i];
            dn[i] = coef * anchor[i];
        }
        d_negs.push(dn);
    }
    InfoNceGrads {
        loss,
        d_anchor,
        d_pos,
        d_negs,
    }
}

/// [`infonce_weighted`] against caller-owned buffers — the allocation-free
/// form used by the fused training workspace. Negatives arrive as one flat
/// row-major slice (`k·d` elements); gradients land in `d_anchor`, `d_pos`
/// and the flat `d_negs_flat` (all caller-sized); `logits` is scratch of
/// length `1 + k` (also holding the softmax probabilities on return).
///
/// Bit-identical to [`infonce_weighted`] on the same inputs: identical
/// logit, softmax, loss and gradient arithmetic in identical order, only
/// the buffer ownership differs (`tests::into_variant_matches_allocating`
/// pins this).
// ultra-lint: hot
#[allow(clippy::too_many_arguments)]
pub fn infonce_weighted_into(
    anchor: &[f32],
    positive: &[f32],
    negatives_flat: &[f32],
    weights: Option<&[f32]>,
    tau: f32,
    logits: &mut [f32],
    d_anchor: &mut [f32],
    d_pos: &mut [f32],
    d_negs_flat: &mut [f32],
) -> f32 {
    assert!(tau > 0.0, "temperature must be positive");
    let d = anchor.len();
    let k = negatives_flat.len().checked_div(d).unwrap_or(0);
    assert_eq!(negatives_flat.len(), k * d, "ragged flat negatives");
    assert_eq!(logits.len(), 1 + k, "logit scratch length mismatch");
    assert_eq!(
        d_negs_flat.len(),
        k * d,
        "negative gradient length mismatch"
    );
    if let Some(w) = weights {
        assert_eq!(w.len(), k, "one weight per negative");
        assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
    }
    logits[0] = dot(anchor, positive) / tau;
    for kk in 0..k {
        let n = &negatives_flat[kk * d..(kk + 1) * d];
        let lw = weights.map_or(0.0, |w| w[kk].ln());
        logits[kk + 1] = dot(anchor, n) / tau + lw;
    }
    // In-place softmax: same max-fold / exp / sequential-sum / divide
    // sequence as the private `softmax`, so identical bits.
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
    }
    let sum: f32 = logits.iter().sum();
    for x in logits.iter_mut() {
        *x /= sum;
    }
    let probs = &*logits;
    let loss = -probs[0].max(1e-12).ln();

    let coef0 = (probs[0] - 1.0) / tau;
    // d_anchor accumulates from zero with `+=`, mirroring the allocating
    // version exactly (0.0 + x is not always the same bits as x: it maps
    // -0.0 to +0.0).
    d_anchor.iter_mut().for_each(|a| *a = 0.0);
    for i in 0..d {
        d_anchor[i] += coef0 * positive[i];
        d_pos[i] = coef0 * anchor[i];
    }
    for kk in 0..k {
        let coef = probs[kk + 1] / tau;
        let n = &negatives_flat[kk * d..(kk + 1) * d];
        let dn = &mut d_negs_flat[kk * d..(kk + 1) * d];
        for i in 0..d {
            d_anchor[i] += coef * n[i];
            dn[i] = coef * anchor[i];
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_variant_matches_allocating_bitwise() {
        let d = 7usize;
        let anchor: Vec<f32> = (0..d).map(|i| ((i as f32) * 0.7).sin()).collect();
        let pos: Vec<f32> = (0..d).map(|i| ((i as f32) * 1.3).cos()).collect();
        let negs: Vec<Vec<f32>> = (0..3)
            .map(|k| (0..d).map(|i| ((i + k) as f32 * 0.41).sin()).collect())
            .collect();
        let neg_refs: Vec<&[f32]> = negs.iter().map(|n| n.as_slice()).collect();
        let flat: Vec<f32> = negs.iter().flatten().copied().collect();
        for weights in [None, Some(vec![1.5f32, 0.5, 3.0])] {
            let a = infonce_weighted(&anchor, &pos, &neg_refs, weights.as_deref(), 0.21);
            let mut logits = vec![0.0f32; 4];
            let mut da = vec![7.0f32; d];
            let mut dp = vec![7.0f32; d];
            let mut dn = vec![7.0f32; 3 * d];
            let loss = infonce_weighted_into(
                &anchor,
                &pos,
                &flat,
                weights.as_deref(),
                0.21,
                &mut logits,
                &mut da,
                &mut dp,
                &mut dn,
            );
            assert_eq!(loss.to_bits(), a.loss.to_bits());
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&da), bits(&a.d_anchor));
            assert_eq!(bits(&dp), bits(&a.d_pos));
            let flat_ref: Vec<f32> = a.d_negs.iter().flatten().copied().collect();
            assert_eq!(bits(&dn), bits(&flat_ref));
        }
    }

    #[test]
    fn smoothed_ce_gradient_sums_to_zero() {
        let (_, grad) = label_smoothed_ce(&[1.0, -0.5, 0.2], 0, 0.075);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-5, "softmax-minus-target grads sum to 0");
    }

    #[test]
    fn smoothed_ce_prefers_correct_prediction() {
        let (good, _) = label_smoothed_ce(&[5.0, 0.0, 0.0], 0, 0.075);
        let (bad, _) = label_smoothed_ce(&[0.0, 5.0, 0.0], 0, 0.075);
        assert!(good < bad);
    }

    #[test]
    fn zero_smoothing_reduces_to_plain_ce() {
        let logits = [2.0f32, 1.0, -1.0];
        let (loss, _) = label_smoothed_ce(&logits, 1, 0.0);
        let probs = softmax(&logits);
        assert!((loss + probs[1].ln()).abs() < 1e-5);
    }

    #[test]
    fn smoothing_softens_gradient_on_gold() {
        let logits = [0.0f32, 0.0, 0.0];
        let (_, g0) = label_smoothed_ce(&logits, 0, 0.0);
        let (_, g1) = label_smoothed_ce(&logits, 0, 0.3);
        assert!(
            g1[0] > g0[0],
            "smoothed target pulls less on the gold logit"
        );
    }

    #[test]
    fn infonce_loss_decreases_when_anchor_aligns_with_positive() {
        let pos = [1.0f32, 0.0];
        let neg = [0.0f32, 1.0];
        let aligned = infonce(&[1.0, 0.0], &pos, &[&neg], 0.2);
        let misaligned = infonce(&[0.0, 1.0], &pos, &[&neg], 0.2);
        assert!(aligned.loss < misaligned.loss);
    }

    #[test]
    fn infonce_gradients_match_finite_differences_on_anchor() {
        let anchor = [0.6f32, 0.8];
        let pos = [0.0f32, 1.0];
        let neg1 = [1.0f32, 0.0];
        let neg2 = [-1.0f32, 0.0];
        let g = infonce(&anchor, &pos, &[&neg1, &neg2], 0.5);
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut ap = anchor;
            ap[i] += eps;
            let mut am = anchor;
            am[i] -= eps;
            let lp = infonce(&ap, &pos, &[&neg1, &neg2], 0.5).loss;
            let lm = infonce(&am, &pos, &[&neg1, &neg2], 0.5).loss;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g.d_anchor[i]).abs() < 1e-2,
                "anchor[{i}]: fd {fd} vs {}",
                g.d_anchor[i]
            );
        }
    }

    #[test]
    fn infonce_more_negatives_raise_loss() {
        let anchor = [1.0f32, 0.0];
        let pos = [0.9f32, 0.1];
        let neg = [0.5f32, 0.5];
        let one = infonce(&anchor, &pos, &[&neg], 0.2).loss;
        let two = infonce(&anchor, &pos, &[&neg, &neg], 0.2).loss;
        assert!(two > one);
    }

    #[test]
    #[should_panic(expected = "gold index")]
    fn smoothed_ce_rejects_bad_gold() {
        label_smoothed_ce(&[0.0, 1.0], 5, 0.0);
    }

    #[test]
    fn unit_weights_match_plain_infonce() {
        let anchor = [0.6f32, 0.8];
        let pos = [0.0f32, 1.0];
        let neg = [1.0f32, 0.0];
        let plain = infonce(&anchor, &pos, &[&neg], 0.4);
        let weighted = infonce_weighted(&anchor, &pos, &[&neg], Some(&[1.0]), 0.4);
        assert!((plain.loss - weighted.loss).abs() < 1e-6);
        for i in 0..2 {
            assert!((plain.d_anchor[i] - weighted.d_anchor[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn heavier_negatives_raise_the_loss() {
        let anchor = [0.6f32, 0.8];
        let pos = [0.0f32, 1.0];
        let neg = [1.0f32, 0.0];
        let light = infonce_weighted(&anchor, &pos, &[&neg], Some(&[1.0]), 0.4);
        let heavy = infonce_weighted(&anchor, &pos, &[&neg], Some(&[4.0]), 0.4);
        assert!(heavy.loss > light.loss);
        // And the heavier negative pushes the anchor harder.
        let push_light: f32 = light.d_anchor.iter().map(|x| x.abs()).sum();
        let push_heavy: f32 = heavy.d_anchor.iter().map(|x| x.abs()).sum();
        assert!(push_heavy > push_light);
    }

    #[test]
    #[should_panic(expected = "one weight per negative")]
    fn weight_count_must_match() {
        let v = [1.0f32, 0.0];
        infonce_weighted(&v, &v, &[&v, &v], Some(&[1.0]), 0.4);
    }
}

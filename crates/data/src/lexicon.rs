//! Token pools: class topics, attribute-value markers, filler words.
//!
//! Sentence synthesis draws from three pools whose mixture determines how
//! much semantic signal a sentence carries:
//!
//! * **class topics** — every sentence about an in-class entity carries a
//!   few of its class's topic tokens, giving all methods a strong
//!   fine-grained signal (the paper reports every method can do
//!   fine-grained expansion far better than ultra-fine);
//! * **value markers** — per `(attribute, value)` token sets emitted at the
//!   attribute's `signal_rate`; the only contextual evidence of
//!   ultra-fine-grained distinctions;
//! * **filler** — a Zipf-weighted shared pool providing realistic noise.

use crate::config::WorldConfig;
use crate::names::NameFactory;
use rand::Rng;
use ultra_core::rng::UltraRng;
use ultra_core::{AttributeSchema, TokenId};
use ultra_text::Vocab;

/// Marker machinery of one attribute: a *shared* token pool with one
/// Zipf-graded distribution per value.
///
/// Real corpora rarely dedicate a word to an attribute value; instead a
/// value shifts the *distribution* over attribute-related vocabulary
/// ("northern", "province", "basin" all lean toward some provinces more
/// than others). Modelling markers as per-value distributions over a
/// shared pool reproduces that: exact-token-overlap methods see mostly
/// shared tokens and blur values together, while representation learning
/// can imprint each token's graded value profile into its embedding.
#[derive(Clone, Debug)]
pub struct AttrMarkers {
    /// The attribute's shared marker vocabulary.
    pub pool: Vec<TokenId>,
    /// Per value: pool indices ordered from most- to least-characteristic.
    value_order: Vec<Vec<u16>>,
    /// Cached top-4 tokens per value (ground-truth knowledge text, tests).
    value_top: Vec<Vec<TokenId>>,
    /// Cumulative Zipf weights over ranks (shared across values).
    rank_cdf: Vec<f64>,
}

impl AttrMarkers {
    fn build(pool: Vec<TokenId>, cardinality: usize, sharpness: f64, rng: &mut UltraRng) -> Self {
        let mut rank_cdf = Vec::with_capacity(pool.len());
        let mut acc = 0.0;
        for i in 0..pool.len() {
            acc += 1.0 / ((i + 1) as f64).powf(sharpness);
            rank_cdf.push(acc);
        }
        let mut value_order = Vec::with_capacity(cardinality);
        let mut value_top = Vec::with_capacity(cardinality);
        for _ in 0..cardinality {
            let mut order: Vec<u16> = (0..pool.len() as u16).collect();
            use rand::seq::SliceRandom;
            order.shuffle(rng);
            value_top.push(order.iter().take(4).map(|&i| pool[i as usize]).collect());
            value_order.push(order);
        }
        Self {
            pool,
            value_order,
            value_top,
            rank_cdf,
        }
    }

    /// Samples one marker token under `value`'s graded distribution.
    fn sample(&self, value: usize, rng: &mut UltraRng) -> TokenId {
        let total = *self.rank_cdf.last().expect("non-empty pool");
        let x = rng.gen_range(0.0..total);
        let rank = self.rank_cdf.partition_point(|&c| c < x);
        let rank = rank.min(self.pool.len() - 1);
        self.pool[self.value_order[value][rank] as usize]
    }

    /// The most characteristic tokens of a value (top of its distribution).
    fn top(&self, value: usize) -> &[TokenId] {
        &self.value_top[value]
    }
}

/// All token pools of a generated world.
#[derive(Clone, Debug)]
pub struct Lexicon {
    /// Zipf-weighted filler tokens.
    pub filler: Vec<TokenId>,
    /// Cumulative sampling weights aligned with `filler`.
    filler_cdf: Vec<f64>,
    /// Topic tokens per fine-grained class.
    pub class_topics: Vec<Vec<TokenId>>,
    /// Topic tokens per distractor topic group.
    pub distractor_topics: Vec<Vec<TokenId>>,
    /// Per-attribute marker machinery.
    pub markers: Vec<AttrMarkers>,
}

impl Lexicon {
    /// Number of distractor topic groups (unrelated "Wikipedia page" themes).
    pub const DISTRACTOR_GROUPS: usize = 40;

    /// Builds every pool, interning fresh pseudo-words.
    pub fn build(
        cfg: &WorldConfig,
        attributes: &[AttributeSchema],
        vocab: &mut Vocab,
        factory: &mut NameFactory,
        rng: &mut UltraRng,
    ) -> Self {
        let mut word = |vocab: &mut Vocab, rng: &mut UltraRng| {
            let w = factory.unique_word(rng);
            vocab.intern(&w)
        };

        let filler: Vec<TokenId> = (0..cfg.filler_vocab).map(|_| word(vocab, rng)).collect();
        // Zipf weights 1/(i+1)^1.1 as a cumulative distribution.
        let mut filler_cdf = Vec::with_capacity(filler.len());
        let mut acc = 0.0f64;
        for i in 0..filler.len() {
            acc += 1.0 / ((i + 1) as f64).powf(1.1);
            filler_cdf.push(acc);
        }

        let class_topics = (0..cfg.classes.len())
            .map(|_| {
                (0..cfg.topic_tokens_per_class)
                    .map(|_| word(vocab, rng))
                    .collect()
            })
            .collect();

        let distractor_topics = (0..Self::DISTRACTOR_GROUPS)
            .map(|_| {
                (0..cfg.topic_tokens_per_class)
                    .map(|_| word(vocab, rng))
                    .collect()
            })
            .collect();

        let markers = attributes
            .iter()
            .map(|schema| {
                // Pool scales with cardinality so values stay separable;
                // `marker_tokens_per_value` sets the pool-per-value ratio.
                let pool_size = (schema.cardinality() * cfg.marker_tokens_per_value / 4).max(16);
                let pool: Vec<TokenId> = (0..pool_size).map(|_| word(vocab, rng)).collect();
                AttrMarkers::build(pool, schema.cardinality(), 1.1, rng)
            })
            .collect();

        Self {
            filler,
            filler_cdf,
            class_topics,
            distractor_topics,
            markers,
        }
    }

    /// One Zipf-weighted filler token.
    pub fn sample_filler(&self, rng: &mut UltraRng) -> TokenId {
        let total = *self.filler_cdf.last().expect("non-empty filler pool");
        let x = rng.gen_range(0.0..total);
        let idx = self.filler_cdf.partition_point(|&c| c < x);
        self.filler[idx.min(self.filler.len() - 1)]
    }

    /// One topic token of a fine-grained class.
    pub fn sample_topic(&self, class_idx: usize, rng: &mut UltraRng) -> TokenId {
        let pool = &self.class_topics[class_idx];
        pool[rng.gen_range(0..pool.len())]
    }

    /// One topic token of a distractor group.
    pub fn sample_distractor_topic(&self, group: usize, rng: &mut UltraRng) -> TokenId {
        let pool = &self.distractor_topics[group % self.distractor_topics.len()];
        pool[rng.gen_range(0..pool.len())]
    }

    /// One marker token drawn from `(attribute, value)`'s graded
    /// distribution.
    pub fn sample_marker(&self, attr: usize, value: usize, rng: &mut UltraRng) -> TokenId {
        self.markers[attr].sample(value, rng)
    }

    /// The most characteristic marker tokens of `(attribute, value)` —
    /// used for ground-truth knowledge text and diagnostics.
    pub fn markers_of(&self, attr: usize, value: usize) -> &[TokenId] {
        self.markers[attr].top(value)
    }

    /// The attribute's full shared marker pool.
    pub fn marker_pool(&self, attr: usize) -> &[TokenId] {
        &self.markers[attr].pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::{derive_rng, AttributeId};

    fn build_small() -> (Lexicon, Vocab) {
        let cfg = WorldConfig::tiny();
        let attributes = vec![AttributeSchema {
            id: AttributeId::new(0),
            name: "<a>".into(),
            values: vec!["V0".into(), "V1".into(), "V2".into()],
            signal_rate: 0.5,
        }];
        let mut vocab = Vocab::new();
        let mut factory = NameFactory::new();
        let mut rng = derive_rng(1, 0);
        let lex = Lexicon::build(&cfg, &attributes, &mut vocab, &mut factory, &mut rng);
        (lex, vocab)
    }

    #[test]
    fn pools_have_requested_sizes() {
        let (lex, _) = build_small();
        let cfg = WorldConfig::tiny();
        assert_eq!(lex.filler.len(), cfg.filler_vocab);
        assert_eq!(lex.class_topics.len(), cfg.classes.len());
        assert_eq!(lex.markers.len(), 1);
        assert!(lex.markers[0].pool.len() >= 16);
    }

    #[test]
    fn pools_are_disjoint() {
        let (lex, _) = build_small();
        let mut seen = std::collections::HashSet::new();
        for t in lex
            .filler
            .iter()
            .chain(lex.class_topics.iter().flatten())
            .chain(lex.distractor_topics.iter().flatten())
            .chain(lex.markers.iter().flat_map(|m| m.pool.iter()))
        {
            assert!(seen.insert(*t), "token pools overlap at {t:?}");
        }
    }

    #[test]
    fn filler_sampling_is_zipf_skewed() {
        let (lex, _) = build_small();
        let mut rng = derive_rng(2, 0);
        let mut head = 0usize;
        let n = 3000;
        for _ in 0..n {
            let t = lex.sample_filler(&mut rng);
            if lex.filler[..lex.filler.len() / 10].contains(&t) {
                head += 1;
            }
        }
        // Top-10% of a Zipf(1.1) pool should absorb far more than 10% of draws.
        assert!(
            head as f64 / n as f64 > 0.3,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn sampled_tokens_come_from_the_right_pool() {
        let (lex, _) = build_small();
        let mut rng = derive_rng(3, 0);
        for _ in 0..50 {
            let t = lex.sample_topic(2, &mut rng);
            assert!(lex.class_topics[2].contains(&t));
            let m = lex.sample_marker(0, 1, &mut rng);
            assert!(lex.marker_pool(0).contains(&m));
        }
    }
}

//! BM25 hard-negative auditing (Section 4.2).
//!
//! The paper mines hard negative candidates with "BM25-based search":
//! distractors whose contexts score highly against in-class entity contexts
//! join the candidate vocabulary. Our generator *plants* hard negatives by
//! construction (topic-sharing distractors); this module provides the BM25
//! machinery to verify that the planted entities are indeed the ones a
//! BM25 search would mine — the audit the dataset-quality analysis and the
//! `expt_table1` statistics lean on.

use crate::world::World;
use std::collections::BTreeMap;
use ultra_core::{ClassId, EntityId, TokenId};
use ultra_text::{Bm25Index, Bm25Params};

/// A BM25 view of the corpus: one pseudo-document per entity
/// (concatenation of its sentences, mention tokens removed).
pub struct EntityBm25 {
    index: Bm25Index,
    /// Entity behind each document index.
    doc_entity: Vec<EntityId>,
    /// Per-entity pseudo-document (kept for query construction).
    docs: Vec<Vec<TokenId>>,
}

impl EntityBm25 {
    /// Builds the per-entity BM25 index.
    pub fn build(world: &World) -> Self {
        let mut docs: Vec<Vec<TokenId>> = vec![Vec::new(); world.num_entities()];
        for s in world.corpus.sentences() {
            for &(pos, e) in &s.mentions {
                let doc = &mut docs[e.index()];
                for (i, &t) in s.tokens.iter().enumerate() {
                    if i != pos {
                        doc.push(t);
                    }
                }
            }
        }
        let doc_entity: Vec<EntityId> = world.entities.iter().map(|e| e.id).collect();
        let index = Bm25Index::build(docs.iter().map(Vec::as_slice), Bm25Params::default());
        Self {
            index,
            doc_entity,
            docs,
        }
    }

    /// The `k` entities most BM25-similar to `entity`'s contexts,
    /// excluding the entity itself.
    pub fn similar_entities(&self, entity: EntityId, k: usize) -> Vec<(EntityId, f32)> {
        let query = &self.docs[entity.index()];
        self.index
            .search(query, k + 1)
            .into_iter()
            .map(|(doc, score)| (self.doc_entity[doc], score))
            .filter(|(e, _)| *e != entity)
            .take(k)
            .collect()
    }

    /// Mines hard-negative candidates for one fine-grained class: the
    /// out-of-class entities ranked highest by BM25 against a sample of
    /// class members. Returns `(entity, aggregated score)`, best first.
    pub fn mine_hard_negatives(
        &self,
        world: &World,
        class: ClassId,
        sample: usize,
        k: usize,
    ) -> Vec<(EntityId, f32)> {
        let members = &world.classes[class.index()].entities;
        let mut scores: BTreeMap<EntityId, f32> = BTreeMap::new();
        for &m in members.iter().take(sample) {
            for (e, s) in self.similar_entities(m, 50) {
                if world.entity(e).class.is_none() {
                    *scores.entry(e).or_insert(0.0) += s;
                }
            }
        }
        let mut out: Vec<(EntityId, f32)> = scores.into_iter().collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Audit: what fraction of the generator's planted hard negatives for
    /// `class` are recovered among the top BM25-mined candidates?
    pub fn audit_planted_hard_negatives(&self, world: &World, class: ClassId) -> f64 {
        let planted: Vec<EntityId> = world
            .hard_negative_ids
            .iter()
            .copied()
            .filter(|&e| {
                // A planted hard negative belongs to `class` iff its
                // sentences carry that class's topics.
                let topics = &world.lexicon.class_topics[class.index()];
                world.corpus.sentences_of(e).iter().any(|&sid| {
                    world
                        .corpus
                        .sentence(sid)
                        .tokens
                        .iter()
                        .any(|t| topics.contains(t))
                })
            })
            .collect();
        if planted.is_empty() {
            return 0.0;
        }
        let mined = self.mine_hard_negatives(world, class, 12, planted.len() * 3);
        let mined_set: std::collections::HashSet<EntityId> =
            mined.into_iter().map(|(e, _)| e).collect();
        planted.iter().filter(|e| mined_set.contains(e)).count() as f64 / planted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn setup() -> (World, EntityBm25) {
        let w = World::generate(WorldConfig::tiny()).unwrap();
        let idx = EntityBm25::build(&w);
        (w, idx)
    }

    #[test]
    fn similar_entities_prefer_classmates() {
        let (w, idx) = setup();
        let e = w.classes[1].entities[0];
        let sims = idx.similar_entities(e, 10);
        assert!(!sims.is_empty());
        let classmates = sims
            .iter()
            .filter(|(s, _)| w.entity(*s).class == w.entity(e).class)
            .count();
        assert!(
            classmates * 2 >= sims.len(),
            "classmates should dominate BM25 neighbours: {classmates}/{}",
            sims.len()
        );
    }

    #[test]
    fn mined_hard_negatives_are_out_of_class() {
        let (w, idx) = setup();
        let mined = idx.mine_hard_negatives(&w, ultra_core::ClassId::new(0), 8, 10);
        for (e, score) in &mined {
            assert!(w.entity(*e).class.is_none());
            assert!(*score > 0.0);
        }
    }

    #[test]
    fn planted_hard_negatives_are_recovered_by_bm25() {
        let (w, idx) = setup();
        let recall = idx.audit_planted_hard_negatives(&w, ultra_core::ClassId::new(0));
        assert!(
            recall >= 0.5,
            "BM25 should recover most planted hard negatives, got {recall:.2}"
        );
    }
}

//! World generation: entities, attribute assignments, and the corpus.

use crate::config::WorldConfig;
use crate::knowledge::KnowledgeBase;
use crate::lexicon::Lexicon;
use crate::lists::{self, ListDoc, ListKind};
use crate::names::NameFactory;
use crate::ultra;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use ultra_core::rng::{derive_rng, stream_label, UltraRng};
use ultra_core::{
    AttrConstraint, AttributeId, AttributeSchema, AttributeValueId, ClassId, Corpus, Entity,
    EntityId, FineClass, Query, Result, Sentence, TokenId, UltraClass, UltraError,
};
use ultra_text::Vocab;

/// A fully generated UltraWiki-style world: vocabulary `V`, corpus `D`,
/// semantic classes, queries, and side knowledge.
#[derive(Clone, Debug)]
pub struct World {
    /// Generation configuration (kept for provenance).
    pub config: WorldConfig,
    /// Interned token vocabulary.
    pub vocab: Vocab,
    /// Global attribute schemas.
    pub attributes: Vec<AttributeSchema>,
    /// Fine-grained semantic classes.
    pub classes: Vec<FineClass>,
    /// Candidate entity vocabulary `V` (in-class + distractors + hard
    /// negatives), densely indexed by [`EntityId`].
    pub entities: Vec<Entity>,
    /// The sentence corpus `D`.
    pub corpus: Corpus,
    /// Ultra-fine-grained semantic classes with their queries.
    pub ultra_classes: Vec<UltraClass>,
    /// Per-entity canonical mention token (one token per entity).
    pub mention_tokens: Vec<TokenId>,
    /// Per-entity tokenized surface form (word tokens, for the generation
    /// trie and LM streams).
    pub name_tokens: Vec<Vec<TokenId>>,
    /// Entity introductions and Wikidata-style records.
    pub knowledge: KnowledgeBase,
    /// Token pools (exposed for tests, the oracle, and knowledge text).
    pub lexicon: Lexicon,
    /// Ids of BM25-style hard-negative distractors.
    pub hard_negative_ids: Vec<EntityId>,
    /// Wikipedia-style list documents (class lists + attribute-value lists).
    pub list_docs: Vec<ListDoc>,
    /// The list separator token (a comma analogue).
    pub list_sep: TokenId,
    mention_to_entity: HashMap<TokenId, EntityId>,
}

impl World {
    /// Generates a world from the configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: WorldConfig) -> Result<Self> {
        if config.classes.is_empty() {
            return Err(UltraError::InvalidConfig("no classes configured".into()));
        }
        if config.seeds_min < 1 || config.seeds_max < config.seeds_min {
            return Err(UltraError::InvalidConfig("bad seed range".into()));
        }
        if config.n_thred < config.seeds_max + 1 {
            return Err(UltraError::InvalidConfig(
                "n_thred must exceed seeds_max so targets remain after seed removal".into(),
            ));
        }

        let mut vocab = Vocab::new();
        let mut factory = NameFactory::new();
        let mut rng_names = derive_rng(config.seed, stream_label("names"));
        let mut rng_attrs = derive_rng(config.seed, stream_label("attrs"));
        let mut rng_corpus = derive_rng(config.seed, stream_label("corpus"));

        // ── Attribute schemas ────────────────────────────────────────────
        let mut attributes = Vec::new();
        let mut class_attr_ids: Vec<Vec<AttributeId>> = Vec::new();
        for spec in &config.classes {
            let mut ids = Vec::new();
            for a in &spec.attrs {
                let id = AttributeId::from_index(attributes.len());
                let values = (0..a.cardinality)
                    .map(|_| factory.unique_value_name(&mut rng_names))
                    .collect();
                attributes.push(AttributeSchema {
                    id,
                    name: a.name.to_string(),
                    values,
                    signal_rate: a.signal_rate,
                });
                ids.push(id);
            }
            class_attr_ids.push(ids);
        }

        // ── Entities ─────────────────────────────────────────────────────
        // Per-class affix words ("Port …", "… Airport") shared across ~40%
        // of a class's entity names, so names overlap in token space as
        // real-world names do (see NameFactory::unique_affixed_name).
        let class_affixes: Vec<Vec<String>> = (0..config.classes.len())
            .map(|_| {
                (0..4)
                    .map(|_| factory.unique_value_name(&mut rng_names))
                    .collect()
            })
            .collect();
        let mut entities: Vec<Entity> = Vec::new();
        let mut classes: Vec<FineClass> = Vec::new();
        for (ci, spec) in config.classes.iter().enumerate() {
            let class_id = ClassId::from_index(ci);
            let mut members = Vec::with_capacity(spec.entities);
            // Zipf frequency weights over a shuffled rank permutation, so
            // entity id order carries no frequency information.
            let mut ranks: Vec<usize> = (0..spec.entities).collect();
            ranks.shuffle(&mut rng_attrs);
            let norm: f64 = (0..spec.entities)
                .map(|r| 1.0 / ((r + 1) as f64).powf(config.zipf_exponent))
                .sum::<f64>()
                / spec.entities as f64;
            for &rank in ranks.iter() {
                let id = EntityId::from_index(entities.len());
                let attrs = class_attr_ids[ci]
                    .iter()
                    .map(|&aid| {
                        let card = attributes[aid.index()].cardinality();
                        (
                            aid,
                            AttributeValueId(sample_zipf_value(card, &mut rng_attrs)),
                        )
                    })
                    .collect();
                let weight = (1.0 / ((rank + 1) as f64).powf(config.zipf_exponent)) / norm;
                let name = {
                    let roll: f64 = rng_names.gen();
                    let pool = &class_affixes[ci];
                    if roll < 0.2 {
                        let affix = &pool[rng_names.gen_range(0..pool.len())];
                        factory.unique_affixed_name(&mut rng_names, affix, true)
                    } else if roll < 0.4 {
                        let affix = &pool[rng_names.gen_range(0..pool.len())];
                        factory.unique_affixed_name(&mut rng_names, affix, false)
                    } else {
                        factory.unique_entity_name(&mut rng_names)
                    }
                };
                entities.push(Entity {
                    id,
                    name,
                    class: Some(class_id),
                    attrs,
                    freq_weight: weight,
                });
                members.push(id);
            }
            classes.push(FineClass {
                id: class_id,
                name: spec.name.to_string(),
                coarse: spec.coarse,
                attributes: class_attr_ids[ci].clone(),
                entities: members,
            });
        }
        // Plain distractors (each tied to a random topic group).
        let mut distractor_group: HashMap<u32, usize> = HashMap::new();
        for _ in 0..config.distractors {
            let id = EntityId::from_index(entities.len());
            distractor_group.insert(id.0, rng_attrs.gen_range(0..Lexicon::DISTRACTOR_GROUPS));
            entities.push(Entity {
                id,
                name: factory.unique_entity_name(&mut rng_names),
                class: None,
                attrs: Vec::new(),
                freq_weight: 0.4,
            });
        }
        // Hard negatives: distractors whose sentences share a class topic.
        let mut hard_negative_ids = Vec::new();
        let mut hard_neg_class: HashMap<u32, usize> = HashMap::new();
        for ci in 0..config.classes.len() {
            for _ in 0..config.hard_negatives_per_class {
                let id = EntityId::from_index(entities.len());
                hard_neg_class.insert(id.0, ci);
                distractor_group.insert(id.0, rng_attrs.gen_range(0..Lexicon::DISTRACTOR_GROUPS));
                entities.push(Entity {
                    id,
                    name: factory.unique_entity_name(&mut rng_names),
                    class: None,
                    attrs: Vec::new(),
                    freq_weight: 0.6,
                });
                hard_negative_ids.push(id);
            }
        }

        // ── Lexicon, mention tokens, name tokens ─────────────────────────
        let lexicon = Lexicon::build(
            &config,
            &attributes,
            &mut vocab,
            &mut factory,
            &mut rng_names,
        );
        let mut mention_tokens = Vec::with_capacity(entities.len());
        let mut name_tokens = Vec::with_capacity(entities.len());
        let mut mention_to_entity = HashMap::new();
        for e in &entities {
            let canonical = e.name.to_lowercase().replace(' ', "_");
            let tok = vocab.intern(&canonical);
            mention_tokens.push(tok);
            mention_to_entity.insert(tok, e.id);
            let words = ultra_text::Tokenizer::encode_interning(&mut vocab, &e.name);
            name_tokens.push(words);
        }

        // ── Corpus ───────────────────────────────────────────────────────
        let mut corpus = Corpus::with_entities(entities.len());
        for e in &entities {
            let n_sent = match (e.class, hard_neg_class.get(&e.id.0)) {
                (Some(_), _) => {
                    ((config.sentences_per_entity * e.freq_weight).round() as usize).clamp(3, 150)
                }
                (None, Some(_)) => rng_corpus.gen_range(4..=6),
                (None, None) => rng_corpus.gen_range(2..=3),
            };
            for _ in 0..n_sent {
                let sentence = synthesize_sentence(
                    e,
                    &config,
                    &attributes,
                    &lexicon,
                    mention_tokens[e.id.index()],
                    hard_neg_class.get(&e.id.0).copied(),
                    distractor_group.get(&e.id.0).copied(),
                    &mut rng_corpus,
                );
                corpus.push(sentence);
            }
        }

        // ── Knowledge ────────────────────────────────────────────────────
        let mut rng_know = derive_rng(config.seed, stream_label("knowledge"));
        let knowledge = KnowledgeBase::build(
            &entities,
            &classes,
            &attributes,
            &lexicon,
            &distractor_group,
            &hard_neg_class,
            &mut rng_know,
        );

        // ── Wikipedia-style lists ────────────────────────────────────────
        let mut rng_lists = derive_rng(config.seed, stream_label("lists"));
        let list_sep = vocab.intern(",");
        let mut groups: Vec<(ListKind, Vec<EntityId>)> = Vec::new();
        for class in &classes {
            groups.push((ListKind::Class(class.id), class.entities.clone()));
            for &aid in &class.attributes {
                let card = attributes[aid.index()].cardinality();
                for v in 0..card {
                    let val = AttributeValueId(v as u16);
                    let members: Vec<EntityId> = class
                        .entities
                        .iter()
                        .copied()
                        .filter(|&e| entities[e.index()].value_of(aid) == Some(val))
                        .collect();
                    groups.push((ListKind::Value(aid, val), members));
                }
            }
        }
        let list_docs = lists::generate_lists(&groups, &name_tokens, list_sep, &mut rng_lists);

        let mut world = World {
            config,
            vocab,
            attributes,
            classes,
            entities,
            corpus,
            ultra_classes: Vec::new(),
            mention_tokens,
            name_tokens,
            knowledge,
            lexicon,
            hard_negative_ids,
            list_docs,
            list_sep,
            mention_to_entity,
        };

        // ── Ultra-fine-grained classes + queries ─────────────────────────
        let mut rng_ultra = derive_rng(world.config.seed, stream_label("ultra"));
        world.ultra_classes = ultra::generate_ultra_classes(&world, &mut rng_ultra)?;
        Ok(world)
    }

    /// Entity lookup.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Number of candidate entities `|V|`.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Stable FNV-1a fingerprint of the generated content: entity names,
    /// corpus sentences, list documents, and query structure. Two worlds
    /// agree on this value iff they would drive every downstream consumer
    /// (encoder training, LM streams, tries, BM25) identically — the
    /// snapshot loader compares it against the value recorded at build
    /// time to detect profile/seed mismatches and generator drift.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = ultra_core::StableHasher::default();
        h.write_u64(self.vocab.len() as u64);
        h.write_u64(self.num_entities() as u64);
        h.write_u64(self.list_sep.index() as u64);
        for name in &self.name_tokens {
            h.write_u64(name.len() as u64);
            for t in name {
                h.write_u64(t.index() as u64);
            }
        }
        for s in self.corpus.sentences() {
            h.write_u64(s.tokens.len() as u64);
            for t in &s.tokens {
                h.write_u64(t.index() as u64);
            }
            for (pos, e) in &s.mentions {
                h.write_u64(*pos as u64);
                h.write_u64(e.index() as u64);
            }
        }
        for d in &self.list_docs {
            h.write_u64(d.tokens.len() as u64);
            for t in &d.tokens {
                h.write_u64(t.index() as u64);
            }
        }
        h.write_u64(self.ultra_classes.len() as u64);
        for u in &self.ultra_classes {
            h.write_u64(u.queries.len() as u64);
            for q in &u.queries {
                for e in &q.pos_seeds {
                    h.write_u64(e.index() as u64);
                }
                h.write_u64(u64::MAX); // seed-set delimiter
                for e in &q.neg_seeds {
                    h.write_u64(e.index() as u64);
                }
            }
        }
        h.finish()
    }

    /// Entity behind a canonical mention token, if any.
    pub fn entity_of_mention(&self, token: TokenId) -> Option<EntityId> {
        self.mention_to_entity.get(&token).copied()
    }

    /// Finds an entity by (case-insensitive) surface form.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        let lower = name.to_lowercase();
        self.entities
            .iter()
            .find(|e| e.name.to_lowercase() == lower)
            .map(|e| e.id)
    }

    /// Fine-grained class of an entity, if in-class.
    pub fn fine_class_of(&self, e: EntityId) -> Option<ClassId> {
        self.entity(e).class
    }

    /// All `(ultra class, query)` pairs, class order then query order.
    pub fn queries(&self) -> impl Iterator<Item = (&UltraClass, &Query)> {
        self.ultra_classes
            .iter()
            .flat_map(|u| u.queries.iter().map(move |q| (u, q)))
    }

    /// Entities of an ultra class's fine-grained class that satisfy
    /// `constraint`. Used by tests and the stats module.
    pub fn satisfying(&self, fine: ClassId, constraint: &AttrConstraint) -> Vec<EntityId> {
        self.classes[fine.index()]
            .entities
            .iter()
            .copied()
            .filter(|&e| self.entity(e).satisfies(constraint))
            .collect()
    }

    /// Corpus sentences with mention tokens expanded into name-word tokens —
    /// the training stream for the generative LM, whose decoding must walk
    /// multi-token entity names (Figure 6).
    pub fn lm_sentences(&self) -> Vec<Vec<TokenId>> {
        self.corpus
            .sentences()
            .iter()
            .map(|s| self.expand_mentions(s))
            .collect()
    }

    /// Human-readable description of an ultra class with attribute and
    /// value names resolved, e.g.
    /// `"China cities [<province>=Kronai | NOT <prefecture>=Shuolin]"`.
    pub fn describe_ultra(&self, u: &UltraClass) -> String {
        let fmt = |c: &AttrConstraint| {
            c.required
                .iter()
                .map(|&(a, v)| {
                    let schema = &self.attributes[a.index()];
                    format!("{}={}", schema.name, schema.value_name(v))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{} [{} | NOT {}]",
            self.classes[u.fine.index()].name,
            fmt(&u.pos),
            fmt(&u.neg)
        )
    }

    /// The generative LM's *base* pre-training documents: all class-level
    /// lists plus the even copies of the attribute-value lists — the share
    /// of world knowledge a general LLM already holds before seeing corpus
    /// `D` (LLaMA's pre-training corpus contains Wikipedia, so most
    /// attribute facts are not new to it).
    pub fn base_lm_docs(&self) -> Vec<Vec<TokenId>> {
        self.list_docs
            .iter()
            .filter(|d| match d.kind {
                ListKind::Class(_) => true,
                ListKind::Value(_, _) => d.copy < 4,
            })
            .map(|d| d.tokens.clone())
            .collect()
    }

    /// The *further pre-training* documents — corpus `D`: entity-labelled
    /// sentences (mentions expanded) plus the odd copies of the
    /// attribute-value lists. Removing these is the Table 3
    /// "- Further pretrain" ablation, which therefore weakens (but does not
    /// erase) the LM's ultra-fine-grained knowledge.
    pub fn further_pretrain_docs(&self) -> Vec<Vec<TokenId>> {
        let mut docs = self.lm_sentences();
        docs.extend(
            self.list_docs
                .iter()
                .filter(|d| matches!(d.kind, ListKind::Value(_, _)) && d.copy >= 4)
                .map(|d| d.tokens.clone()),
        );
        docs
    }

    /// Expands one sentence's mention tokens into entity name words.
    pub fn expand_mentions(&self, s: &Sentence) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(s.tokens.len() + 2);
        for (i, &tok) in s.tokens.iter().enumerate() {
            if let Some(e) = s.mentions.iter().find(|(p, _)| *p == i).map(|(_, e)| *e) {
                out.extend_from_slice(&self.name_tokens[e.index()]);
            } else {
                out.push(tok);
            }
        }
        out
    }
}

/// Zipf-skewed value pick: low-index values are more common, mirroring
/// real attribute distributions (big provinces have more cities).
fn sample_zipf_value(cardinality: usize, rng: &mut UltraRng) -> u16 {
    let weights: Vec<f64> = (0..cardinality)
        .map(|i| 1.0 / ((i + 1) as f64).powf(0.8))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i as u16;
        }
        x -= w;
    }
    (cardinality - 1) as u16
}

/// Synthesizes one sentence for `entity`.
#[allow(clippy::too_many_arguments)]
fn synthesize_sentence(
    entity: &Entity,
    cfg: &WorldConfig,
    attributes: &[AttributeSchema],
    lexicon: &Lexicon,
    mention: TokenId,
    hard_neg_class: Option<usize>,
    distractor_group: Option<usize>,
    rng: &mut UltraRng,
) -> Sentence {
    let len = (cfg.sentence_len as i64 + rng.gen_range(-3..=4)).max(6) as usize;
    let mut tokens: Vec<TokenId> = Vec::with_capacity(len);

    match (entity.class, hard_neg_class) {
        (Some(class), _) => {
            // In-class entity: topics + attribute markers + filler.
            let class_idx = class.index();
            for _ in 0..rng.gen_range(2..=3) {
                tokens.push(lexicon.sample_topic(class_idx, rng));
            }
            for &(aid, val) in &entity.attrs {
                let schema = &attributes[aid.index()];
                if rng.gen_bool(schema.signal_rate) {
                    let emitted = if rng.gen_bool(cfg.marker_noise) {
                        // Annotation/world noise: marker of a random value.
                        AttributeValueId(rng.gen_range(0..schema.cardinality()) as u16)
                    } else {
                        val
                    };
                    // A signalled attribute contributes two marker tokens —
                    // real sentences rarely name an attribute value with a
                    // single isolated word ("…in northern Henan province…").
                    tokens.push(lexicon.sample_marker(aid.index(), emitted.index(), rng));
                    tokens.push(lexicon.sample_marker(aid.index(), emitted.index(), rng));
                }
            }
        }
        (None, Some(class_idx)) => {
            // Hard negative: shares the class topic (BM25-similar) but
            // carries no attribute markers.
            for _ in 0..rng.gen_range(2..=3) {
                tokens.push(lexicon.sample_topic(class_idx, rng));
            }
            let group = distractor_group.unwrap_or(0);
            tokens.push(lexicon.sample_distractor_topic(group, rng));
        }
        (None, None) => {
            let group = distractor_group.unwrap_or(0);
            for _ in 0..rng.gen_range(2..=3) {
                tokens.push(lexicon.sample_distractor_topic(group, rng));
            }
        }
    }

    while tokens.len() + 1 < len {
        tokens.push(lexicon.sample_filler(rng));
    }
    // Place the mention at a random position.
    let pos = rng.gen_range(0..=tokens.len());
    tokens.insert(pos, mention);
    Sentence {
        tokens,
        mentions: vec![(pos, entity.id)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny()).expect("tiny world generates")
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.corpus.len(), b.corpus.len());
        assert_eq!(
            a.entities.iter().map(|e| &e.name).collect::<Vec<_>>(),
            b.entities.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
        assert_eq!(a.ultra_classes.len(), b.ultra_classes.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_world();
        let b = World::generate(WorldConfig::tiny().with_seed(7)).unwrap();
        assert_ne!(
            a.entities.iter().map(|e| &e.name).collect::<Vec<_>>(),
            b.entities.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_in_class_entity_has_sentences_and_attrs() {
        let w = tiny_world();
        for class in &w.classes {
            for &e in &class.entities {
                assert!(w.corpus.mention_count(e) >= 3, "entity {e:?} underspoken");
                let ent = w.entity(e);
                assert_eq!(ent.attrs.len(), class.attributes.len());
            }
        }
    }

    #[test]
    fn mention_tokens_round_trip() {
        let w = tiny_world();
        for e in &w.entities {
            let tok = w.mention_tokens[e.id.index()];
            assert_eq!(w.entity_of_mention(tok), Some(e.id));
        }
    }

    #[test]
    fn sentences_reference_their_entity() {
        let w = tiny_world();
        let e = w.classes[0].entities[0];
        for &sid in w.corpus.sentences_of(e) {
            let s = w.corpus.sentence(sid);
            assert!(s.mentions.iter().any(|(_, me)| *me == e));
            let (pos, _) = s.mentions[0];
            assert_eq!(s.tokens[pos], w.mention_tokens[e.index()]);
        }
    }

    #[test]
    fn in_class_sentences_carry_topic_tokens() {
        let w = tiny_world();
        let class = &w.classes[1];
        let e = class.entities[0];
        let topic = &w.lexicon.class_topics[1];
        let mut hits = 0;
        for &sid in w.corpus.sentences_of(e) {
            let s = w.corpus.sentence(sid);
            if s.tokens.iter().any(|t| topic.contains(t)) {
                hits += 1;
            }
        }
        assert_eq!(hits, w.corpus.mention_count(e), "every sentence has topics");
    }

    #[test]
    fn attribute_markers_appear_at_roughly_signal_rate() {
        let w = World::generate(WorldConfig::small()).unwrap();
        let class = &w.classes[0];
        let aid = class.attributes[0];
        let rate = w.attributes[aid.index()].signal_rate;
        let mut with_marker = 0usize;
        let mut total = 0usize;
        let pool = w.lexicon.marker_pool(aid.index());
        for &e in &class.entities {
            for &sid in w.corpus.sentences_of(e) {
                total += 1;
                if w.corpus
                    .sentence(sid)
                    .tokens
                    .iter()
                    .any(|t| pool.contains(t))
                {
                    with_marker += 1;
                }
            }
        }
        let observed = with_marker as f64 / total as f64;
        assert!(
            (observed - rate).abs() < 0.08,
            "observed marker rate {observed:.3} vs configured {rate:.3}"
        );
    }

    #[test]
    fn hard_negatives_share_class_topics() {
        let w = tiny_world();
        assert!(!w.hard_negative_ids.is_empty());
        let all_topics: Vec<&Vec<TokenId>> = w.lexicon.class_topics.iter().collect();
        let hn = w.hard_negative_ids[0];
        let mut topic_hits = 0;
        for &sid in w.corpus.sentences_of(hn) {
            let s = w.corpus.sentence(sid);
            if s.tokens
                .iter()
                .any(|t| all_topics.iter().any(|pool| pool.contains(t)))
            {
                topic_hits += 1;
            }
        }
        assert!(topic_hits > 0, "hard negatives look like class members");
    }

    #[test]
    fn lm_sentences_expand_mentions_into_name_words() {
        let w = tiny_world();
        // Pick a multi-word entity so expansion visibly differs from the
        // canonical mention token (single-word names expand to themselves).
        let e = w
            .entities
            .iter()
            .find(|e| e.name.contains(' '))
            .expect("a multi-word entity exists")
            .id;
        let sid = w.corpus.sentences_of(e)[0];
        let s = w.corpus.sentence(sid);
        let expanded = w.expand_mentions(s);
        let name = &w.name_tokens[e.index()];
        assert!(name.len() >= 2);
        // The expansion contains the name words contiguously.
        let found = expanded
            .windows(name.len())
            .any(|win| win == name.as_slice());
        assert!(found);
        // And no canonical mention token survives.
        assert!(!expanded.contains(&w.mention_tokens[e.index()]));
        assert_eq!(expanded.len(), s.tokens.len() + name.len() - 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = WorldConfig::tiny();
        cfg.classes.clear();
        assert!(World::generate(cfg).is_err());
        let mut cfg2 = WorldConfig::tiny();
        cfg2.n_thred = 3; // < seeds_max + 1
        assert!(World::generate(cfg2).is_err());
    }

    #[test]
    fn entity_by_name_is_case_insensitive() {
        let w = tiny_world();
        let e = &w.entities[0];
        assert_eq!(w.entity_by_name(&e.name.to_uppercase()), Some(e.id));
        assert_eq!(w.entity_by_name("No Such Entity Xyz"), None);
    }
}

//! Deterministic pseudo-natural name and word synthesis.
//!
//! Entities, topic words, attribute-value names and filler words all need
//! unique, pronounceable surface forms. We compose them from syllables so
//! that (a) forms are readable in case studies, (b) the generator never
//! collides (a global used-set enforces uniqueness), and (c) everything is
//! reproducible from the world seed.

use rand::Rng;
use std::collections::HashSet;
use ultra_core::rng::UltraRng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr",
    "qu", "r", "s", "sh", "st", "t", "tr", "v", "w", "x", "y", "z", "zh",
];
const NUCLEI: &[&str] = &[
    "a", "e", "i", "o", "u", "ai", "ao", "ei", "ia", "ou", "ua", "uo",
];
const CODAS: &[&str] = &["", "", "", "n", "ng", "r", "s", "l", "k", "m"];

/// Uniqueness-enforcing name factory.
#[derive(Debug, Default)]
pub struct NameFactory {
    used: HashSet<String>,
}

impl NameFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// One random syllable.
    fn syllable(rng: &mut UltraRng) -> String {
        let mut s = String::new();
        s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        s.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        s.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        s
    }

    /// One lowercase pseudo-word of `syllables` syllables.
    fn word(rng: &mut UltraRng, syllables: usize) -> String {
        (0..syllables).map(|_| Self::syllable(rng)).collect()
    }

    /// A unique lowercase word (2–3 syllables) — topic/marker/filler tokens.
    pub fn unique_word(&mut self, rng: &mut UltraRng) -> String {
        loop {
            let n = rng.gen_range(2..=3);
            let w = Self::word(rng, n);
            if self.used.insert(w.clone()) {
                return w;
            }
        }
    }

    /// A unique capitalized entity name of 1–2 words, 2–3 syllables each,
    /// e.g. `"Xinyang"` or `"Graulan Shosei"`.
    pub fn unique_entity_name(&mut self, rng: &mut UltraRng) -> String {
        loop {
            let words = rng.gen_range(1..=2);
            let name = (0..words)
                .map(|_| {
                    let n = rng.gen_range(2..=3);
                    capitalize(&Self::word(rng, n))
                })
                .collect::<Vec<_>>()
                .join(" ");
            if self.used.insert(name.to_lowercase()) {
                return name;
            }
        }
    }

    /// A unique capitalized name built around a shared affix word, e.g.
    /// `"Port Alenzhu"` or `"Kronai Airport"`. Shared affixes give entity
    /// names overlapping token prefixes/suffixes — the structure that makes
    /// the candidate prefix tree (paper Figure 6) non-trivial and lets
    /// unconstrained decoding recombine words into *invalid* names.
    pub fn unique_affixed_name(
        &mut self,
        rng: &mut UltraRng,
        affix: &str,
        affix_is_prefix: bool,
    ) -> String {
        loop {
            let n = rng.gen_range(2..=3);
            let stem = capitalize(&Self::word(rng, n));
            let name = if affix_is_prefix {
                format!("{affix} {stem}")
            } else {
                format!("{stem} {affix}")
            };
            if self.used.insert(name.to_lowercase()) {
                return name;
            }
        }
    }

    /// A unique capitalized value name, e.g. `"Kronai"` for a province.
    pub fn unique_value_name(&mut self, rng: &mut UltraRng) -> String {
        loop {
            let n = rng.gen_range(2..=3);
            let name = capitalize(&Self::word(rng, n));
            if self.used.insert(name.to_lowercase()) {
                return name;
            }
        }
    }

    /// Number of names handed out so far.
    pub fn issued(&self) -> usize {
        self.used.len()
    }
}

fn capitalize(w: &str) -> String {
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    #[test]
    fn names_are_unique_across_kinds() {
        let mut rng = derive_rng(1, 0);
        let mut f = NameFactory::new();
        let mut all = HashSet::new();
        for _ in 0..200 {
            assert!(all.insert(f.unique_word(&mut rng)));
            assert!(all.insert(f.unique_entity_name(&mut rng).to_lowercase()));
        }
        assert_eq!(f.issued(), 400);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = derive_rng(9, 1);
        let mut r2 = derive_rng(9, 1);
        let mut f1 = NameFactory::new();
        let mut f2 = NameFactory::new();
        for _ in 0..50 {
            assert_eq!(
                f1.unique_entity_name(&mut r1),
                f2.unique_entity_name(&mut r2)
            );
        }
    }

    #[test]
    fn entity_names_are_capitalized() {
        let mut rng = derive_rng(2, 0);
        let mut f = NameFactory::new();
        for _ in 0..20 {
            let n = f.unique_entity_name(&mut rng);
            assert!(n.chars().next().unwrap().is_uppercase(), "{n}");
        }
    }

    #[test]
    fn words_are_lowercase_alphabetic() {
        let mut rng = derive_rng(3, 0);
        let mut f = NameFactory::new();
        for _ in 0..50 {
            let w = f.unique_word(&mut rng);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }
}

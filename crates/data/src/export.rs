//! Dataset export — publishing the generated world as files, the way the
//! paper releases UltraWiki on GitHub.
//!
//! The export is human-readable and complete enough to re-evaluate any
//! external method against the generated benchmark: entity records with
//! attribute annotations, ultra-fine-grained classes with their queries and
//! target sets, and the corpus rendered back to text.

use crate::world::World;
use serde::Serialize;
use std::io::Write;
use std::path::Path;
use ultra_core::Result;
use ultra_core::UltraError;

/// One exported entity record.
#[derive(Serialize)]
struct EntityRecord {
    id: u32,
    name: String,
    class: Option<String>,
    attributes: Vec<(String, String)>,
    sentence_count: usize,
}

/// One exported query record.
#[derive(Serialize)]
struct QueryRecord {
    ultra_class: u32,
    description: String,
    pos_seeds: Vec<String>,
    neg_seeds: Vec<String>,
}

/// One exported ultra-class record.
#[derive(Serialize)]
struct UltraRecord {
    id: u32,
    fine_class: String,
    description: String,
    pos_targets: Vec<String>,
    neg_targets: Vec<String>,
}

/// Writes `entities.json`, `classes.json`, `queries.json` and `corpus.txt`
/// into `dir` (created if missing).
pub fn export_dataset(world: &World, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| UltraError::InvalidConfig(format!("cannot create {dir:?}: {e}")))?;
    let write_json = |name: &str, value: &dyn erased_ser::Ser| -> Result<()> {
        let path = dir.join(name);
        let file = std::fs::File::create(&path)
            .map_err(|e| UltraError::InvalidConfig(format!("cannot create {path:?}: {e}")))?;
        value
            .write_to(Box::new(std::io::BufWriter::new(file)))
            .map_err(|e| UltraError::InvalidConfig(format!("cannot write {path:?}: {e}")))
    };

    // Entities.
    let entities: Vec<EntityRecord> = world
        .entities
        .iter()
        .map(|e| EntityRecord {
            id: e.id.0,
            name: e.name.clone(),
            class: e.class.map(|c| world.classes[c.index()].name.clone()),
            attributes: e
                .attrs
                .iter()
                .map(|&(a, v)| {
                    let schema = &world.attributes[a.index()];
                    (schema.name.clone(), schema.value_name(v).to_string())
                })
                .collect(),
            sentence_count: world.corpus.mention_count(e.id),
        })
        .collect();
    write_json("entities.json", &entities)?;

    // Ultra classes with target sets.
    let name_of = |e: ultra_core::EntityId| world.entity(e).name.clone();
    let ultra: Vec<UltraRecord> = world
        .ultra_classes
        .iter()
        .map(|u| UltraRecord {
            id: u.id.0,
            fine_class: world.classes[u.fine.index()].name.clone(),
            description: world.describe_ultra(u),
            pos_targets: u.pos_targets.iter().map(|&e| name_of(e)).collect(),
            neg_targets: u.neg_targets.iter().map(|&e| name_of(e)).collect(),
        })
        .collect();
    write_json("classes.json", &ultra)?;

    // Queries.
    let queries: Vec<QueryRecord> = world
        .queries()
        .map(|(u, q)| QueryRecord {
            ultra_class: u.id.0,
            description: world.describe_ultra(u),
            pos_seeds: q.pos_seeds.iter().map(|&e| name_of(e)).collect(),
            neg_seeds: q.neg_seeds.iter().map(|&e| name_of(e)).collect(),
        })
        .collect();
    write_json("queries.json", &queries)?;

    // Corpus, rendered back to text (one sentence per line, entity mentions
    // expanded to surface forms).
    let path = dir.join("corpus.txt");
    let file = std::fs::File::create(&path)
        .map_err(|e| UltraError::InvalidConfig(format!("cannot create {path:?}: {e}")))?;
    let mut out = std::io::BufWriter::new(file);
    for s in world.corpus.sentences() {
        let tokens = world.expand_mentions(s);
        let line = world.vocab.render(&tokens);
        writeln!(out, "{line}")
            .map_err(|e| UltraError::InvalidConfig(format!("cannot write corpus: {e}")))?;
    }
    Ok(())
}

/// Tiny object-safe serialization shim so `export_dataset` can stream
/// different record types through one writer helper.
mod erased_ser {
    pub trait Ser {
        fn write_to(
            &self,
            w: Box<dyn std::io::Write>,
        ) -> std::result::Result<(), serde_json::Error>;
    }

    impl<T: serde::Serialize> Ser for T {
        fn write_to(
            &self,
            w: Box<dyn std::io::Write>,
        ) -> std::result::Result<(), serde_json::Error> {
            serde_json::to_writer_pretty(w, self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn export_writes_all_files_with_consistent_counts() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let dir = std::env::temp_dir().join(format!("ultrawiki-export-{}", std::process::id()));
        export_dataset(&world, &dir).unwrap();
        let entities: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("entities.json")).unwrap())
                .unwrap();
        assert_eq!(entities.as_array().unwrap().len(), world.num_entities());
        let queries: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("queries.json")).unwrap())
                .unwrap();
        let total_queries: usize = world.ultra_classes.iter().map(|u| u.queries.len()).sum();
        assert_eq!(queries.as_array().unwrap().len(), total_queries);
        let corpus = std::fs::read_to_string(dir.join("corpus.txt")).unwrap();
        assert_eq!(corpus.lines().count(), world.corpus.len());
        // Spot-check a rendered sentence contains a known entity name word.
        let first = &world.entities[0];
        assert!(
            corpus.contains(
                &first
                    .name
                    .to_lowercase()
                    .split(' ')
                    .next()
                    .unwrap()
                    .to_string()
            ),
            "corpus should mention entity surface forms"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The simulated knowledge-LLM ("GPT-4") oracle.
//!
//! The paper uses GPT-4 twice: as a *baseline expander* (prompted with
//! positive and negative seeds) and as an *annotator* that classifies
//! candidate entities for contrastive-pair mining (Appendix A, Table 13).
//! This oracle simulates the three behaviours the paper's analysis depends
//! on (Section 6.2 point 6):
//!
//! 1. **broad but frequency-skewed knowledge** — the oracle knows an entity
//!    with probability growing in its corpus frequency, so long-tail classes
//!    (monuments, phone brands) have spotty coverage;
//! 2. **imperfect attribute beliefs** — known entities' attribute values are
//!    right only with `attr_accuracy`, which injects exactly the annotation
//!    noise Table 7 discusses;
//! 3. **hallucination** — generated rankings intersperse fabricated entity
//!    names that exist nowhere in the candidate vocabulary.

use crate::names::NameFactory;
use crate::world::World;
use rand::Rng;
use std::collections::{BTreeMap, HashSet};
use ultra_core::rng::{derive_rng, stream_label, UltraRng};
use ultra_core::{AttributeId, AttributeValueId, ClassId, EntityId};

/// Oracle noise parameters.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Base probability of knowing an entity at all.
    pub base_know: f64,
    /// Additional knowledge probability granted to the most frequent
    /// entities (scaled by normalized log frequency).
    pub know_slope: f64,
    /// Probability a known entity's believed attribute value is correct.
    pub attr_accuracy: f64,
    /// Probability a known entity's believed fine class is correct.
    pub class_accuracy: f64,
    /// Probability of emitting a fabricated entity at each output rank.
    pub hallucination_rate: f64,
    /// Probability of flipping an annotation decision (labelling noise).
    pub label_noise: f64,
    /// Oracle RNG seed (independent of the world seed).
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            base_know: 0.30,
            know_slope: 0.42,
            attr_accuracy: 0.87,
            class_accuracy: 0.95,
            hallucination_rate: 0.09,
            label_noise: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

/// One entry of a generative oracle ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleEntry {
    /// A real candidate entity.
    Known(EntityId),
    /// A fabricated surface form not present in the vocabulary.
    Hallucinated(String),
}

/// The simulated GPT-4.
#[derive(Clone, Debug)]
pub struct KnowledgeOracle {
    cfg: OracleConfig,
    known: Vec<bool>,
    believed_class: Vec<Option<ClassId>>,
    believed_attrs: Vec<Vec<(AttributeId, AttributeValueId)>>,
    class_members: Vec<Vec<EntityId>>,
    real_names: HashSet<String>,
}

impl KnowledgeOracle {
    /// Derives the oracle's full (noisy) belief state from a world.
    pub fn new(world: &World, cfg: OracleConfig) -> Self {
        let mut rng = derive_rng(cfg.seed, stream_label("oracle-beliefs"));
        let max_freq = world
            .entities
            .iter()
            .map(|e| world.corpus.mention_count(e.id))
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let mut known = Vec::with_capacity(world.num_entities());
        let mut believed_class = Vec::with_capacity(world.num_entities());
        let mut believed_attrs = Vec::with_capacity(world.num_entities());
        let num_classes = world.classes.len();
        for e in &world.entities {
            let freq = world.corpus.mention_count(e.id) as f64;
            let p = (cfg.base_know + cfg.know_slope * ((1.0 + freq).ln() / (1.0 + max_freq).ln()))
                .clamp(0.0, 0.98);
            let k = rng.gen_bool(p);
            known.push(k);
            if !k {
                believed_class.push(None);
                believed_attrs.push(Vec::new());
                continue;
            }
            let bc = match e.class {
                Some(c) if rng.gen_bool(cfg.class_accuracy) => Some(c),
                Some(_) => Some(ClassId::from_index(rng.gen_range(0..num_classes))),
                None => None,
            };
            believed_class.push(bc);
            let attrs = e
                .attrs
                .iter()
                .map(|&(aid, val)| {
                    if rng.gen_bool(cfg.attr_accuracy) {
                        (aid, val)
                    } else {
                        let card = world.attributes[aid.index()].cardinality();
                        (aid, AttributeValueId(rng.gen_range(0..card) as u16))
                    }
                })
                .collect();
            believed_attrs.push(attrs);
        }
        // Membership index by *believed* class.
        let mut class_members = vec![Vec::new(); num_classes];
        for (i, bc) in believed_class.iter().enumerate() {
            if let Some(c) = bc {
                class_members[c.index()].push(EntityId::from_index(i));
            }
        }
        let real_names = world
            .entities
            .iter()
            .map(|e| e.name.to_lowercase())
            .collect();
        Self {
            cfg,
            known,
            believed_class,
            believed_attrs,
            class_members,
            real_names,
        }
    }

    /// Whether the oracle knows the entity at all.
    #[inline]
    pub fn knows(&self, e: EntityId) -> bool {
        self.known[e.index()]
    }

    /// The oracle's believed value for `(entity, attribute)`, if known.
    pub fn believed_value(&self, e: EntityId, attr: AttributeId) -> Option<AttributeValueId> {
        self.believed_attrs[e.index()]
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| *v)
    }

    /// Infers the attribute values shared by a seed set, from the oracle's
    /// *beliefs*: for each attribute, the modal believed value if at least
    /// two thirds of the known seeds agree on it.
    pub fn infer_shared_values(&self, seeds: &[EntityId]) -> Vec<(AttributeId, AttributeValueId)> {
        let mut counts: BTreeMap<(AttributeId, AttributeValueId), usize> = BTreeMap::new();
        let mut known_seeds = 0usize;
        for &s in seeds {
            if !self.knows(s) {
                continue;
            }
            known_seeds += 1;
            for &(a, v) in &self.believed_attrs[s.index()] {
                *counts.entry((a, v)).or_insert(0) += 1;
            }
        }
        if known_seeds == 0 {
            return Vec::new();
        }
        let threshold = (2 * known_seeds).div_ceil(3);
        let mut best: BTreeMap<AttributeId, (AttributeValueId, usize)> = BTreeMap::new();
        for ((a, v), c) in counts {
            let slot = best.entry(a).or_insert((v, 0));
            if c > slot.1 {
                *slot = (v, c);
            }
        }
        let mut shared: Vec<_> = best
            .into_iter()
            .filter(|(_, (_, c))| *c >= threshold)
            .map(|(a, (v, _))| (a, v))
            .collect();
        shared.sort_unstable_by_key(|(a, _)| *a);
        shared
    }

    /// The believed fine class of the majority of known seeds.
    pub fn infer_class(&self, seeds: &[EntityId]) -> Option<ClassId> {
        let mut counts: BTreeMap<ClassId, usize> = BTreeMap::new();
        for &s in seeds {
            if let Some(c) = self.believed_class[s.index()] {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        counts.into_iter().max_by_key(|(_, c)| *c).map(|(c, _)| c)
    }

    /// Annotator mode (Table 13): for each candidate, decides whether it is
    /// consistent with the seed set's (inferred) shared attribute values.
    /// Unknown candidates are labelled inconsistent; every decision flips
    /// with `label_noise`.
    pub fn classify_consistent(
        &self,
        seeds: &[EntityId],
        candidates: &[EntityId],
        rng: &mut UltraRng,
    ) -> Vec<bool> {
        let shared = self.infer_shared_values(seeds);
        candidates
            .iter()
            .map(|&c| {
                let verdict = self.knows(c)
                    && !shared.is_empty()
                    && shared
                        .iter()
                        .all(|&(a, v)| self.believed_value(c, a) == Some(v));
                if rng.gen_bool(self.cfg.label_noise) {
                    !verdict
                } else {
                    verdict
                }
            })
            .collect()
    }

    /// Baseline-expander mode: ranks entities the oracle believes match the
    /// positive seeds' shared values while avoiding the negative seeds'
    /// shared values, interspersing hallucinated names.
    pub fn expand(
        &self,
        pos_seeds: &[EntityId],
        neg_seeds: &[EntityId],
        k: usize,
        rng: &mut UltraRng,
    ) -> Vec<OracleEntry> {
        let Some(class) = self.infer_class(pos_seeds) else {
            return self.hallucination_filler(k, rng);
        };
        let pos_shared = self.infer_shared_values(pos_seeds);
        let neg_shared = self.infer_shared_values(neg_seeds);
        let mut scored: Vec<(EntityId, f64)> = self.class_members[class.index()]
            .iter()
            .filter(|e| !pos_seeds.contains(e) && !neg_seeds.contains(e))
            .map(|&e| {
                let mut score = 0.0f64;
                for &(a, v) in &pos_shared {
                    if self.believed_value(e, a) == Some(v) {
                        score += 1.0;
                    }
                }
                for &(a, v) in &neg_shared {
                    if self.believed_value(e, a) == Some(v) {
                        score -= 1.2;
                    }
                }
                score += rng.gen_range(0.0..0.25); // sampling temperature
                (e, score)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut factory = NameFactory::new();
        let mut out = Vec::with_capacity(k);
        let mut iter = scored.into_iter();
        while out.len() < k {
            if rng.gen_bool(self.cfg.hallucination_rate) {
                out.push(OracleEntry::Hallucinated(
                    self.fresh_fake_name(&mut factory, rng),
                ));
                continue;
            }
            match iter.next() {
                Some((e, _)) => out.push(OracleEntry::Known(e)),
                None => {
                    out.push(OracleEntry::Hallucinated(
                        self.fresh_fake_name(&mut factory, rng),
                    ));
                }
            }
        }
        out
    }

    fn hallucination_filler(&self, k: usize, rng: &mut UltraRng) -> Vec<OracleEntry> {
        let mut factory = NameFactory::new();
        (0..k)
            .map(|_| OracleEntry::Hallucinated(self.fresh_fake_name(&mut factory, rng)))
            .collect()
    }

    fn fresh_fake_name(&self, factory: &mut NameFactory, rng: &mut UltraRng) -> String {
        loop {
            let name = factory.unique_entity_name(rng);
            if !self.real_names.contains(&name.to_lowercase()) {
                return name;
            }
        }
    }

    /// Converts an oracle ranking into `(entity, score)` pairs where
    /// hallucinations are assigned fresh out-of-vocabulary ids starting at
    /// `vocab_size`. Metrics treat them as irrelevant entries occupying
    /// their rank — faithful to the paper's observation that hallucinations
    /// cannot be post-filtered away.
    pub fn to_ranked_entries(entries: &[OracleEntry], vocab_size: usize) -> Vec<(EntityId, f32)> {
        let mut next_fake = vocab_size as u32;
        entries
            .iter()
            .enumerate()
            .map(|(rank, entry)| {
                let id = match entry {
                    OracleEntry::Known(e) => *e,
                    OracleEntry::Hallucinated(_) => {
                        let id = EntityId::new(next_fake);
                        next_fake += 1;
                        id
                    }
                };
                (id, 1.0 - rank as f32 / entries.len().max(1) as f32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn setup() -> (World, KnowledgeOracle) {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
        (world, oracle)
    }

    #[test]
    fn oracle_knows_frequent_entities_more_often() {
        let (world, oracle) = setup();
        let mut freq_known = (0usize, 0usize);
        let mut rare_known = (0usize, 0usize);
        for e in &world.entities {
            if e.class.is_none() {
                continue;
            }
            let freq = world.corpus.mention_count(e.id);
            let bucket = if freq >= 15 {
                &mut freq_known
            } else if freq <= 4 {
                &mut rare_known
            } else {
                continue;
            };
            bucket.1 += 1;
            if oracle.knows(e.id) {
                bucket.0 += 1;
            }
        }
        if freq_known.1 > 10 && rare_known.1 > 10 {
            let hi = freq_known.0 as f64 / freq_known.1 as f64;
            let lo = rare_known.0 as f64 / rare_known.1 as f64;
            assert!(hi > lo, "frequent {hi:.2} should beat rare {lo:.2}");
        }
    }

    #[test]
    fn infer_shared_values_finds_true_common_attribute() {
        let (world, oracle) = setup();
        // Take an ultra class; its positive seeds share the pos values.
        let u = &world.ultra_classes[0];
        let q = &u.queries[0];
        let shared = oracle.infer_shared_values(&q.pos_seeds);
        // The oracle's inference is noisy but should usually include the
        // defining positive attribute. Weak assertion: inference is subset
        // of attributes of the fine class.
        let class_attrs = &world.classes[u.fine.index()].attributes;
        for (a, _) in shared {
            assert!(class_attrs.contains(&a));
        }
    }

    #[test]
    fn classify_consistent_is_mostly_right_on_clean_entities() {
        let (world, oracle) = setup();
        let mut rng = derive_rng(5, 0);
        let u = &world.ultra_classes[0];
        let q = &u.queries[0];
        let pos: Vec<EntityId> = u
            .pos_targets
            .iter()
            .filter(|e| !q.is_seed(**e))
            .copied()
            .collect();
        let neg: Vec<EntityId> = u.neg_targets.to_vec();
        let pos_labels = oracle.classify_consistent(&q.pos_seeds, &pos, &mut rng);
        let neg_labels = oracle.classify_consistent(&q.pos_seeds, &neg, &mut rng);
        let pos_rate = pos_labels.iter().filter(|b| **b).count() as f64 / pos.len() as f64;
        let neg_rate = neg_labels.iter().filter(|b| **b).count() as f64 / neg.len() as f64;
        assert!(
            pos_rate > neg_rate,
            "true positives labelled consistent more often: {pos_rate:.2} vs {neg_rate:.2}"
        );
    }

    #[test]
    fn expansion_contains_hallucinations_and_is_deterministic() {
        let (world, oracle) = setup();
        let u = &world.ultra_classes[0];
        let q = &u.queries[0];
        let mut r1 = derive_rng(7, 0);
        let mut r2 = derive_rng(7, 0);
        let a = oracle.expand(&q.pos_seeds, &q.neg_seeds, 50, &mut r1);
        let b = oracle.expand(&q.pos_seeds, &q.neg_seeds, 50, &mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().any(|e| matches!(e, OracleEntry::Hallucinated(_))));
        // No seed leaks into the expansion.
        for entry in &a {
            if let OracleEntry::Known(e) = entry {
                assert!(!q.is_seed(*e));
            }
        }
    }

    #[test]
    fn to_ranked_entries_gives_fakes_out_of_vocab_ids() {
        let entries = vec![
            OracleEntry::Known(EntityId::new(3)),
            OracleEntry::Hallucinated("Fake City".into()),
            OracleEntry::Known(EntityId::new(5)),
        ];
        let ranked = KnowledgeOracle::to_ranked_entries(&entries, 100);
        assert_eq!(ranked[0].0, EntityId::new(3));
        assert_eq!(ranked[1].0, EntityId::new(100));
        assert_eq!(ranked[2].0, EntityId::new(5));
        assert!(ranked[0].1 > ranked[1].1 && ranked[1].1 > ranked[2].1);
    }
}

//! External entity knowledge: introductions and Wikidata-style records.
//!
//! Retrieval augmentation (Section 5.1.3 / 5.2.3, Table 8) prepends one of
//! three knowledge sources to an entity's context:
//!
//! * **Entity introduction** — reliable, compact: class topic plus markers
//!   of every true attribute value (the Wikipedia first-paragraph analogue).
//! * **Wikidata attributes** — high-quality but cluttered: a random subset
//!   of relevant markers drowned among irrelevant rare-attribute tokens
//!   (the paper's "YouTube channel ID" effect).
//! * **Ground-truth attributes** — markers of the entity's values on exactly
//!   the attributes an ultra class constrains (upper bound).

use crate::lexicon::Lexicon;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use ultra_core::rng::UltraRng;
use ultra_core::{AttributeId, AttributeSchema, Entity, EntityId, FineClass, TokenId};

/// Per-entity knowledge texts (token sequences).
#[derive(Clone, Debug, Default)]
pub struct KnowledgeBase {
    /// Introduction text per entity.
    pub intro: Vec<Vec<TokenId>>,
    /// Wikidata-attribute text per entity.
    pub wikidata: Vec<Vec<TokenId>>,
}

impl KnowledgeBase {
    /// Builds both knowledge texts for every entity.
    pub fn build(
        entities: &[Entity],
        classes: &[FineClass],
        attributes: &[AttributeSchema],
        lexicon: &Lexicon,
        distractor_group: &HashMap<u32, usize>,
        hard_neg_class: &HashMap<u32, usize>,
        rng: &mut UltraRng,
    ) -> Self {
        let _ = classes;
        let mut intro = Vec::with_capacity(entities.len());
        let mut wikidata = Vec::with_capacity(entities.len());
        for e in entities {
            intro.push(Self::build_intro(
                e,
                lexicon,
                distractor_group,
                hard_neg_class,
                rng,
            ));
            wikidata.push(Self::build_wikidata(e, attributes, lexicon, rng));
        }
        Self { intro, wikidata }
    }

    fn build_intro(
        e: &Entity,
        lexicon: &Lexicon,
        distractor_group: &HashMap<u32, usize>,
        hard_neg_class: &HashMap<u32, usize>,
        rng: &mut UltraRng,
    ) -> Vec<TokenId> {
        let mut toks = Vec::new();
        match (e.class, hard_neg_class.get(&e.id.0)) {
            (Some(class), _) => {
                toks.push(lexicon.sample_topic(class.index(), rng));
                toks.push(lexicon.sample_topic(class.index(), rng));
                // Introductions usually state the attribute values, but in
                // entity-specific phrasing (sampled markers), and a rare
                // introduction omits an attribute — the "static retrieved
                // knowledge" of Section 5.1.3 is informative, not an oracle.
                for &(aid, val) in &e.attrs {
                    if rng.gen_bool(0.85) {
                        toks.push(lexicon.sample_marker(aid.index(), val.index(), rng));
                        toks.push(lexicon.sample_marker(aid.index(), val.index(), rng));
                    }
                }
                toks.push(lexicon.sample_filler(rng));
                toks.push(lexicon.sample_filler(rng));
            }
            (None, Some(&class_idx)) => {
                // Hard negatives read like class members at first glance…
                toks.push(lexicon.sample_topic(class_idx, rng));
                let group = distractor_group.get(&e.id.0).copied().unwrap_or(0);
                toks.push(lexicon.sample_distractor_topic(group, rng));
                toks.push(lexicon.sample_filler(rng));
            }
            (None, None) => {
                let group = distractor_group.get(&e.id.0).copied().unwrap_or(0);
                toks.push(lexicon.sample_distractor_topic(group, rng));
                toks.push(lexicon.sample_distractor_topic(group, rng));
                toks.push(lexicon.sample_filler(rng));
            }
        }
        toks
    }

    fn build_wikidata(
        e: &Entity,
        attributes: &[AttributeSchema],
        lexicon: &Lexicon,
        rng: &mut UltraRng,
    ) -> Vec<TokenId> {
        let _ = attributes;
        let mut toks = Vec::new();
        // Random subset of the true attributes…
        let mut attrs: Vec<_> = e.attrs.clone();
        attrs.shuffle(rng);
        for (aid, val) in attrs {
            if rng.gen_bool(0.5) {
                toks.push(lexicon.sample_marker(aid.index(), val.index(), rng));
            }
        }
        // …drowned in irrelevant rare-attribute clutter.
        for _ in 0..rng.gen_range(3..=5) {
            toks.push(lexicon.sample_filler(rng));
        }
        toks
    }

    /// Ground-truth attribute text: the first two markers of `entity`'s
    /// value on each of `attrs` (deterministic; used by the GT-attribute
    /// retrieval-augmentation variant of Table 8).
    pub fn gt_attr_tokens(
        lexicon: &Lexicon,
        entity: &Entity,
        attrs: impl IntoIterator<Item = AttributeId>,
    ) -> Vec<TokenId> {
        let mut toks = Vec::new();
        for aid in attrs {
            if let Some(val) = entity.value_of(aid) {
                let markers = lexicon.markers_of(aid.index(), val.index());
                toks.push(markers[0]);
                toks.push(markers[1 % markers.len()]);
            }
        }
        toks
    }

    /// Introduction text of one entity.
    #[inline]
    pub fn intro_of(&self, e: EntityId) -> &[TokenId] {
        &self.intro[e.index()]
    }

    /// Wikidata text of one entity.
    #[inline]
    pub fn wikidata_of(&self, e: EntityId) -> &[TokenId] {
        &self.wikidata[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::config::WorldConfig;
    use crate::knowledge::KnowledgeBase;
    use crate::world::World;

    fn world() -> World {
        World::generate(WorldConfig::tiny()).unwrap()
    }

    #[test]
    fn every_entity_has_intro_and_wikidata() {
        let w = world();
        assert_eq!(w.knowledge.intro.len(), w.num_entities());
        assert_eq!(w.knowledge.wikidata.len(), w.num_entities());
        for e in &w.entities {
            assert!(!w.knowledge.intro_of(e.id).is_empty());
            assert!(!w.knowledge.wikidata_of(e.id).is_empty());
        }
    }

    #[test]
    fn in_class_intros_usually_contain_attribute_markers() {
        let w = world();
        let class = &w.classes[0];
        let mut covered = 0usize;
        let mut total = 0usize;
        for &e in class.entities.iter().take(20) {
            let ent = w.entity(e);
            let intro = w.knowledge.intro_of(e);
            for &(aid, val) in &ent.attrs {
                total += 1;
                let markers = w.lexicon.markers_of(aid.index(), val.index());
                if intro.iter().any(|t| markers.contains(t)) {
                    covered += 1;
                }
            }
        }
        let rate = covered as f64 / total as f64;
        assert!(
            (0.6..=1.0).contains(&rate),
            "intros should cover most attributes: {rate:.2}"
        );
    }

    #[test]
    fn gt_attr_tokens_cover_requested_attrs_only() {
        let w = world();
        let class = &w.classes[0];
        let e = w.entity(class.entities[0]);
        let one_attr = [class.attributes[0]];
        let toks = KnowledgeBase::gt_attr_tokens(&w.lexicon, e, one_attr);
        assert_eq!(toks.len(), 2);
        let val = e.value_of(class.attributes[0]).unwrap();
        let markers = w
            .lexicon
            .markers_of(class.attributes[0].index(), val.index());
        assert!(toks.iter().all(|t| markers.contains(t)));
    }

    #[test]
    fn gt_attr_tokens_for_distractor_is_empty() {
        let w = world();
        let distractor = w
            .entities
            .iter()
            .find(|e| e.class.is_none())
            .expect("a distractor exists");
        let toks = KnowledgeBase::gt_attr_tokens(
            &w.lexicon,
            distractor,
            w.classes[0].attributes.iter().copied(),
        );
        assert!(toks.is_empty());
    }
}

//! Dataset statistics backing Tables 1, 11 and 12.

use crate::world::World;
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregate statistics of a generated world.
#[derive(Clone, Debug, Serialize)]
pub struct WorldStats {
    /// Total candidate entities `|V|`.
    pub num_entities: usize,
    /// In-class entities.
    pub num_class_entities: usize,
    /// Corpus sentences.
    pub num_sentences: usize,
    /// Corpus tokens.
    pub num_tokens: usize,
    /// Fine-grained classes.
    pub num_fine_classes: usize,
    /// Ultra-fine-grained classes.
    pub num_ultra_classes: usize,
    /// Total queries.
    pub num_queries: usize,
    /// Mean `|P|` across ultra classes.
    pub avg_pos_targets: f64,
    /// Mean `|N|` across ultra classes.
    pub avg_neg_targets: f64,
    /// `(|A^pos|, |A^neg|) → count` histogram (Table 12).
    pub arity_histogram: Vec<((usize, usize), usize)>,
    /// Fraction of ultra classes whose positive target set intersects
    /// another ultra class's positive targets (paper: ≈99%).
    pub overlap_fraction: f64,
    /// Per-fine-class `(name, entities, ultra classes, attributes)` rows
    /// (Table 11).
    pub per_class: Vec<(String, usize, usize, usize)>,
}

impl WorldStats {
    /// Computes all statistics of a world.
    pub fn compute(world: &World) -> Self {
        let num_class_entities = world.classes.iter().map(|c| c.entities.len()).sum();
        let num_queries = world.ultra_classes.iter().map(|u| u.queries.len()).sum();
        let n_ultra = world.ultra_classes.len();
        let avg_pos_targets = world
            .ultra_classes
            .iter()
            .map(|u| u.pos_targets.len() as f64)
            .sum::<f64>()
            / n_ultra.max(1) as f64;
        let avg_neg_targets = world
            .ultra_classes
            .iter()
            .map(|u| u.neg_targets.len() as f64)
            .sum::<f64>()
            / n_ultra.max(1) as f64;

        let mut hist: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for u in &world.ultra_classes {
            *hist.entry(u.arity()).or_insert(0) += 1;
        }
        let mut arity_histogram: Vec<_> = hist.into_iter().collect();
        arity_histogram.sort_unstable();

        // Overlap: within each fine class, does an ultra class share any
        // positive target with a sibling's positive or negative targets?
        let mut overlapping = 0usize;
        for u in &world.ultra_classes {
            let p: std::collections::HashSet<_> = u.pos_targets.iter().collect();
            let hit = world
                .ultra_classes
                .iter()
                .filter(|v| v.id != u.id && v.fine == u.fine)
                .any(|v| {
                    v.pos_targets.iter().any(|e| p.contains(e))
                        || v.neg_targets.iter().any(|e| p.contains(e))
                });
            if hit {
                overlapping += 1;
            }
        }
        let overlap_fraction = overlapping as f64 / n_ultra.max(1) as f64;

        let per_class = world
            .classes
            .iter()
            .map(|c| {
                let ultra = world
                    .ultra_classes
                    .iter()
                    .filter(|u| u.fine == c.id)
                    .count();
                (c.name.clone(), c.entities.len(), ultra, c.attributes.len())
            })
            .collect();

        Self {
            num_entities: world.num_entities(),
            num_class_entities,
            num_sentences: world.corpus.len(),
            num_tokens: world.corpus.total_tokens(),
            num_fine_classes: world.classes.len(),
            num_ultra_classes: n_ultra,
            num_queries,
            avg_pos_targets,
            avg_neg_targets,
            arity_histogram,
            overlap_fraction,
            per_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn stats_are_internally_consistent() {
        let w = World::generate(WorldConfig::tiny()).unwrap();
        let s = WorldStats::compute(&w);
        assert_eq!(s.num_fine_classes, 10);
        assert!(s.num_entities > s.num_class_entities);
        assert_eq!(
            s.num_queries,
            s.num_ultra_classes * w.config.queries_per_class
        );
        assert!(s.avg_pos_targets >= w.config.n_thred as f64);
        let hist_total: usize = s.arity_histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(hist_total, s.num_ultra_classes);
        assert_eq!(s.per_class.len(), 10);
    }

    #[test]
    fn ultra_classes_mostly_overlap_like_the_paper() {
        let w = World::generate(WorldConfig::small()).unwrap();
        let s = WorldStats::compute(&w);
        assert!(
            s.overlap_fraction > 0.8,
            "expected heavy overlap, got {:.2}",
            s.overlap_fraction
        );
    }
}

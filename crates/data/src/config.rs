//! World-generation configuration and the two standard profiles.

use ultra_core::CoarseType;

/// Schema of one attribute to synthesize for a fine-grained class.
#[derive(Clone, Debug)]
pub struct AttrSpec {
    /// Attribute name, e.g. `"<province>"`.
    pub name: &'static str,
    /// Number of distinct values.
    pub cardinality: usize,
    /// Probability that a sentence carries a marker of the entity's value
    /// for this attribute. Lower = harder to infer from context.
    pub signal_rate: f64,
}

/// Specification of one fine-grained semantic class.
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Class name, e.g. `"China cities"`.
    pub name: &'static str,
    /// Coarse entity type.
    pub coarse: CoarseType,
    /// Number of member entities to generate.
    pub entities: usize,
    /// Target number of ultra-fine-grained classes to derive.
    pub ultra_classes: usize,
    /// The class's 2–3 attributes.
    pub attrs: Vec<AttrSpec>,
}

/// Full world-generation configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// The fine-grained classes to generate.
    pub classes: Vec<ClassSpec>,
    /// Plain distractor entities (unrelated topics).
    pub distractors: usize,
    /// Hard-negative distractors per fine-grained class (share the class
    /// topic without class membership — the BM25-mined hard negatives of
    /// Section 4.2).
    pub hard_negatives_per_class: usize,
    /// Mean sentences per in-class entity before Zipf skew.
    pub sentences_per_entity: f64,
    /// Zipf exponent for entity frequency skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Mean sentence length in tokens (geometric around this).
    pub sentence_len: usize,
    /// Size of the shared filler-token pool.
    pub filler_vocab: usize,
    /// Topic tokens per fine-grained class.
    pub topic_tokens_per_class: usize,
    /// Marker tokens per attribute value.
    pub marker_tokens_per_value: usize,
    /// Probability that an emitted attribute marker is *wrong* (annotation
    /// noise in the world itself).
    pub marker_noise: f64,
    /// Queries sampled per ultra-fine-grained class.
    pub queries_per_class: usize,
    /// Seed-count range per query (inclusive), paper: 3–5.
    pub seeds_min: usize,
    /// Upper bound of seeds per query.
    pub seeds_max: usize,
    /// Minimum size of both target sets (`n_thred`, paper: 6).
    pub n_thred: usize,
}

impl WorldConfig {
    /// Small profile: fast enough for unit/integration tests and examples
    /// (≈600 in-class entities, ≈1.2k distractors, ≈10k sentences).
    pub fn small() -> Self {
        Self {
            seed: 42,
            classes: scaled_classes(0.22, 0.3),
            distractors: 1200,
            hard_negatives_per_class: 20,
            sentences_per_entity: 12.0,
            zipf_exponent: 0.7,
            sentence_len: 12,
            filler_vocab: 1500,
            topic_tokens_per_class: 100,
            marker_tokens_per_value: 12,
            marker_noise: 0.02,
            queries_per_class: 3,
            seeds_min: 3,
            seeds_max: 5,
            n_thred: 6,
        }
    }

    /// Tiny profile for property tests and doc examples (sub-second).
    pub fn tiny() -> Self {
        let mut cfg = Self::small();
        cfg.classes = scaled_classes(0.08, 0.12);
        cfg.distractors = 200;
        cfg.hard_negatives_per_class = 5;
        cfg.sentences_per_entity = 8.0;
        cfg.filler_vocab = 400;
        cfg.topic_tokens_per_class = 60;
        cfg.marker_tokens_per_value = 8;
        cfg
    }

    /// Paper profile: mirrors Table 11 exactly (2,848 in-class entities,
    /// 261-target ultra classes); distractor and sentence budgets scaled to
    /// keep the full experiment grid tractable on a laptop. Scale can be
    /// raised with [`WorldConfig::with_scale`].
    pub fn paper() -> Self {
        Self {
            seed: 42,
            classes: scaled_classes(1.0, 1.0),
            distractors: 8000,
            hard_negatives_per_class: 60,
            sentences_per_entity: 14.0,
            zipf_exponent: 0.7,
            sentence_len: 12,
            filler_vocab: 4000,
            topic_tokens_per_class: 140,
            marker_tokens_per_value: 12,
            marker_noise: 0.02,
            queries_per_class: 3,
            seeds_min: 3,
            seeds_max: 5,
            n_thred: 6,
        }
    }

    /// Huge profile: ≥100k entities (≈22.8k in-class at 8× the paper's
    /// class sizes plus 80k distractors) for exercising sublinear candidate
    /// retrieval (`ultra-ann`) at a scale where O(N) preliminary scoring
    /// visibly hurts. Value cardinalities scale with the entity factor per
    /// the same rule the reduced profiles use, so the entities-per-value
    /// ratio — and thus target-set sizes — stays close to the paper
    /// profile's. Sentence and query budgets are trimmed so generation and
    /// encoding stay tractable: this profile benchmarks *retrieval*, not
    /// encoder quality.
    pub fn huge() -> Self {
        Self {
            seed: 42,
            classes: scaled_classes(8.0, 1.0),
            distractors: 80_000,
            hard_negatives_per_class: 60,
            sentences_per_entity: 6.0,
            zipf_exponent: 0.7,
            sentence_len: 12,
            filler_vocab: 8000,
            topic_tokens_per_class: 140,
            marker_tokens_per_value: 12,
            marker_noise: 0.02,
            queries_per_class: 1,
            seeds_min: 3,
            seeds_max: 5,
            n_thred: 6,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Multiplies entity / distractor / sentence budgets by `scale`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        for c in &mut self.classes {
            c.entities = ((c.entities as f64 * scale) as usize).max(20);
        }
        self.distractors = ((self.distractors as f64 * scale) as usize).max(50);
        self
    }

    /// Total in-class entities requested.
    pub fn total_class_entities(&self) -> usize {
        self.classes.iter().map(|c| c.entities).sum()
    }

    /// Total ultra-fine-grained classes requested.
    pub fn total_ultra_classes(&self) -> usize {
        self.classes.iter().map(|c| c.ultra_classes).sum()
    }
}

/// The 10 fine-grained classes of Table 11 with entity counts, ultra-class
/// counts and attribute schemas; `e_scale`/`u_scale` shrink them for the
/// test profiles (minimums keep every class usable for query sampling).
fn scaled_classes(e_scale: f64, u_scale: f64) -> Vec<ClassSpec> {
    use CoarseType::*;
    let e = |n: usize| ((n as f64 * e_scale) as usize).max(30);
    let u = |n: usize| ((n as f64 * u_scale) as usize).max(3);
    // Scaled profiles also scale value cardinalities with the entity
    // factor so the entities-per-value ratio (and thus target-set sizes)
    // stays close to the paper profile's: reduced profiles shrink them
    // (clamped to stay usable), scaled-up profiles (e.g. `huge`) grow them
    // by the same factor. `e_scale = 1.0` reproduces Table 11 exactly.
    let a = move |name: &'static str, cardinality: usize, signal: f64| AttrSpec {
        name,
        cardinality: if e_scale >= 1.0 {
            ((cardinality as f64 * e_scale).round() as usize).max(cardinality)
        } else {
            ((cardinality as f64 * e_scale).round() as usize).clamp(2, cardinality)
        },
        signal_rate: signal,
    };
    vec![
        ClassSpec {
            name: "Canada universities",
            coarse: Organization,
            entities: e(99),
            ultra_classes: u(10),
            attrs: vec![a("<loc-province>", 8, 0.55), a("<type>", 3, 0.5)],
        },
        ClassSpec {
            name: "China cities",
            coarse: Location,
            entities: e(675),
            ultra_classes: u(50),
            attrs: vec![a("<province>", 20, 0.55), a("<prefecture>", 4, 0.45)],
        },
        ClassSpec {
            name: "Countries",
            coarse: Location,
            entities: e(190),
            ultra_classes: u(68),
            attrs: vec![
                a("<continent>", 6, 0.6),
                a("<driving-side>", 2, 0.35),
                a("<per-capita-income>", 3, 0.4),
            ],
        },
        ClassSpec {
            name: "US airports",
            coarse: Location,
            entities: e(370),
            ultra_classes: u(74),
            attrs: vec![a("<role>", 4, 0.5), a("<loc-state>", 25, 0.55)],
        },
        ClassSpec {
            name: "US national monuments",
            coarse: Location,
            entities: e(112),
            ultra_classes: u(12),
            // Deliberately low signal: the paper calls this class long-tail
            // with limited context knowledge.
            attrs: vec![a("<loc-state>", 20, 0.35), a("<agency>", 5, 0.3)],
        },
        ClassSpec {
            name: "Mobile phone brands",
            coarse: Product,
            entities: e(159),
            ultra_classes: u(7),
            // Also a long-tail class per the paper's GPT-4 analysis.
            attrs: vec![a("<loc-continent>", 4, 0.4), a("<status>", 2, 0.35)],
        },
        ClassSpec {
            name: "Percussion instruments",
            coarse: Product,
            entities: e(128),
            ultra_classes: u(10),
            attrs: vec![a("<type>", 5, 0.45), a("<source-continent>", 5, 0.4)],
        },
        ClassSpec {
            name: "Nobel laureates",
            coarse: Person,
            entities: e(952),
            ultra_classes: u(11),
            attrs: vec![a("<prize>", 6, 0.6), a("<gender>", 2, 0.5)],
        },
        ClassSpec {
            name: "US presidents",
            coarse: Person,
            entities: e(45),
            ultra_classes: u(5),
            attrs: vec![a("<party>", 4, 0.55), a("<birth-state>", 15, 0.45)],
        },
        ClassSpec {
            name: "Chemical elements",
            coarse: Miscellaneous,
            entities: e(118),
            ultra_classes: u(14),
            attrs: vec![a("<period>", 7, 0.55), a("<phase-at-r.t.>", 3, 0.5)],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table_11_totals() {
        let cfg = WorldConfig::paper();
        assert_eq!(cfg.classes.len(), 10);
        assert_eq!(cfg.total_class_entities(), 2848);
        assert_eq!(cfg.total_ultra_classes(), 261);
    }

    #[test]
    fn paper_attribute_counts_match_table_11() {
        let cfg = WorldConfig::paper();
        let arities: Vec<usize> = cfg.classes.iter().map(|c| c.attrs.len()).collect();
        assert_eq!(arities, vec![2, 2, 3, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn small_profile_is_smaller_but_complete() {
        let cfg = WorldConfig::small();
        assert_eq!(cfg.classes.len(), 10);
        assert!(cfg.total_class_entities() < WorldConfig::paper().total_class_entities());
        assert!(cfg.classes.iter().all(|c| c.entities >= 30));
        assert!(cfg.classes.iter().all(|c| c.ultra_classes >= 3));
    }

    #[test]
    fn huge_profile_crosses_one_hundred_thousand_entities() {
        let cfg = WorldConfig::huge();
        assert!(
            cfg.total_class_entities() + cfg.distractors >= 100_000,
            "huge profile must request >=100k entities, got {}",
            cfg.total_class_entities() + cfg.distractors
        );
        // Cardinalities scale with the 8x entity factor, so the
        // entities-per-value ratio stays near the paper profile's.
        let paper = WorldConfig::paper();
        for (h, p) in cfg.classes.iter().zip(&paper.classes) {
            for (ha, pa) in h.attrs.iter().zip(&p.attrs) {
                assert_eq!(ha.cardinality, pa.cardinality * 8, "{}", ha.name);
            }
        }
    }

    #[test]
    fn with_scale_grows_budgets() {
        let base = WorldConfig::small();
        let big = WorldConfig::small().with_scale(2.0);
        assert!(big.total_class_entities() > base.total_class_entities());
        assert!(big.distractors > base.distractors);
    }

    #[test]
    fn signal_rates_are_probabilities() {
        for c in WorldConfig::paper().classes {
            for a in c.attrs {
                assert!(a.signal_rate > 0.0 && a.signal_rate <= 1.0);
                assert!(a.cardinality >= 2);
            }
        }
    }
}

//! `ultra-data` — the UltraWiki dataset substrate.
//!
//! The paper constructs UltraWiki from Wikipedia/Wikidata crawls plus
//! three-way human annotation (Section 4). Neither resource is available in
//! this environment, so this crate *synthesizes* a world with the same
//! structure (see DESIGN.md §1 for the substitution argument):
//!
//! 1. **Semantic classes & entities** — 10 fine-grained classes mirroring
//!    Table 11 (names, coarse types, entity counts, attribute schemas), plus
//!    distractor entities, with Zipf-skewed corpus frequency so long-tail
//!    entities exist.
//! 2. **Entity-labelled sentences** — template-free token sampling: each
//!    sentence mentions one entity and carries (a) fine-class *topic*
//!    tokens, (b) per-attribute *value-marker* tokens emitted with the
//!    attribute's `signal_rate`, and (c) Zipf filler tokens. Context is
//!    therefore *informative but noisy*, exactly the property Ultra-ESE
//!    methods are differentiated by.
//! 3. **Attribute annotation** — ground-truth assignments kept by the
//!    generator; a noisy [`oracle::KnowledgeOracle`] simulates both Wikidata
//!    lookups and GPT-4-style annotation (reliability grows with entity
//!    frequency; hallucinations possible).
//! 4. **Negative-aware semantic class generation** — the Step-4 algorithm:
//!    sample `(A^pos, V^pos)`, `(A^neg, V^neg)`, keep classes whose positive
//!    and negative target sets each exceed `n_thred = 6`, then sample 3
//!    queries with 3–5 positive and negative seeds.
//! 5. **Hard negatives** — distractors whose sentences share class topics
//!    (BM25-similar) without carrying class membership, mirroring the
//!    paper's BM25-mined hard negative vocabulary.

pub mod config;
pub mod export;
pub mod knowledge;
pub mod lexicon;
pub mod lists;
pub mod mining;
pub mod names;
pub mod oracle;
pub mod quality;
pub mod stats;
pub mod ultra;
pub mod world;

pub use config::{AttrSpec, ClassSpec, WorldConfig};
pub use knowledge::KnowledgeBase;
pub use lists::{ListDoc, ListKind};
pub use mining::EntityBm25;
pub use oracle::{KnowledgeOracle, OracleConfig, OracleEntry};
pub use quality::{fleiss_kappa, simulated_annotation_kappa};
pub use stats::WorldStats;
pub use world::World;

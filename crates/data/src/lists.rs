//! Wikipedia-style list documents.
//!
//! Figure 2 of the paper shows "Wikipedia Lists" as a corpus source: pages
//! enumerating entities of a class or of an attribute value ("List of
//! cities in Henan"). These documents are what gives a corpus-trained
//! generative model its list-continuation ability — after seeing
//! `"Xiangcheng , Linzhou , Yanshi ,"` it can propose further entities that
//! co-occur in the same lists. We synthesize:
//!
//! * **class lists** — shuffled enumerations of a fine-grained class's
//!   members (coarse knowledge; part of the LM's *base* pre-training), and
//! * **value lists** — enumerations of the members sharing one attribute
//!   value (ultra-fine knowledge; only seen during *further pre-training*
//!   on corpus `D`, which is what the Table 3 "- Further pretrain" ablation
//!   removes).
//!
//! Tokens are entity *name words* separated by a dedicated separator token,
//! so the generative LM's n-grams naturally walk the same multi-token name
//! paths as the prefix trie (Figure 6).

use rand::seq::SliceRandom;
use ultra_core::rng::UltraRng;
use ultra_core::{AttributeId, AttributeValueId, ClassId, EntityId, TokenId};

/// What a list document enumerates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListKind {
    /// All members of a fine-grained class.
    Class(ClassId),
    /// Members of a class sharing one attribute value.
    Value(AttributeId, AttributeValueId),
}

/// One list document: separator-joined entity name words.
#[derive(Clone, Debug)]
pub struct ListDoc {
    /// What the list enumerates.
    pub kind: ListKind,
    /// Which shuffled copy this is (0-based). Value-list copies are split
    /// between the LM's base pre-training (the first four copies — the
    /// large share of attribute knowledge a general LLM already holds) and
    /// further pre-training on corpus `D` (the remaining copies).
    pub copy: usize,
    /// Name-word tokens with separators.
    pub tokens: Vec<TokenId>,
    /// The enumerated entities in order.
    pub entities: Vec<EntityId>,
}

/// How many shuffled copies of each list to emit (more copies = stronger
/// n-gram association between co-listed entities).
pub const CLASS_LIST_COPIES: usize = 3;
/// Copies of each attribute-value list.
pub const VALUE_LIST_COPIES: usize = 6;
/// Maximum entities per list document (long lists are chunked by sampling).
pub const MAX_LIST_LEN: usize = 120;

/// Generates class and value lists.
///
/// `name_tokens[e]` are the entity's name-word tokens; `members` yields
/// `(kind, member entities)` groups.
pub fn generate_lists(
    groups: &[(ListKind, Vec<EntityId>)],
    name_tokens: &[Vec<TokenId>],
    separator: TokenId,
    rng: &mut UltraRng,
) -> Vec<ListDoc> {
    let mut docs = Vec::new();
    for (kind, members) in groups {
        if members.len() < 2 {
            continue;
        }
        let copies = match kind {
            ListKind::Class(_) => CLASS_LIST_COPIES,
            ListKind::Value(_, _) => VALUE_LIST_COPIES,
        };
        for copy in 0..copies {
            let mut order: Vec<EntityId> = members.clone();
            order.shuffle(rng);
            order.truncate(MAX_LIST_LEN);
            let mut tokens = Vec::with_capacity(order.len() * 3);
            for (i, &e) in order.iter().enumerate() {
                if i > 0 {
                    tokens.push(separator);
                }
                tokens.extend_from_slice(&name_tokens[e.index()]);
            }
            docs.push(ListDoc {
                kind: kind.clone(),
                copy,
                tokens,
                entities: order,
            });
        }
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_core::derive_rng;

    fn t(x: u32) -> TokenId {
        TokenId::new(x)
    }
    fn e(x: u32) -> EntityId {
        EntityId::new(x)
    }

    fn names() -> Vec<Vec<TokenId>> {
        vec![vec![t(10)], vec![t(11), t(12)], vec![t(13)]]
    }

    #[test]
    fn lists_join_names_with_separator() {
        let mut rng = derive_rng(1, 0);
        let groups = vec![(ListKind::Class(ClassId::new(0)), vec![e(0), e(1), e(2)])];
        let docs = generate_lists(&groups, &names(), t(99), &mut rng);
        assert_eq!(docs.len(), CLASS_LIST_COPIES);
        for d in &docs {
            assert_eq!(d.entities.len(), 3);
            let seps = d.tokens.iter().filter(|&&x| x == t(99)).count();
            assert_eq!(seps, 2, "n-1 separators");
            // All name tokens present.
            for ent in &d.entities {
                for nt in &names()[ent.index()] {
                    assert!(d.tokens.contains(nt));
                }
            }
        }
    }

    #[test]
    fn copies_are_differently_shuffled() {
        let mut rng = derive_rng(2, 0);
        let members: Vec<EntityId> = (0..3).map(e).collect();
        let groups = vec![(ListKind::Class(ClassId::new(0)), members)];
        let docs = generate_lists(&groups, &names(), t(99), &mut rng);
        let orders: std::collections::HashSet<Vec<u32>> = docs
            .iter()
            .map(|d| d.entities.iter().map(|x| x.0).collect())
            .collect();
        assert!(orders.len() > 1, "shuffles should differ");
    }

    #[test]
    fn singleton_groups_are_skipped() {
        let mut rng = derive_rng(3, 0);
        let groups = vec![(
            ListKind::Value(AttributeId::new(0), AttributeValueId(0)),
            vec![e(0)],
        )];
        assert!(generate_lists(&groups, &names(), t(99), &mut rng).is_empty());
    }
}

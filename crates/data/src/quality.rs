//! Annotation-quality simulation (Section 4.2 "Quality of UltraWiki").
//!
//! The paper has every manually-annotated attribute value labelled by three
//! annotators and reports an inter-annotator agreement of Fleiss' κ = 0.90.
//! This module provides the κ statistic and a three-annotator simulation
//! over the generated world, so the dataset-statistics experiment can
//! report the same quality figure for the synthetic annotation process.

use crate::world::World;
use rand::Rng;
use ultra_core::rng::{derive_rng, stream_label};

/// Fleiss' kappa over an item × category count matrix.
///
/// `ratings[i][k]` is the number of annotators who assigned item `i` to
/// category `k`; every row must sum to the same number of annotators
/// `n ≥ 2`. Returns a value in `[-1, 1]`; 1 = perfect agreement.
pub fn fleiss_kappa(ratings: &[Vec<usize>]) -> f64 {
    let items = ratings.len();
    if items == 0 {
        return 1.0;
    }
    let n: usize = ratings[0].iter().sum();
    assert!(n >= 2, "Fleiss' kappa needs at least two annotators");
    assert!(
        ratings.iter().all(|r| r.iter().sum::<usize>() == n),
        "every item needs the same number of ratings"
    );
    let categories = ratings[0].len();
    // Per-item agreement P_i and category marginals p_k.
    let mut p_bar = 0.0f64;
    let mut p_k = vec![0.0f64; categories];
    for row in ratings {
        let mut agree = 0.0f64;
        for (k, &c) in row.iter().enumerate() {
            agree += (c * c) as f64;
            p_k[k] += c as f64;
        }
        p_bar += (agree - n as f64) / (n as f64 * (n as f64 - 1.0));
    }
    p_bar /= items as f64;
    let total = (items * n) as f64;
    let p_e: f64 = p_k.iter().map(|&c| (c / total) * (c / total)).sum();
    if (1.0 - p_e).abs() < 1e-12 {
        return 1.0;
    }
    (p_bar - p_e) / (1.0 - p_e)
}

/// Simulates `annotators` independent labellings of every (entity,
/// attribute) item: each annotator reports the true value with
/// `accuracy`, otherwise a uniformly random wrong value. Returns the
/// macro-average Fleiss' κ over attributes.
pub fn simulated_annotation_kappa(world: &World, annotators: usize, accuracy: f64) -> f64 {
    let mut rng = derive_rng(world.config.seed, stream_label("annotation-kappa"));
    let mut kappas = Vec::new();
    for schema in &world.attributes {
        let card = schema.cardinality();
        let mut ratings: Vec<Vec<usize>> = Vec::new();
        for class in &world.classes {
            if !class.attributes.contains(&schema.id) {
                continue;
            }
            for &e in &class.entities {
                // Every member of a class carrying this attribute has a
                // value by world construction; skip defensively if not.
                let Some(value) = world.entity(e).value_of(schema.id) else {
                    continue;
                };
                let truth = value.index();
                let mut row = vec![0usize; card];
                for _ in 0..annotators {
                    let label = if rng.gen_bool(accuracy) {
                        truth
                    } else {
                        rng.gen_range(0..card)
                    };
                    row[label] += 1;
                }
                ratings.push(row);
            }
        }
        if !ratings.is_empty() {
            kappas.push(fleiss_kappa(&ratings));
        }
    }
    kappas.iter().sum::<f64>() / kappas.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn perfect_agreement_is_kappa_one() {
        // 3 annotators, all picking category 0 or all category 1.
        let ratings = vec![vec![3, 0], vec![0, 3], vec![3, 0]];
        assert!((fleiss_kappa(&ratings) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_agreement_is_near_zero() {
        // Uniformly random votes over 3 categories ≈ chance level.
        let mut rng = derive_rng(7, 0);
        let ratings: Vec<Vec<usize>> = (0..3000)
            .map(|_| {
                let mut row = vec![0usize; 3];
                for _ in 0..3 {
                    row[rng.gen_range(0..3)] += 1;
                }
                row
            })
            .collect();
        let k = fleiss_kappa(&ratings);
        assert!(k.abs() < 0.05, "chance-level agreement: {k}");
    }

    #[test]
    fn higher_accuracy_gives_higher_kappa() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let low = simulated_annotation_kappa(&world, 3, 0.7);
        let high = simulated_annotation_kappa(&world, 3, 0.95);
        assert!(high > low, "κ(0.95)={high:.3} vs κ(0.7)={low:.3}");
        assert!(high > 0.8, "κ at 95% accuracy should be high: {high:.3}");
    }

    #[test]
    #[should_panic(expected = "same number of ratings")]
    fn ragged_ratings_are_rejected() {
        fleiss_kappa(&[vec![3, 0], vec![1, 0]]);
    }
}

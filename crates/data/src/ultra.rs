//! Negative-aware ultra-fine-grained class generation (Section 4.1 Step 4)
//! and query sampling.

use crate::world::World;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use ultra_core::rng::UltraRng;
use ultra_core::{
    AttrConstraint, AttributeId, AttributeValueId, EntityId, Query, Result, UltraClass,
    UltraClassId, UltraError,
};

/// Arity menu `(|A^pos|, |A^neg|, weight)` matching Table 12's empirical
/// distribution: overwhelmingly (1,1), with a sprinkle of (1,2)/(2,1)/(2,2)
/// and (3,3) for the one 3-attribute class.
const ARITY_MENU: &[(usize, usize, f64)] = &[
    (1, 1, 0.912),
    (1, 2, 0.019),
    (2, 1, 0.034),
    (2, 2, 0.027),
    (3, 3, 0.008),
];

/// A deduplication key: the (attribute, value) pairs of the positive and
/// negative constraints.
type ConstraintKey = (Vec<(u16, u16)>, Vec<(u16, u16)>);

/// Generates every class's ultra-fine-grained classes with queries.
pub fn generate_ultra_classes(world: &World, rng: &mut UltraRng) -> Result<Vec<UltraClass>> {
    let mut out = Vec::new();
    for (ci, spec) in world.config.classes.iter().enumerate() {
        let fine = &world.classes[ci];
        let attrs = &fine.attributes;
        let mut seen: HashSet<ConstraintKey> = HashSet::new();
        let mut produced = 0usize;
        let max_attempts = spec.ultra_classes * 400;
        let mut attempts = 0usize;
        while produced < spec.ultra_classes && attempts < max_attempts {
            attempts += 1;
            let (np, nn) = sample_arity(attrs.len(), rng);
            let pos = sample_constraint(world, attrs, np, rng);
            let neg = sample_constraint(world, attrs, nn, rng);
            if pos == neg {
                continue;
            }
            // Partition members per the task definition: expanded entities
            // must "share the same attribute values with S^pos while
            // distinct from S^neg", so P = satisfies pos AND NOT neg, while
            // N = satisfies neg — *including* entities that also satisfy
            // pos (Figure 3's overlap case). Those overlap entities are
            // what makes the A^pos ≠ A^neg regime genuinely harder
            // (Table 4): they look positive to the expansion step and must
            // be rejected purely on the negative attribute.
            let mut p = Vec::new();
            let mut n = Vec::new();
            for &e in &fine.entities {
                let ent = world.entity(e);
                let sat_pos = ent.satisfies(&pos);
                let sat_neg = ent.satisfies(&neg);
                if sat_pos && !sat_neg {
                    p.push(e);
                }
                if sat_neg {
                    n.push(e);
                }
            }
            if p.len() < world.config.n_thred || n.len() < world.config.n_thred {
                continue;
            }
            let signature = (sig(&pos), sig(&neg));
            if !seen.insert(signature) {
                continue;
            }
            let id = UltraClassId::from_index(out.len());
            let queries = sample_queries(world, id, &p, &n, &pos, rng);
            out.push(UltraClass {
                id,
                fine: fine.id,
                pos,
                neg,
                pos_targets: p,
                neg_targets: n,
                queries,
            });
            produced += 1;
        }
        if produced == 0 {
            return Err(UltraError::InvalidConfig(format!(
                "class '{}' produced no ultra-fine-grained classes; \
                 entity count {} too small for n_thred {}",
                spec.name, spec.entities, world.config.n_thred
            )));
        }
    }
    Ok(out)
}

/// Samples an arity pair valid for a class with `num_attrs` attributes.
fn sample_arity(num_attrs: usize, rng: &mut UltraRng) -> (usize, usize) {
    let valid: Vec<&(usize, usize, f64)> = ARITY_MENU
        .iter()
        .filter(|(p, n, _)| *p <= num_attrs && *n <= num_attrs)
        .collect();
    let total: f64 = valid.iter().map(|(_, _, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &&(p, n, w) in &valid {
        if x < w {
            return (p, n);
        }
        x -= w;
    }
    (1, 1)
}

/// Samples a constraint of `arity` distinct attributes with a value each,
/// biased toward values that actually occur among class members (value
/// popularity is Zipf-skewed, so uniform sampling would often yield empty
/// target sets).
fn sample_constraint(
    world: &World,
    attrs: &[AttributeId],
    arity: usize,
    rng: &mut UltraRng,
) -> AttrConstraint {
    let mut chosen: Vec<AttributeId> = attrs.to_vec();
    chosen.shuffle(rng);
    chosen.truncate(arity);
    chosen.sort_unstable();
    let required = chosen
        .into_iter()
        .map(|aid| {
            let card = world.attributes[aid.index()].cardinality();
            // Mirror the generator's Zipf(0.8) value skew.
            let weights: Vec<f64> = (0..card)
                .map(|i| 1.0 / ((i + 1) as f64).powf(0.8))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut x = rng.gen_range(0.0..total);
            let mut v = card - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    v = i;
                    break;
                }
                x -= w;
            }
            (aid, AttributeValueId(v as u16))
        })
        .collect();
    AttrConstraint::new(required)
}

fn sig(c: &AttrConstraint) -> Vec<(u16, u16)> {
    let mut v: Vec<(u16, u16)> = c.required.iter().map(|(a, x)| (a.0, x.0)).collect();
    v.sort_unstable();
    v
}

/// Samples the class's queries: 3–5 positive seeds from `P` and 3–5 negative
/// seeds from `N`, frequency-biased (users name well-known entities).
/// Negative seeds prefer the unambiguous part of `N` (entities not also
/// satisfying the positive constraint), since a user naming "unwanted"
/// examples would naturally pick clear-cut ones.
fn sample_queries(
    world: &World,
    ultra: UltraClassId,
    p: &[EntityId],
    n: &[EntityId],
    pos: &ultra_core::AttrConstraint,
    rng: &mut UltraRng,
) -> Vec<Query> {
    let clean_n: Vec<EntityId> = n
        .iter()
        .copied()
        .filter(|&e| !world.entity(e).satisfies(pos))
        .collect();
    (0..world.config.queries_per_class)
        .map(|_| {
            let k_pos = rng.gen_range(world.config.seeds_min..=world.config.seeds_max);
            let k_neg = rng.gen_range(world.config.seeds_min..=world.config.seeds_max);
            let neg_pool: &[EntityId] = if clean_n.len() > k_neg { &clean_n } else { n };
            Query::new(
                ultra,
                weighted_sample(world, p, k_pos.min(p.len() - 1), rng),
                weighted_sample(world, neg_pool, k_neg.min(neg_pool.len() - 1), rng),
            )
        })
        .collect()
}

/// Frequency-weighted sampling without replacement.
fn weighted_sample(
    world: &World,
    pool: &[EntityId],
    k: usize,
    rng: &mut UltraRng,
) -> Vec<EntityId> {
    let mut chosen: Vec<EntityId> = Vec::with_capacity(k);
    let mut remaining: Vec<EntityId> = pool.to_vec();
    for _ in 0..k.min(pool.len()) {
        let weights: Vec<f64> = remaining
            .iter()
            .map(|&e| world.entity(e).freq_weight.max(1e-3))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        let mut idx = remaining.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                idx = i;
                break;
            }
            x -= w;
        }
        chosen.push(remaining.swap_remove(idx));
    }
    chosen
}

#[cfg(test)]
mod tests {
    use crate::config::WorldConfig;
    use crate::world::World;

    fn world() -> World {
        World::generate(WorldConfig::tiny()).unwrap()
    }

    #[test]
    fn targets_satisfy_their_constraints_and_not_the_other() {
        let w = world();
        for u in &w.ultra_classes {
            for &e in &u.pos_targets {
                let ent = w.entity(e);
                assert!(ent.satisfies(&u.pos));
                assert!(!ent.satisfies(&u.neg));
                assert_eq!(ent.class, Some(u.fine));
            }
            for &e in &u.neg_targets {
                let ent = w.entity(e);
                assert!(ent.satisfies(&u.neg));
            }
            // P and N are disjoint even when constraints overlap.
            for &e in &u.pos_targets {
                assert!(!u.neg_targets.contains(&e));
            }
        }
    }

    #[test]
    fn target_sets_meet_n_thred() {
        let w = world();
        for u in &w.ultra_classes {
            assert!(u.pos_targets.len() >= w.config.n_thred);
            assert!(u.neg_targets.len() >= w.config.n_thred);
        }
    }

    #[test]
    fn queries_have_valid_seed_counts_and_membership() {
        let w = world();
        for u in &w.ultra_classes {
            assert_eq!(u.queries.len(), w.config.queries_per_class);
            for q in &u.queries {
                assert!(!q.pos_seeds.is_empty());
                assert!(!q.neg_seeds.is_empty());
                assert!(q.pos_seeds.len() <= w.config.seeds_max);
                for &s in &q.pos_seeds {
                    assert!(u.pos_targets.contains(&s));
                }
                for &s in &q.neg_seeds {
                    assert!(u.neg_targets.contains(&s));
                }
                // No duplicate seeds.
                let mut all: Vec<_> = q.all_seeds().collect();
                all.sort_unstable();
                all.dedup();
                assert_eq!(all.len(), q.pos_seeds.len() + q.neg_seeds.len());
            }
        }
    }

    #[test]
    fn ultra_classes_are_unique_per_fine_class() {
        let w = world();
        let mut seen = std::collections::HashSet::new();
        for u in &w.ultra_classes {
            let key = (u.fine, format!("{:?}|{:?}", u.pos, u.neg));
            assert!(seen.insert(key), "duplicate ultra class");
        }
    }

    #[test]
    fn most_classes_are_one_one_arity() {
        let w = World::generate(WorldConfig::small()).unwrap();
        let one_one = w
            .ultra_classes
            .iter()
            .filter(|u| u.arity() == (1, 1))
            .count();
        assert!(
            one_one * 10 >= w.ultra_classes.len() * 7,
            "(1,1) should dominate: {one_one}/{}",
            w.ultra_classes.len()
        );
    }

    #[test]
    fn seeds_are_left_in_target_sets() {
        // Evaluation excludes seeds explicitly; targets keep them.
        let w = world();
        let u = &w.ultra_classes[0];
        let q = &u.queries[0];
        assert!(q.pos_seeds.iter().all(|s| u.pos_targets.contains(s)));
    }
}

//! `ultra-retexpan` — the retrieval-based framework RetExpan (Section 5.1).
//!
//! Three steps per query:
//!
//! 1. **Entity representation** — the trained [`ultra_embed::EntityEncoder`]
//!    provides hidden-state entity representations (the paper credits this
//!    hidden-state read-out, versus ProbExpan's probability distributions,
//!    for most of RetExpan's margin — Section 6.2 point 2).
//! 2. **Entity expansion** — candidates are ranked by `sco^pos` (Eq. 4),
//!    the mean cosine to the *positive* seeds only, keeping recall of the
//!    whole fine-grained class; the top-K form the preliminary list `L₀`.
//! 3. **Entity re-ranking** — negative seeds re-rank `L₀` segment-by-
//!    segment via [`ultra_core::segmented_rerank`].
//!
//! Enhancement strategies:
//!
//! * [`mining`] — GPT-4-simulated mining of `L_pos`/`L_neg` lists, feeding
//!   ultra-fine-grained contrastive learning (Section 5.1.2);
//! * retrieval augmentation is configured on the encoder itself
//!   ([`ultra_embed::Augmentation`], Section 5.1.3).
//!
//! Two of the paper's future-work directions are implemented as
//! extensions: [`decoupled`] (MoE-inspired base/attribute representation
//! decoupling, Section 6.2) and [`dynamic_ra`] (query-adaptive knowledge
//! retrieval, Section 6.4.2).

pub mod decoupled;
pub mod dynamic_ra;
pub mod mining;
pub mod pipeline;

pub use decoupled::DecoupledRetExpan;
pub use dynamic_ra::DynamicRaRetExpan;
pub use mining::mine_lists;
pub use pipeline::{RetExpan, RetExpanConfig};
pub use ultra_ann::{AnnSpec, CandidateSource, IvfConfig};

//! Extension: decoupled base/attribute representations.
//!
//! Section 6.2 (point 2) sketches a future direction: "decoupling the base
//! semantics of entities from the ultra-fine-grained attribute semantics,
//! similar to the Mix-of-Expert approach, where distinct features represent
//! different perspectives of the semantics".
//!
//! This module implements an unsupervised version of that idea. The
//! preliminary list `L₀` is (by construction) dominated by one fine-grained
//! class, so the mean representation over its head estimates the class's
//! *base semantics* direction. Subtracting it leaves a *residual* vector in
//! which attribute distinctions — the part of the signal not shared by the
//! whole class — carry relatively more weight. Scoring candidates by a
//! blend of full-space and residual-space similarity sharpens
//! ultra-fine-grained ranking without any extra supervision.

use crate::pipeline::RetExpan;
use ultra_core::{segmented_rerank, EntityId, Query, RankedList};
use ultra_data::World;
use ultra_nn::cosine;
use ultra_par::Pool;

/// RetExpan with residual-subspace re-scoring.
pub struct DecoupledRetExpan {
    /// The underlying trained RetExpan.
    pub base: RetExpan,
    /// Blend weight of the residual-space score (0 = plain RetExpan).
    pub residual_weight: f32,
    /// How many of `L₀`'s head entities estimate the class centroid.
    pub centroid_head: usize,
}

impl DecoupledRetExpan {
    /// Wraps a trained RetExpan with default extension parameters.
    pub fn new(base: RetExpan) -> Self {
        Self {
            base,
            residual_weight: 0.5,
            centroid_head: 30,
        }
    }

    /// Residual of one entity against a class centroid.
    fn residual(&self, e: EntityId, centroid: &[f32]) -> Vec<f32> {
        self.base
            .reps
            .row(e)
            .iter()
            .zip(centroid)
            .map(|(x, c)| x - c)
            .collect()
    }

    /// Mean residual-space similarity of `e` to a seed set.
    fn residual_seed_score(&self, e: EntityId, seeds: &[EntityId], centroid: &[f32]) -> f32 {
        if seeds.is_empty() {
            return 0.0;
        }
        let re = self.residual(e, centroid);
        seeds
            .iter()
            .map(|&s| cosine(&re, &self.residual(s, centroid)))
            .sum::<f32>()
            / seeds.len() as f32
    }

    /// Full pipeline: preliminary expansion → blended full/residual
    /// re-scoring → segmented negative re-ranking in residual space.
    pub fn expand(&self, world: &World, query: &Query) -> RankedList {
        let l0 = self.base.preliminary_list(world, query, None);
        if l0.is_empty() {
            return l0;
        }
        // Base-semantics direction: mean representation of L₀'s head.
        let head: Vec<EntityId> = l0.entities().take(self.centroid_head).collect();
        let centroid = self.base.reps.centroid(&head);

        let w = self.residual_weight;
        let pool = Pool::global();
        let cands: Vec<EntityId> = l0.entities().collect();
        let full_scores = self.base.reps.seed_scores(&cands, &query.pos_seeds, &pool);
        // Residual-space scores have no factorized form (each candidate's
        // residual depends on the centroid), so fan the per-entity work out
        // instead; map_ordered keeps output order = candidate order.
        let residual_scores = pool.map_ordered(&cands, |&e| {
            self.residual_seed_score(e, &query.pos_seeds, &centroid)
        });
        let rescored: Vec<(EntityId, f32)> = cands
            .iter()
            .zip(full_scores.iter().zip(&residual_scores))
            .map(|(&e, (&full, &residual))| (e, (1.0 - w) * full + w * residual))
            .collect();
        let rescored = RankedList::from_scores(rescored);
        if !self.base.config.rerank || query.neg_seeds.is_empty() {
            return rescored;
        }
        let neg_scores = pool.map_ordered(&cands, |&e| {
            self.residual_seed_score(e, &query.neg_seeds, &centroid)
        });
        let mut table: Vec<(EntityId, f32)> = cands.into_iter().zip(neg_scores).collect();
        table.sort_by_key(|&(e, _)| e);
        segmented_rerank(&rescored, self.base.config.segment_len, |e| {
            match table.binary_search_by(|probe| probe.0.cmp(&e)) {
                Ok(i) => table[i].1,
                Err(_) => self.residual_seed_score(e, &query.neg_seeds, &centroid),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RetExpanConfig;
    use ultra_data::WorldConfig;
    use ultra_embed::EncoderConfig;

    fn setup() -> (World, DecoupledRetExpan) {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let base = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 6,
                dim: 48,
                neg_samples: 48,
                max_sentences_per_entity: 10,
                ..EncoderConfig::default()
            },
            RetExpanConfig::default(),
        );
        (world, DecoupledRetExpan::new(base))
    }

    #[test]
    fn zero_weight_reduces_to_plain_order_of_l0() {
        let (world, mut dec) = setup();
        dec.residual_weight = 0.0;
        let (_u, q) = world.queries().next().unwrap();
        let plain = dec.base.expand(&world, q);
        let dec_out = dec.expand(&world, q);
        // Same membership (both are re-rankings of the same L0).
        let mut a: Vec<_> = plain.entities().collect();
        let mut b: Vec<_> = dec_out.entities().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn residual_is_representation_minus_centroid() {
        let (world, dec) = setup();
        let e = world.classes[0].entities[0];
        let centroid = dec.base.reps.centroid(&[e]);
        let r = dec.residual(e, &centroid);
        assert!(r.iter().all(|x| x.abs() < 1e-6), "self-residual is zero");
    }

    #[test]
    fn expansion_runs_and_excludes_seeds() {
        let (world, dec) = setup();
        for (_u, q) in world.queries().take(5) {
            let out = dec.expand(&world, q);
            assert!(!out.is_empty());
            for s in q.all_seeds() {
                assert_eq!(out.rank_of(s), None);
            }
        }
    }
}

//! Contrastive-pair mining with the simulated GPT-4 annotator
//! (Section 5.1.2 "Ultra-fine-grained Training Data", Appendix A Table 13).
//!
//! For each query: take the top-`T` of the preliminary list `L₀`, ask the
//! annotator which candidates are attribute-consistent with the positive
//! seeds (→ `L_pos`) and which with the negative seeds (→ `L_neg`), merge
//! the seeds themselves in, and sample out-of-class entities as `L̄₀`.

use crate::pipeline::RetExpan;
use rand::seq::SliceRandom;
use ultra_core::rng::{derive_rng, stream_label};
use ultra_core::EntityId;
use ultra_data::{KnowledgeOracle, World};
use ultra_embed::{MinedLists, QueryLists};

/// Mines `L_pos`/`L_neg`/`L̄₀` for every query.
///
/// * `t_examine` — how many of `L₀`'s top entities the annotator reviews
///   (the paper prompts GPT-4 on the top-T of `L₀`).
/// * `list_cap` — `|L_pos|` and `|L_neg|` caps (paper: 10, Figure 7 sweeps
///   it).
pub fn mine_lists(
    world: &World,
    ret: &RetExpan,
    oracle: &KnowledgeOracle,
    t_examine: usize,
    list_cap: usize,
) -> MinedLists {
    let mut rng = derive_rng(world.config.seed, stream_label("mining"));
    let mut queries = Vec::new();
    for u in &world.ultra_classes {
        for q in &u.queries {
            let l0 = ret.preliminary_list(world, q, None);
            let cands: Vec<EntityId> = l0.entities().take(t_examine).collect();
            let pos_labels = oracle.classify_consistent(&q.pos_seeds, &cands, &mut rng);
            let neg_labels = oracle.classify_consistent(&q.neg_seeds, &cands, &mut rng);
            // Seeds are known members of their lists; mined candidates are
            // appended after them ("will be merged with S^pos (S^neg) to
            // form L_pos (L_neg)").
            let mut l_pos: Vec<EntityId> = q.pos_seeds.clone();
            let mut l_neg: Vec<EntityId> = q.neg_seeds.clone();
            for (i, &c) in cands.iter().enumerate() {
                if pos_labels[i] && !neg_labels[i] && l_pos.len() < list_cap {
                    l_pos.push(c);
                } else if neg_labels[i] && !pos_labels[i] && l_neg.len() < list_cap {
                    l_neg.push(c);
                }
            }
            // L̄₀: entities from other fine-grained classes.
            let mut outside: Vec<EntityId> = world
                .classes
                .iter()
                .filter(|c| c.id != u.fine)
                .flat_map(|c| c.entities.iter().copied())
                .collect();
            outside.shuffle(&mut rng);
            outside.truncate(list_cap);
            queries.push(QueryLists {
                ultra: u.id,
                seed_tokens: Vec::new(),
                l_pos,
                l_neg,
                outside,
            });
        }
    }
    MinedLists { queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RetExpanConfig;
    use ultra_data::{OracleConfig, WorldConfig};
    use ultra_embed::EncoderConfig;

    #[test]
    fn mined_lists_cover_every_query_and_respect_caps() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 1,
                neg_samples: 32,
                max_sentences_per_entity: 8,
                ..EncoderConfig::default()
            },
            RetExpanConfig::default(),
        );
        let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
        let mined = mine_lists(&world, &ret, &oracle, 30, 10);
        let total_queries: usize = world.ultra_classes.iter().map(|u| u.queries.len()).sum();
        assert_eq!(mined.queries.len(), total_queries);
        for (ql, (u, q)) in mined.queries.iter().zip(world.queries()) {
            assert_eq!(ql.ultra, u.id);
            assert!(ql.l_pos.len() <= 10.max(q.pos_seeds.len()));
            assert!(ql.l_neg.len() <= 10.max(q.neg_seeds.len()));
            // Seeds are always included.
            for s in &q.pos_seeds {
                assert!(ql.l_pos.contains(s));
            }
            for s in &q.neg_seeds {
                assert!(ql.l_neg.contains(s));
            }
            // No entity sits in both lists beyond the seeds.
            for e in &ql.l_pos {
                if !q.pos_seeds.contains(e) {
                    assert!(!ql.l_neg.contains(e), "entity in both mined lists");
                }
            }
            // Outside entities really are outside the fine class.
            for e in &ql.outside {
                assert_ne!(world.entity(*e).class, Some(u.fine));
            }
        }
    }

    #[test]
    fn mining_is_deterministic() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 0,
                ..EncoderConfig::default()
            },
            RetExpanConfig::default(),
        );
        let oracle = KnowledgeOracle::new(&world, OracleConfig::default());
        let a = mine_lists(&world, &ret, &oracle, 20, 10);
        let b = mine_lists(&world, &ret, &oracle, 20, 10);
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.l_pos, y.l_pos);
            assert_eq!(x.l_neg, y.l_neg);
        }
    }
}

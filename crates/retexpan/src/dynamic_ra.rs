//! Extension: dynamic (query-adaptive) retrieval augmentation.
//!
//! Section 6.4.2 closes with: "the supplementary knowledge retrieved for
//! each entity is static across different sentences and does not adapt to
//! the entity's context… Crafting dynamic and ultra-fine-grained retrieval
//! strategies deserves further exploration."
//!
//! This module explores exactly that. Instead of baking one static prefix
//! into every context at training time, knowledge is consulted *per query*
//! at scoring time: the query's over-represented context tokens are
//! inferred from the seeds' sentences (positive and negative separately),
//! and each candidate's knowledge text is scored against them. Only the
//! knowledge that the *current* query cares about influences the ranking —
//! the paper's "ultra-fine-grained retrieval" hypothesis.

use crate::pipeline::RetExpan;
use std::collections::HashMap;
use ultra_core::{segmented_rerank, EntityId, Query, RankedList, TokenId};
use ultra_data::World;
use ultra_par::Pool;

/// RetExpan with query-adaptive knowledge scoring.
pub struct DynamicRaRetExpan {
    /// The underlying trained RetExpan (no static augmentation needed).
    pub base: RetExpan,
    /// Weight of the knowledge-match bonus.
    pub knowledge_weight: f32,
    /// How many query tokens to infer per polarity.
    pub query_tokens: usize,
}

impl DynamicRaRetExpan {
    /// Wraps a trained RetExpan.
    pub fn new(base: RetExpan) -> Self {
        Self {
            base,
            knowledge_weight: 0.35,
            query_tokens: 6,
        }
    }

    /// Infers the tokens over-represented around a seed set: counts over
    /// the seeds' sentences and introductions, normalized by a global
    /// sentence frequency estimate over the seeds' fine-grained
    /// neighbourhood (`L₀`).
    fn infer_query_tokens(
        &self,
        world: &World,
        seeds: &[EntityId],
        background: &[EntityId],
    ) -> Vec<TokenId> {
        let count_tokens = |ids: &[EntityId]| -> (HashMap<TokenId, f64>, f64) {
            let mut counts: HashMap<TokenId, f64> = HashMap::new();
            let mut total = 0.0f64;
            for &e in ids {
                for &sid in world.corpus.sentences_of(e) {
                    for &t in &world.corpus.sentence(sid).tokens {
                        if world.entity_of_mention(t).is_none() {
                            *counts.entry(t).or_insert(0.0) += 1.0;
                            total += 1.0;
                        }
                    }
                }
                for &t in world.knowledge.intro_of(e) {
                    *counts.entry(t).or_insert(0.0) += 1.0;
                    total += 1.0;
                }
            }
            (counts, total.max(1.0))
        };
        let (seed_counts, seed_total) = count_tokens(seeds);
        let (bg_counts, bg_total) = count_tokens(background);
        let mut scored: Vec<(TokenId, f64)> = seed_counts
            .into_iter()
            // Tokens seen fewer than 3 times around the seeds are sampling
            // noise, not query semantics.
            .filter(|(_, c)| *c >= 3.0)
            .map(|(t, c)| {
                let p_seed = c / seed_total;
                let p_bg = (bg_counts.get(&t).copied().unwrap_or(0.0) + 0.5) / bg_total;
                (t, (p_seed / p_bg).ln())
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(self.query_tokens)
            .map(|(t, _)| t)
            .collect()
    }

    /// Knowledge-match bonus: fraction of the query tokens present in the
    /// candidate's introduction + Wikidata text.
    fn knowledge_match(&self, world: &World, e: EntityId, query_tokens: &[TokenId]) -> f32 {
        if query_tokens.is_empty() {
            return 0.0;
        }
        let hits = query_tokens
            .iter()
            .filter(|t| {
                world.knowledge.intro_of(e).contains(t)
                    || world.knowledge.wikidata_of(e).contains(t)
            })
            .count();
        hits as f32 / query_tokens.len() as f32
    }

    /// Full pipeline with query-adaptive knowledge bonuses.
    pub fn expand(&self, world: &World, query: &Query) -> RankedList {
        let l0 = self.base.preliminary_list(world, query, None);
        if l0.is_empty() {
            return l0;
        }
        // Background for PMI normalization: the fine-grained neighbourhood.
        let background: Vec<EntityId> = l0.entities().take(50).collect();
        let q_pos = self.infer_query_tokens(world, &query.pos_seeds, &background);
        let q_neg = self.infer_query_tokens(world, &query.neg_seeds, &background);

        let w = self.knowledge_weight;
        let pool = Pool::global();
        let cands: Vec<EntityId> = l0.entities().collect();
        let base_scores = self.base.reps.seed_scores(&cands, &query.pos_seeds, &pool);
        let rescored: Vec<(EntityId, f32)> = cands
            .iter()
            .zip(&base_scores)
            .map(|(&e, &base)| (e, base + w * self.knowledge_match(world, e, &q_pos)))
            .collect();
        let rescored = RankedList::from_scores(rescored);
        if !self.base.config.rerank || query.neg_seeds.is_empty() {
            return rescored;
        }
        // Rescoring permutes L₀ without changing membership, so the batch
        // neg scores over `cands` cover every entity the re-ranker asks for.
        let neg_scores = self.base.reps.seed_scores(&cands, &query.neg_seeds, &pool);
        let mut table: Vec<(EntityId, f32)> = cands.into_iter().zip(neg_scores).collect();
        table.sort_by_key(|&(e, _)| e);
        segmented_rerank(&rescored, self.base.config.segment_len, |e| {
            let neg = match table.binary_search_by(|probe| probe.0.cmp(&e)) {
                Ok(i) => table[i].1,
                Err(_) => self.base.reps.seed_score(e, &query.neg_seeds),
            };
            neg + w * self.knowledge_match(world, e, &q_neg)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RetExpanConfig;
    use ultra_data::WorldConfig;
    use ultra_embed::EncoderConfig;

    fn setup() -> (World, DynamicRaRetExpan) {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let base = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 6,
                dim: 48,
                neg_samples: 48,
                max_sentences_per_entity: 10,
                ..EncoderConfig::default()
            },
            RetExpanConfig::default(),
        );
        (world, DynamicRaRetExpan::new(base))
    }

    #[test]
    fn inferred_query_tokens_are_informative() {
        let (world, dyn_ra) = setup();
        let (u, q) = world.queries().next().unwrap();
        let l0 = dyn_ra.base.preliminary_list(&world, q, None);
        let background: Vec<EntityId> = l0.entities().take(50).collect();
        let toks = dyn_ra.infer_query_tokens(&world, &q.pos_seeds, &background);
        assert_eq!(toks.len(), dyn_ra.query_tokens);
        // At least one inferred token is a topic or marker of the class.
        let topics = &world.lexicon.class_topics[u.fine.index()];
        let informative = toks.iter().any(|t| {
            topics.contains(t) || world.lexicon.markers.iter().any(|m| m.pool.contains(t))
        });
        assert!(informative, "inferred tokens should include class signal");
    }

    #[test]
    fn knowledge_match_is_bounded() {
        let (world, dyn_ra) = setup();
        let e = world.classes[0].entities[0];
        let intro = world.knowledge.intro_of(e).to_vec();
        assert!((dyn_ra.knowledge_match(&world, e, &intro) - 1.0).abs() < 1e-6);
        assert_eq!(dyn_ra.knowledge_match(&world, e, &[]), 0.0);
    }

    #[test]
    fn expansion_runs_and_excludes_seeds() {
        let (world, dyn_ra) = setup();
        for (_u, q) in world.queries().take(5) {
            let out = dyn_ra.expand(&world, q);
            assert!(!out.is_empty());
            for s in q.all_seeds() {
                assert_eq!(out.rank_of(s), None);
            }
        }
    }
}

//! The RetExpan pipeline: representation → expansion → re-ranking.

use ultra_ann::{AnnSpec, CandidateSource};
use ultra_core::{segmented_rerank, EntityId, Query, RankedList};
use ultra_data::World;
use ultra_embed::{EncoderConfig, EntityEmbeddings, EntityEncoder};
use ultra_par::Pool;

/// RetExpan pipeline configuration.
#[derive(Clone, Debug)]
pub struct RetExpanConfig {
    /// Size of the preliminary expansion list `L₀`.
    pub top_k: usize,
    /// Re-ranking segment length `l` (Figure 7 sweeps this; `0` = naive
    /// global re-rank).
    pub segment_len: usize,
    /// Whether negative-seed re-ranking runs at all (Table 5 ablation).
    pub rerank: bool,
    /// Candidate source for the preliminary stage: exhaustive scoring
    /// (default; the paper's exact path) or a deterministic IVF index
    /// (`ultra-ann`). With `nprobe = 0` ("all") the IVF output is
    /// byte-identical to exhaustive.
    pub ann: AnnSpec,
}

impl Default for RetExpanConfig {
    fn default() -> Self {
        Self {
            top_k: 200,
            segment_len: 20,
            rerank: true,
            ann: AnnSpec::Exhaustive,
        }
    }
}

/// A trained RetExpan instance: encoder plus cached entity representations.
pub struct RetExpan {
    /// The trained entity encoder.
    pub encoder: EntityEncoder,
    /// Cached per-entity representations.
    pub reps: EntityEmbeddings,
    /// Pipeline configuration.
    pub config: RetExpanConfig,
    /// Candidate source built from `config.ann` over `reps`; rebuilt
    /// whenever the representations change.
    source: Box<dyn CandidateSource>,
}

impl RetExpan {
    /// Trains the encoder (entity prediction task) and caches entity
    /// representations. This is the plain RetExpan of Table 2; apply
    /// [`refresh_reps`](Self::refresh_reps) after any further training
    /// (e.g. contrastive).
    pub fn train(world: &World, enc_cfg: EncoderConfig, config: RetExpanConfig) -> Self {
        let mut encoder = EntityEncoder::new(world, enc_cfg);
        encoder.train_entity_prediction(world);
        let reps = encoder.entity_embeddings(world);
        let source = config.ann.build_source(&reps, &Pool::global());
        Self {
            encoder,
            reps,
            config,
            source,
        }
    }

    /// Reassembles a pipeline from previously persisted parts (snapshot
    /// load). No training and no index build happen here: the candidate
    /// source starts as [`Exhaustive`](ultra_ann::Exhaustive) and the caller
    /// installs the deserialized index via [`set_source`](Self::set_source).
    pub fn from_parts(
        encoder: EntityEncoder,
        reps: EntityEmbeddings,
        config: RetExpanConfig,
    ) -> Self {
        Self {
            encoder,
            reps,
            config,
            source: Box::new(ultra_ann::Exhaustive),
        }
    }

    /// Wraps an externally trained encoder.
    pub fn from_encoder(world: &World, encoder: EntityEncoder, config: RetExpanConfig) -> Self {
        let reps = encoder.entity_embeddings(world);
        let source = config.ann.build_source(&reps, &Pool::global());
        Self {
            encoder,
            reps,
            config,
            source,
        }
    }

    /// Recomputes cached representations after additional encoder training,
    /// and rebuilds the candidate source over them (a stale index would
    /// probe the *old* geometry).
    pub fn refresh_reps(&mut self, world: &World) {
        self.reps = self.encoder.entity_embeddings(world);
        self.source = self.config.ann.build_source(&self.reps, &Pool::global());
    }

    /// Switches the candidate source, rebuilding any index over the current
    /// representations (serve/bench use this to install — and time — the
    /// configured source after training).
    pub fn set_ann(&mut self, spec: AnnSpec) {
        self.config.ann = spec;
        self.source = self.config.ann.build_source(&self.reps, &Pool::global());
    }

    /// Installs a pre-built candidate source (bench sweeps reuse one IVF
    /// index across many `nprobe` operating points this way). The caller is
    /// responsible for the source matching `self.reps`.
    pub fn set_source(&mut self, source: Box<dyn CandidateSource>) {
        self.source = source;
    }

    /// Wire label of the active candidate source.
    pub fn source_name(&self) -> String {
        self.source.name()
    }

    /// Consuming form of [`refresh_reps`](Self::refresh_reps) for builder
    /// pipelines that finish all mutation *before* sharing the trained
    /// instance (e.g. `ultra-serve` freezes the pipeline behind an `Arc`
    /// and answers queries through `&self` only).
    #[must_use]
    pub fn into_refreshed(mut self, world: &World) -> Self {
        self.refresh_reps(world);
        self
    }

    /// Step 2: the preliminary list `L₀` — top-K candidates by `sco^pos`
    /// (Eq. 4), excluding the query's seeds. Negative seeds are *not* used
    /// here, "to ensure the recall of all entities satisfying fine-grained
    /// semantic classes". `restrict` optionally narrows the candidate pool
    /// (the Table 10 paradigm-interaction experiments).
    pub fn preliminary_list(
        &self,
        world: &World,
        query: &Query,
        restrict: Option<&[EntityId]>,
    ) -> RankedList {
        let pool = Pool::global();
        let scores: Vec<(EntityId, f32)> = match restrict {
            Some(cands) => {
                let cands: Vec<EntityId> = cands
                    .iter()
                    .copied()
                    .filter(|&e| !query.is_seed(e))
                    .collect();
                let s = self.reps.seed_scores(&cands, &query.pos_seeds, &pool);
                cands.into_iter().zip(s).collect()
            }
            None => {
                // The candidate source decides *which* entities get scored
                // (all of them for `Exhaustive`, the probed inverted lists
                // for `Ivf`); scores come from the same factorized kernel
                // either way. Seeds are dropped afterwards, exactly as the
                // pre-index code did.
                debug_assert_eq!(world.entities.len(), self.reps.len());
                self.source
                    .scored_candidates(&self.reps, &query.pos_seeds, &pool)
                    .into_iter()
                    .filter(|&(e, _)| !query.is_seed(e))
                    .collect()
            }
        };
        RankedList::from_scores(scores).truncated(self.config.top_k)
    }

    /// Full pipeline: expansion then (optionally) segmented re-ranking by
    /// `sco^neg`.
    pub fn expand(&self, world: &World, query: &Query) -> RankedList {
        self.expand_restricted(world, query, None)
    }

    /// [`expand`](Self::expand) over a restricted candidate pool.
    pub fn expand_restricted(
        &self,
        world: &World,
        query: &Query,
        restrict: Option<&[EntityId]>,
    ) -> RankedList {
        let l0 = self.preliminary_list(world, query, restrict);
        if !self.config.rerank || query.neg_seeds.is_empty() {
            l0.debug_validate("retexpan::expand (preliminary)");
            return l0;
        }
        // Batch-score every L₀ entity against the negative seeds once, then
        // serve `segmented_rerank`'s lookups from a sorted table (L₀ is
        // top_k-sized, so binary search beats hashing and stays ordered).
        let cands: Vec<EntityId> = l0.entities().collect();
        let neg = self
            .reps
            .seed_scores(&cands, &query.neg_seeds, &Pool::global());
        let mut table: Vec<(EntityId, f32)> = cands.into_iter().zip(neg).collect();
        table.sort_by_key(|&(e, _)| e);
        let reranked = segmented_rerank(&l0, self.config.segment_len, |e| {
            match table.binary_search_by(|probe| probe.0.cmp(&e)) {
                Ok(i) => table[i].1,
                Err(_) => self.reps.seed_score(e, &query.neg_seeds),
            }
        });
        reranked.debug_validate("retexpan::expand (reranked)");
        reranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_data::WorldConfig;
    use ultra_eval::evaluate_method;

    fn quick_enc() -> EncoderConfig {
        EncoderConfig {
            epochs: 8,
            dim: 64,
            neg_samples: 48,
            max_sentences_per_entity: 12,
            ..EncoderConfig::default()
        }
    }

    #[test]
    fn retexpan_beats_random_by_a_wide_margin() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(&world, quick_enc(), RetExpanConfig::default());
        let report = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        // Baseline: a seeded random ranking over the same candidate pool.
        // Absolute Pos-vs-Neg comparisons are confounded on the tiny
        // profile: N is ~1.6× larger than P per query, and ~40% of N is
        // pos∧neg overlap (entities satisfying the positive constraint by
        // construction), so even a perfect ranker shows elevated Neg
        // numbers. Lift over chance is the size-robust signal.
        let rand_report = evaluate_method(&world, |_u, q| {
            let scores: Vec<(EntityId, f32)> = world
                .entities
                .iter()
                .filter(|e| !q.is_seed(e.id))
                .map(|e| {
                    let h =
                        ultra_core::mix_seed(0xD1CE ^ q.ultra.index() as u64, e.id.index() as u64);
                    (e.id, (h >> 40) as f32)
                })
                .collect();
            RankedList::from_scores(scores).truncated(ret.config.top_k)
        });
        assert!(
            report.pos_map[0] > 10.0,
            "PosMAP@10 = {:.2}",
            report.pos_map[0]
        );
        let pos_lift = report.avg_pos() / rand_report.avg_pos().max(0.1);
        let neg_lift = report.avg_neg() / rand_report.avg_neg().max(0.1);
        assert!(
            pos_lift > 5.0,
            "Pos lift over random = {pos_lift:.1}x (ret {:.2} vs random {:.2})",
            report.avg_pos(),
            rand_report.avg_pos()
        );
        // The model must concentrate positives harder than it (inevitably)
        // drags in the overlap-heavy negatives.
        assert!(
            pos_lift > neg_lift,
            "Pos lift {pos_lift:.1}x should exceed Neg lift {neg_lift:.1}x"
        );
    }

    #[test]
    fn rerank_reduces_negative_intrusion() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let mut ret = RetExpan::train(&world, quick_enc(), RetExpanConfig::default());
        let with = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        ret.config.rerank = false;
        let without = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        assert!(
            with.avg_neg_map() <= without.avg_neg_map() + 1e-9,
            "rerank should not worsen NegMAP: {:.2} vs {:.2}",
            with.avg_neg_map(),
            without.avg_neg_map()
        );
    }

    #[test]
    fn preliminary_list_excludes_seeds_and_respects_top_k() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 0,
                ..quick_enc()
            },
            RetExpanConfig {
                top_k: 25,
                ..RetExpanConfig::default()
            },
        );
        let (_u, q) = world.queries().next().unwrap();
        let l0 = ret.preliminary_list(&world, q, None);
        assert_eq!(l0.len(), 25);
        for s in q.all_seeds() {
            assert_eq!(l0.rank_of(s), None);
        }
    }

    #[test]
    fn ivf_full_probe_expansion_is_byte_identical_to_exhaustive() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let mut ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 2,
                ..quick_enc()
            },
            RetExpanConfig::default(),
        );
        let exhaustive: Vec<RankedList> = world
            .queries()
            .map(|(_u, q)| ret.expand(&world, q))
            .collect();
        ret.set_ann(ultra_ann::AnnSpec::Ivf(ultra_ann::IvfConfig {
            nprobe: 0,
            ..ultra_ann::IvfConfig::default()
        }));
        assert!(ret.source_name().contains("ivf"));
        for ((_u, q), exh) in world.queries().zip(&exhaustive) {
            let ivf = ret.expand(&world, q);
            // `RankedList` equality is bit-exact on score bits.
            assert_eq!(&ivf, exh, "ivf(nprobe=all) diverged from exhaustive");
        }
    }

    #[test]
    fn narrow_probe_keeps_high_overlap_with_exhaustive_head() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let mut ret = RetExpan::train(&world, quick_enc(), RetExpanConfig::default());
        let exhaustive: Vec<Vec<EntityId>> = world
            .queries()
            .map(|(_u, q)| ret.preliminary_list(&world, q, None).entities().collect())
            .collect();
        ret.set_ann(ultra_ann::AnnSpec::Ivf(ultra_ann::IvfConfig {
            nprobe: 8,
            ..ultra_ann::IvfConfig::default()
        }));
        let k = 10;
        let mut hits = 0usize;
        let mut total = 0usize;
        for ((_u, q), exh) in world.queries().zip(&exhaustive) {
            let ivf: Vec<EntityId> = ret.preliminary_list(&world, q, None).entities().collect();
            for e in exh.iter().take(k) {
                total += 1;
                if ivf.iter().take(k).any(|x| x == e) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total.max(1) as f64;
        assert!(
            recall > 0.6,
            "recall@{k} of a reasonable probe width collapsed: {recall:.2}"
        );
    }

    #[test]
    fn restricted_expansion_stays_in_pool() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 0,
                ..quick_enc()
            },
            RetExpanConfig::default(),
        );
        let (u, q) = world.queries().next().unwrap();
        let pool: Vec<EntityId> = u
            .pos_targets
            .iter()
            .chain(&u.neg_targets)
            .copied()
            .collect();
        let out = ret.expand_restricted(&world, q, Some(&pool));
        for e in out.entities() {
            assert!(pool.contains(&e));
        }
    }
}

//! The RetExpan pipeline: representation → expansion → re-ranking.

use ultra_core::{segmented_rerank, EntityId, Query, RankedList};
use ultra_data::World;
use ultra_embed::{EncoderConfig, EntityEmbeddings, EntityEncoder};
use ultra_par::Pool;

/// RetExpan pipeline configuration.
#[derive(Clone, Debug)]
pub struct RetExpanConfig {
    /// Size of the preliminary expansion list `L₀`.
    pub top_k: usize,
    /// Re-ranking segment length `l` (Figure 7 sweeps this; `0` = naive
    /// global re-rank).
    pub segment_len: usize,
    /// Whether negative-seed re-ranking runs at all (Table 5 ablation).
    pub rerank: bool,
}

impl Default for RetExpanConfig {
    fn default() -> Self {
        Self {
            top_k: 200,
            segment_len: 20,
            rerank: true,
        }
    }
}

/// A trained RetExpan instance: encoder plus cached entity representations.
pub struct RetExpan {
    /// The trained entity encoder.
    pub encoder: EntityEncoder,
    /// Cached per-entity representations.
    pub reps: EntityEmbeddings,
    /// Pipeline configuration.
    pub config: RetExpanConfig,
}

impl RetExpan {
    /// Trains the encoder (entity prediction task) and caches entity
    /// representations. This is the plain RetExpan of Table 2; apply
    /// [`refresh_reps`](Self::refresh_reps) after any further training
    /// (e.g. contrastive).
    pub fn train(world: &World, enc_cfg: EncoderConfig, config: RetExpanConfig) -> Self {
        let mut encoder = EntityEncoder::new(world, enc_cfg);
        encoder.train_entity_prediction(world);
        let reps = encoder.entity_embeddings(world);
        Self {
            encoder,
            reps,
            config,
        }
    }

    /// Wraps an externally trained encoder.
    pub fn from_encoder(world: &World, encoder: EntityEncoder, config: RetExpanConfig) -> Self {
        let reps = encoder.entity_embeddings(world);
        Self {
            encoder,
            reps,
            config,
        }
    }

    /// Recomputes cached representations after additional encoder training.
    pub fn refresh_reps(&mut self, world: &World) {
        self.reps = self.encoder.entity_embeddings(world);
    }

    /// Consuming form of [`refresh_reps`](Self::refresh_reps) for builder
    /// pipelines that finish all mutation *before* sharing the trained
    /// instance (e.g. `ultra-serve` freezes the pipeline behind an `Arc`
    /// and answers queries through `&self` only).
    #[must_use]
    pub fn into_refreshed(mut self, world: &World) -> Self {
        self.refresh_reps(world);
        self
    }

    /// Step 2: the preliminary list `L₀` — top-K candidates by `sco^pos`
    /// (Eq. 4), excluding the query's seeds. Negative seeds are *not* used
    /// here, "to ensure the recall of all entities satisfying fine-grained
    /// semantic classes". `restrict` optionally narrows the candidate pool
    /// (the Table 10 paradigm-interaction experiments).
    pub fn preliminary_list(
        &self,
        world: &World,
        query: &Query,
        restrict: Option<&[EntityId]>,
    ) -> RankedList {
        let pool = Pool::global();
        let scores: Vec<(EntityId, f32)> = match restrict {
            Some(cands) => {
                let cands: Vec<EntityId> = cands
                    .iter()
                    .copied()
                    .filter(|&e| !query.is_seed(e))
                    .collect();
                let s = self.reps.seed_scores(&cands, &query.pos_seeds, &pool);
                cands.into_iter().zip(s).collect()
            }
            None => {
                // Score every row in one blocked pass, then drop the seeds;
                // filtering afterwards keeps the scored ranges contiguous.
                let all = self.reps.seed_scores_all(&query.pos_seeds, &pool);
                world
                    .entities
                    .iter()
                    .filter(|e| !query.is_seed(e.id))
                    .map(|e| (e.id, all[e.id.index()]))
                    .collect()
            }
        };
        RankedList::from_scores(scores).truncated(self.config.top_k)
    }

    /// Full pipeline: expansion then (optionally) segmented re-ranking by
    /// `sco^neg`.
    pub fn expand(&self, world: &World, query: &Query) -> RankedList {
        self.expand_restricted(world, query, None)
    }

    /// [`expand`](Self::expand) over a restricted candidate pool.
    pub fn expand_restricted(
        &self,
        world: &World,
        query: &Query,
        restrict: Option<&[EntityId]>,
    ) -> RankedList {
        let l0 = self.preliminary_list(world, query, restrict);
        if !self.config.rerank || query.neg_seeds.is_empty() {
            l0.debug_validate("retexpan::expand (preliminary)");
            return l0;
        }
        // Batch-score every L₀ entity against the negative seeds once, then
        // serve `segmented_rerank`'s lookups from a sorted table (L₀ is
        // top_k-sized, so binary search beats hashing and stays ordered).
        let cands: Vec<EntityId> = l0.entities().collect();
        let neg = self
            .reps
            .seed_scores(&cands, &query.neg_seeds, &Pool::global());
        let mut table: Vec<(EntityId, f32)> = cands.into_iter().zip(neg).collect();
        table.sort_by_key(|&(e, _)| e);
        let reranked = segmented_rerank(&l0, self.config.segment_len, |e| {
            match table.binary_search_by(|probe| probe.0.cmp(&e)) {
                Ok(i) => table[i].1,
                Err(_) => self.reps.seed_score(e, &query.neg_seeds),
            }
        });
        reranked.debug_validate("retexpan::expand (reranked)");
        reranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_data::WorldConfig;
    use ultra_eval::evaluate_method;

    fn quick_enc() -> EncoderConfig {
        EncoderConfig {
            epochs: 8,
            dim: 64,
            neg_samples: 48,
            max_sentences_per_entity: 12,
            ..EncoderConfig::default()
        }
    }

    #[test]
    fn retexpan_beats_random_by_a_wide_margin() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(&world, quick_enc(), RetExpanConfig::default());
        let report = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        // Baseline: a seeded random ranking over the same candidate pool.
        // Absolute Pos-vs-Neg comparisons are confounded on the tiny
        // profile: N is ~1.6× larger than P per query, and ~40% of N is
        // pos∧neg overlap (entities satisfying the positive constraint by
        // construction), so even a perfect ranker shows elevated Neg
        // numbers. Lift over chance is the size-robust signal.
        let rand_report = evaluate_method(&world, |_u, q| {
            let scores: Vec<(EntityId, f32)> = world
                .entities
                .iter()
                .filter(|e| !q.is_seed(e.id))
                .map(|e| {
                    let h =
                        ultra_core::mix_seed(0xD1CE ^ q.ultra.index() as u64, e.id.index() as u64);
                    (e.id, (h >> 40) as f32)
                })
                .collect();
            RankedList::from_scores(scores).truncated(ret.config.top_k)
        });
        assert!(
            report.pos_map[0] > 10.0,
            "PosMAP@10 = {:.2}",
            report.pos_map[0]
        );
        let pos_lift = report.avg_pos() / rand_report.avg_pos().max(0.1);
        let neg_lift = report.avg_neg() / rand_report.avg_neg().max(0.1);
        assert!(
            pos_lift > 5.0,
            "Pos lift over random = {pos_lift:.1}x (ret {:.2} vs random {:.2})",
            report.avg_pos(),
            rand_report.avg_pos()
        );
        // The model must concentrate positives harder than it (inevitably)
        // drags in the overlap-heavy negatives.
        assert!(
            pos_lift > neg_lift,
            "Pos lift {pos_lift:.1}x should exceed Neg lift {neg_lift:.1}x"
        );
    }

    #[test]
    fn rerank_reduces_negative_intrusion() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let mut ret = RetExpan::train(&world, quick_enc(), RetExpanConfig::default());
        let with = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        ret.config.rerank = false;
        let without = evaluate_method(&world, |_u, q| ret.expand(&world, q));
        assert!(
            with.avg_neg_map() <= without.avg_neg_map() + 1e-9,
            "rerank should not worsen NegMAP: {:.2} vs {:.2}",
            with.avg_neg_map(),
            without.avg_neg_map()
        );
    }

    #[test]
    fn preliminary_list_excludes_seeds_and_respects_top_k() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 0,
                ..quick_enc()
            },
            RetExpanConfig {
                top_k: 25,
                ..RetExpanConfig::default()
            },
        );
        let (_u, q) = world.queries().next().unwrap();
        let l0 = ret.preliminary_list(&world, q, None);
        assert_eq!(l0.len(), 25);
        for s in q.all_seeds() {
            assert_eq!(l0.rank_of(s), None);
        }
    }

    #[test]
    fn restricted_expansion_stays_in_pool() {
        let world = World::generate(WorldConfig::tiny()).unwrap();
        let ret = RetExpan::train(
            &world,
            EncoderConfig {
                epochs: 0,
                ..quick_enc()
            },
            RetExpanConfig::default(),
        );
        let (u, q) = world.queries().next().unwrap();
        let pool: Vec<EntityId> = u
            .pos_targets
            .iter()
            .chain(&u.neg_targets)
            .copied()
            .collect();
        let out = ret.expand_restricted(&world, q, Some(&pool));
        for e in out.entities() {
            assert!(pool.contains(&e));
        }
    }
}

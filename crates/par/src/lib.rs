//! `ultra-par` — deterministic data-parallel execution.
//!
//! Every hot path in this workspace (entity scoring, contrastive gradient
//! accumulation, eval fan-out) is embarrassingly parallel, but naive
//! threading breaks the byte-identity contract enforced by
//! `tests/determinism.rs`: floating-point addition is not associative, so
//! any reduction whose order depends on thread scheduling produces
//! different bits on different machines — or on the same machine twice.
//!
//! This crate makes parallelism safe to adopt by construction:
//!
//! * **Fixed chunking** — chunk boundaries are a pure function of the input
//!   *length* (never of the thread count or of scheduling), so the units of
//!   work are identical whether one thread or sixteen execute them.
//! * **Ordered assembly** — [`Pool::chunks_map_ordered`] concatenates chunk
//!   results in chunk order regardless of completion order.
//! * **Range dispatch** — [`Pool::ranges_map_ordered`] hands kernels the
//!   chunk's index *range* instead of an item slice, so callers whose items
//!   are just positions (embedding-matrix rows, candidate ids) never
//!   materialize an `O(N)` index vector. The slice APIs are shims over it,
//!   so both paths share one dispatch loop and one determinism argument.
//! * **Ordered reduction** — [`Pool::reduce_ordered`] folds each chunk
//!   sequentially and then combines the per-chunk accumulators in a fixed
//!   pairwise tree, so an `f32` sum is bit-identical at any thread count,
//!   including 1 (the single-threaded path runs the *same* chunked code).
//!
//! Workers are spawned scoped (`std::thread::scope`) per call and pull
//! chunks from an atomic counter. A [`Pool`] value therefore carries only
//! configuration — it is trivially reusable and `Copy` — while borrowed
//! inputs need no `'static` bound and the crate stays std-only and
//! unsafe-free. Spawn cost is real (~100µs per worker), so callers with
//! *light* per-item work gate small inputs down to one worker themselves
//! (e.g. `EntityEmbeddings::effective_pool`); that downgrade never changes
//! output bits because the one-worker path walks the same chunks in order.
//!
//! Thread count resolution, in priority order: [`set_threads`] override
//! (the CLI `--threads` flag), the `ULTRA_THREADS` environment variable,
//! then [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Upper bound on the number of chunks an input is split into. Bounding the
/// chunk count bounds per-call overhead (one channel message per chunk)
/// while still providing enough grain for work stealing.
pub const MAX_CHUNKS: usize = 64;

/// Minimum chunk length: below this, per-chunk overhead dominates the work.
/// Part of the chunk-boundary function, so changing it changes *which*
/// partial sums are formed — it is a determinism-relevant constant.
pub const MIN_CHUNK: usize = 16;

/// Hard cap on configurable worker threads.
const MAX_THREADS: usize = 256;

/// Process-wide thread-count override (0 = unset). Set by the CLI/serve
/// layers from `--threads`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `ULTRA_THREADS` parse (0 = unset/invalid).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("ULTRA_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    })
}

/// Overrides the global thread count (`0` restores automatic resolution).
/// Values are clamped to `[0, 256]`.
///
/// Because every primitive in this crate is thread-count-invariant in its
/// *output*, racing calls to `set_threads` can change how fast concurrent
/// work runs but never what it computes.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

/// Resolves the effective thread count: [`set_threads`] override, then
/// `ULTRA_THREADS`, then [`std::thread::available_parallelism`], then 1.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced >= 1 {
        return forced;
    }
    let env = env_threads();
    if env >= 1 {
        return env.min(MAX_THREADS);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Chunk length for an input of `len` items — a pure function of `len`
/// only, never of the thread count. All determinism guarantees rest on
/// this property.
pub fn chunk_len(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(MIN_CHUNK)
}

/// Number of chunks an input of `len` items splits into.
pub fn num_chunks(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(chunk_len(len))
    }
}

/// A deterministic scoped worker pool. Carries only the worker count, so it
/// is `Copy` and freely reusable; workers are scoped to each call.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (clamped to `[1, 256]`).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// A pool sized by the global [`threads`] resolution.
    pub fn global() -> Self {
        Self::new(threads())
    }

    /// The pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps fixed chunks of `items` through `f` and concatenates the chunk
    /// outputs in chunk order. `f` receives the chunk's start offset within
    /// `items` plus the chunk slice, and may return any number of results
    /// per chunk (blocked kernels typically return one result per item).
    ///
    /// Output is bit-identical at any worker count provided `f` itself is
    /// deterministic, because chunk boundaries depend only on `items.len()`
    /// and assembly order is chunk order.
    pub fn chunks_map_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        self.chunks_map_ordered_with(items, chunk_len(items.len()), f)
    }

    /// [`chunks_map_ordered`](Self::chunks_map_ordered) with an explicit
    /// chunk length. `cl` MUST be derived from `items.len()` alone (or be a
    /// constant) — never from the thread count — or the determinism
    /// contract breaks. Use `cl = 1` for heavy items (a full query
    /// expansion, a training sample) where the default [`MIN_CHUNK`] grain
    /// would serialize small inputs.
    pub fn chunks_map_ordered_with<T, R, F>(&self, items: &[T], cl: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        self.ranges_map_ordered_with(items.len(), cl, |r| {
            let start = r.start;
            f(start, &items[r])
        })
    }

    /// Maps fixed chunk *ranges* of a length-`len` index space through `f`
    /// and concatenates outputs in chunk order —
    /// [`chunks_map_ordered`](Self::chunks_map_ordered) without an item
    /// slice, for kernels whose "items" are just positions into shared
    /// structure (embedding-matrix rows, candidate ids). Chunk boundaries
    /// are the same function of `len` as the slice APIs', so a caller
    /// switching between the two forms keeps byte-identical output.
    pub fn ranges_map_ordered<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> Vec<R> + Sync,
    {
        self.ranges_map_ordered_with(len, chunk_len(len), f)
    }

    /// [`ranges_map_ordered`](Self::ranges_map_ordered) with an explicit
    /// chunk length (same contract as
    /// [`chunks_map_ordered_with`](Self::chunks_map_ordered_with): `cl`
    /// must be a function of `len` alone). Uniform boundaries are
    /// materialized once and handed to [`bounds_map_ordered`]
    /// (Self::bounds_map_ordered), the crate's single dispatch loop.
    pub fn ranges_map_ordered_with<R, F>(&self, len: usize, cl: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> Vec<R> + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let cl = cl.max(1);
        let nchunks = len.div_ceil(cl);
        let bounds: Vec<Range<usize>> = (0..nchunks)
            .map(|c| (c * cl)..((c + 1) * cl).min(len))
            .collect();
        self.bounds_map_ordered(&bounds, f)
    }

    /// Maps explicit chunk `bounds` through `f` and concatenates outputs in
    /// chunk order. `bounds` MUST be a pure function of the input (length
    /// and/or item costs — see [`weighted_boundaries`]), never of the
    /// thread count. This is the crate's single dispatch loop — every
    /// other mapping primitive is a shim over it.
    // ultra-lint: hot
    pub fn bounds_map_ordered<R, F>(&self, bounds: &[Range<usize>], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> Vec<R> + Sync,
    {
        let nchunks = bounds.len();
        if nchunks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            // Same chunked traversal as the parallel path, in chunk order.
            let mut out = Vec::new();
            for r in bounds {
                out.extend(f(r.start..r.end));
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
        let mut slots: Vec<Option<Vec<R>>> = Vec::new();
        slots.resize_with(nchunks, || None);
        std::thread::scope(|s| {
            for _ in 0..workers {
                // ultra-lint: allow(no-alloc-in-hot-loop) one sender clone per spawned worker — O(threads) setup, not per-item work
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                let bounds = &*bounds;
                s.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    let out = f(bounds[c].start..bounds[c].end);
                    if tx.send((c, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Workers deliver chunks in completion order; slots restore
            // chunk order. A worker panic drops its sender, ends this loop
            // early, and the scope re-raises the panic on exit.
            while let Ok((c, v)) = rx.recv() {
                if let Some(slot) = slots.get_mut(c) {
                    *slot = Some(v);
                }
            }
        });
        slots.into_iter().flatten().flatten().collect()
    }

    /// Maps each item through `f` in input order, with chunk boundaries
    /// derived from per-item `cost` estimates via [`weighted_boundaries`]
    /// instead of uniform lengths. Use when item work is skewed (a training
    /// example's cost scales with bag length × negative count) so a uniform
    /// split would leave one chunk carrying most of the work.
    ///
    /// Boundaries depend only on `items` (through `cost`), never on the
    /// worker count, so output is bit-identical at any thread count.
    pub fn map_ordered_weighted<T, R, C, F>(&self, items: &[T], cost: C, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        C: Fn(&T) -> u64,
        F: Fn(&T) -> R + Sync,
    {
        let costs: Vec<u64> = items.iter().map(&cost).collect();
        let bounds = weighted_boundaries(&costs, MAX_CHUNKS);
        self.bounds_map_ordered(&bounds, |r| r.map(|i| f(&items[i])).collect())
    }

    /// Runs `body` with a team of `threads - 1` persistent workers, each
    /// executing `kernel` on jobs submitted to its private lane. Unlike the
    /// per-call primitives above, the workers live for the whole `body`
    /// invocation, so a training loop dispatching thousands of small
    /// batches pays the ~100µs spawn cost once instead of per batch.
    ///
    /// Determinism is the caller's contract: the team moves jobs and
    /// results verbatim and imposes no ordering of its own, so callers must
    /// (a) derive the job split from the input alone and (b) reassemble
    /// results by job identity, exactly as with [`weighted_boundaries`].
    /// With one thread the team has zero workers and the caller runs every
    /// job inline — the same code path the contract is validated against.
    ///
    /// A panicking `kernel` is relayed: the payload is captured, sent back,
    /// and re-raised on the thread that calls [`WorkerTeam::recv`]. A lane
    /// whose worker died rejects further submissions (`submit` hands the
    /// job back) so callers can fall back to running the job inline.
    pub fn with_worker_team<J, R, F, B, T>(&self, kernel: F, body: B) -> T
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
        B: FnOnce(&WorkerTeam<J, R>) -> T,
    {
        let workers = self.threads.saturating_sub(1);
        let (rtx, rrx) = mpsc::channel();
        if workers == 0 {
            drop(rtx);
            return body(&WorkerTeam {
                txs: Vec::new(),
                rx: rrx,
            });
        }
        std::thread::scope(|s| {
            let kernel = &kernel;
            let mut txs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (jtx, jrx) = mpsc::channel::<J>();
                txs.push(jtx);
                let rtx = rtx.clone();
                s.spawn(move || {
                    while let Ok(job) = jrx.recv() {
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel(job)));
                        let died = out.is_err();
                        if rtx.send(out).is_err() || died {
                            break;
                        }
                    }
                });
            }
            drop(rtx);
            let team = WorkerTeam { txs, rx: rrx };
            body(&team)
            // `team` drops here: job senders close, workers drain and exit,
            // and the scope joins them (re-raising any unrelayed panic).
        })
    }

    /// Maps each item through `f`, preserving input order.
    pub fn map_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.chunks_map_ordered(items, |_, chunk| chunk.iter().map(&f).collect())
    }

    /// [`map_ordered`](Self::map_ordered) at one item per chunk, for items
    /// heavy enough (≳100µs) that per-chunk overhead is irrelevant and the
    /// default grain would leave threads idle on short inputs.
    pub fn map_ordered_each<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.chunks_map_ordered_with(items, 1, |_, chunk| chunk.iter().map(&f).collect())
    }

    /// Ordered reduction: each chunk is folded sequentially from a fresh
    /// `init()`, then the per-chunk accumulators are combined in a fixed
    /// pairwise tree — `(c0⊕c1) ⊕ (c2⊕c3) …` — whose shape depends only on
    /// the chunk count. `f32`/`f64` sums are therefore bit-identical at any
    /// worker count. Returns `init()` for empty input.
    pub fn reduce_ordered<T, A, I, F, C>(&self, items: &[T], init: I, fold: F, combine: C) -> A
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, &T) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let accs: Vec<A> = self.chunks_map_ordered(items, |_, chunk| {
            let mut a = init();
            for t in chunk {
                a = fold(a, t);
            }
            vec![a]
        });
        combine_tree(accs, &combine).unwrap_or_else(init)
    }
}

/// A panic payload captured on a worker thread, relayed to the consumer.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Handle to the persistent workers of [`Pool::with_worker_team`]. Each
/// worker owns a private job lane; all workers share one result channel.
pub struct WorkerTeam<J, R> {
    txs: Vec<mpsc::Sender<J>>,
    rx: mpsc::Receiver<Result<R, PanicPayload>>,
}

impl<J, R> WorkerTeam<J, R> {
    /// Number of live lanes (`pool.threads() - 1`; zero at one thread, in
    /// which case the caller runs every job inline).
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Sends `job` to worker `lane`. Returns the job back if the lane does
    /// not exist or its worker has died (panicked), so the caller can run
    /// it inline — which yields identical bits, since workers add nothing
    /// to the computation.
    pub fn submit(&self, lane: usize, job: J) -> Result<(), J> {
        match self.txs.get(lane) {
            Some(tx) => tx.send(job).map_err(|mpsc::SendError(j)| j),
            None => Err(job),
        }
    }

    /// Receives one completed result, in completion order (callers
    /// reassemble by job identity). Re-raises a worker panic here, on the
    /// consuming thread, instead of deadlocking the result loop. Returns
    /// `None` only once every worker has exited.
    pub fn recv(&self) -> Option<R> {
        match self.rx.recv() {
            Ok(Ok(r)) => Some(r),
            Ok(Err(payload)) => std::panic::resume_unwind(payload),
            Err(_) => None,
        }
    }
}

/// Splits `costs.len()` items into at most `max_chunks` contiguous ranges
/// whose summed costs are approximately balanced: a greedy scan closes a
/// chunk once it has absorbed `ceil(total / max_chunks)` cost. Zero costs
/// are treated as 1 so every item contributes and empty chunks cannot
/// occur.
///
/// The boundaries are a pure function of `costs` (never of the thread
/// count), making this the cost-weighted analogue of [`chunk_len`]: work
/// split along these ranges and reassembled in range order is bit-identical
/// at any worker count. At most `max_chunks` ranges are returned: every
/// closed chunk carries at least the target cost, so more than
/// `max_chunks - 1` of them cannot close before the total is exhausted.
pub fn weighted_boundaries(costs: &[u64], max_chunks: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = max_chunks.max(1) as u64;
    let total: u64 = costs.iter().map(|&c| c.max(1)).sum();
    let target = total.div_ceil(max_chunks);
    let mut bounds = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c.max(1);
        if acc >= target {
            bounds.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        bounds.push(start..n);
    }
    bounds
}

/// Combines accumulators pairwise, level by level, in a fixed order.
fn combine_tree<A>(mut level: Vec<A>, combine: &impl Fn(A, A) -> A) -> Option<A> {
    while level.len() > 1 {
        let mut nxt = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => nxt.push(combine(a, b)),
                None => nxt.push(a),
            }
        }
        level = nxt;
    }
    level.pop()
}

/// [`Pool::map_ordered`] on the globally configured pool.
pub fn par_map_ordered<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::global().map_ordered(items, f)
}

/// [`Pool::chunks_map_ordered`] on the globally configured pool.
pub fn par_chunks_map_ordered<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    Pool::global().chunks_map_ordered(items, f)
}

/// [`Pool::ranges_map_ordered`] on the globally configured pool.
pub fn par_ranges_map_ordered<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    Pool::global().ranges_map_ordered(len, f)
}

/// [`Pool::reduce_ordered`] on the globally configured pool.
pub fn par_reduce_ordered<T, A, I, F, C>(items: &[T], init: I, fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    Pool::global().reduce_ordered(items, init, fold, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_maps_to_empty_output() {
        let items: Vec<u32> = Vec::new();
        for t in [1, 2, 8] {
            assert!(Pool::new(t).map_ordered(&items, |x| x * 2).is_empty());
        }
        assert_eq!(num_chunks(0), 0);
    }

    #[test]
    fn empty_input_reduces_to_init() {
        let items: Vec<f32> = Vec::new();
        let sum = Pool::new(4).reduce_ordered(&items, || 7.5f32, |a, x| a + x, |a, b| a + b);
        assert_eq!(sum, 7.5);
    }

    #[test]
    fn map_matches_sequential_for_len_smaller_than_threads() {
        let items: Vec<u64> = (0..3).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(Pool::new(8).map_ordered(&items, |x| x * x), expect);
    }

    #[test]
    fn map_matches_sequential_when_len_is_not_a_chunk_multiple() {
        // 1037 = 64 * 16 + 13: last chunk is ragged.
        let items: Vec<i64> = (0..1037).collect();
        let expect: Vec<i64> = items.iter().map(|x| 3 * x - 1).collect();
        for t in [1, 2, 3, 8] {
            assert_eq!(Pool::new(t).map_ordered(&items, |x| 3 * x - 1), expect);
        }
    }

    #[test]
    fn chunk_boundaries_are_a_function_of_len_only() {
        for len in [1usize, 15, 16, 17, 1000, 1024, 1037, 100_000] {
            let cl = chunk_len(len);
            assert!(cl >= MIN_CHUNK);
            assert_eq!(num_chunks(len), len.div_ceil(cl));
            assert!(num_chunks(len) <= MAX_CHUNKS.max(1));
        }
    }

    #[test]
    fn chunks_map_sees_correct_offsets_and_slices() {
        let items: Vec<usize> = (0..777).collect();
        let out = Pool::new(4).chunks_map_ordered(&items, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    assert_eq!(x, start + i, "offset/slice mismatch");
                    x
                })
                .collect()
        });
        assert_eq!(out, items);
    }

    #[test]
    fn f32_sum_is_bit_identical_across_thread_counts() {
        // Values chosen to be order-sensitive under f32 addition: a naive
        // per-thread partition would produce different bits at different
        // thread counts.
        let items: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64 as usize) % 1000) as f32 * 1e-3 + 1e4)
            .collect();
        let sums: Vec<u32> = [1usize, 2, 5, 8, 16]
            .iter()
            .map(|&t| {
                Pool::new(t)
                    .reduce_ordered(&items, || 0.0f32, |a, x| a + x, |a, b| a + b)
                    .to_bits()
            })
            .collect();
        for s in &sums {
            assert_eq!(*s, sums[0], "sum bits differ across thread counts");
        }
    }

    #[test]
    fn vector_accumulators_reduce_in_fixed_order() {
        let items: Vec<f32> = (0..5000).map(|i| (i as f32).sin()).collect();
        let run = |t: usize| -> Vec<u32> {
            Pool::new(t)
                .reduce_ordered(
                    &items,
                    || vec![0.0f32; 4],
                    |mut a, x| {
                        for (i, v) in a.iter_mut().enumerate() {
                            *v += x * (i as f32 + 1.0);
                        }
                        a
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x += y;
                        }
                        a
                    },
                )
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        let base = run(1);
        assert_eq!(run(2), base);
        assert_eq!(run(8), base);
    }

    #[test]
    fn per_item_chunking_matches_default_chunking() {
        let items: Vec<u32> = (0..100).collect();
        let expect: Vec<u32> = items.iter().map(|x| x + 1).collect();
        for t in [1, 2, 8] {
            assert_eq!(Pool::new(t).map_ordered_each(&items, |x| x + 1), expect);
        }
    }

    #[test]
    fn range_dispatch_matches_slice_dispatch_bitwise() {
        let items: Vec<f32> = (0..5_000).map(|i| (i as f32).cos()).collect();
        for t in [1usize, 2, 8] {
            let pool = Pool::new(t);
            let via_slice: Vec<u32> = pool.chunks_map_ordered(&items, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, x)| (x * (start + i) as f32).to_bits())
                    .collect()
            });
            let via_range: Vec<u32> = pool.ranges_map_ordered(items.len(), |r| {
                r.map(|i| (items[i] * i as f32).to_bits()).collect()
            });
            assert_eq!(via_range, via_slice, "diverged at {t} threads");
        }
    }

    #[test]
    fn range_dispatch_handles_empty_and_ragged_lengths() {
        assert!(Pool::new(4)
            .ranges_map_ordered(0, |r| r.collect::<Vec<usize>>())
            .is_empty());
        for len in [1usize, 15, 16, 17, 1037] {
            let out = Pool::new(3).ranges_map_ordered(len, |r| r.collect::<Vec<usize>>());
            let expect: Vec<usize> = (0..len).collect();
            assert_eq!(out, expect, "len {len}");
        }
    }

    #[test]
    fn set_threads_overrides_and_resets() {
        set_threads(3);
        assert_eq!(threads(), 3);
        let pool = Pool::global();
        assert_eq!(pool.threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn pool_clamps_worker_count() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(100_000).threads(), 256);
    }

    #[test]
    fn weighted_boundaries_cover_input_in_order() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![5],
            vec![1, 1, 1, 1],
            vec![100, 1, 1, 1, 1, 1, 1, 100],
            vec![0, 0, 0, 0, 0, 0, 0],
            (0..1000).map(|i| (i % 17) as u64).collect(),
        ];
        for costs in &cases {
            for max in [1usize, 2, 4, 64] {
                let bounds = weighted_boundaries(costs, max);
                assert!(bounds.len() <= max, "{costs:?} split into {bounds:?}");
                let mut next = 0;
                for r in &bounds {
                    assert_eq!(r.start, next, "gap/overlap in {bounds:?}");
                    assert!(r.end > r.start, "empty chunk in {bounds:?}");
                    next = r.end;
                }
                assert_eq!(next, costs.len(), "items dropped in {bounds:?}");
                // Pure function of the input: same costs, same boundaries.
                assert_eq!(bounds, weighted_boundaries(costs, max));
            }
        }
    }

    #[test]
    fn weighted_map_matches_uniform_map_bitwise() {
        let items: Vec<f32> = (0..3000).map(|i| (i as f32).sin() * 10.0).collect();
        let expect: Vec<u32> = Pool::new(1)
            .map_ordered(&items, |x| (x * 1.0001 + 3.7).to_bits())
            .to_vec();
        for t in [1usize, 2, 8] {
            let got = Pool::new(t).map_ordered_weighted(
                &items,
                |x| (x.abs() * 100.0) as u64,
                |x| (x * 1.0001 + 3.7).to_bits(),
            );
            assert_eq!(got, expect, "diverged at {t} threads");
        }
    }

    #[test]
    fn worker_team_round_trips_jobs_on_every_lane() {
        for t in [2usize, 4, 8] {
            let pool = Pool::new(t);
            let n_jobs = 37usize;
            let mut got = pool.with_worker_team(
                |j: usize| (j, j * j),
                |team| {
                    assert_eq!(team.workers(), t - 1);
                    let mut pending = 0;
                    for j in 0..n_jobs {
                        assert!(team.submit(j % team.workers(), j).is_ok());
                        pending += 1;
                    }
                    let mut out = Vec::new();
                    for _ in 0..pending {
                        match team.recv() {
                            Some(r) => out.push(r),
                            None => break,
                        }
                    }
                    out
                },
            );
            got.sort_unstable();
            let expect: Vec<(usize, usize)> = (0..n_jobs).map(|j| (j, j * j)).collect();
            assert_eq!(got, expect, "lost or corrupted jobs at {t} threads");
        }
    }

    #[test]
    fn worker_team_has_no_workers_at_one_thread() {
        Pool::new(1).with_worker_team(
            |j: usize| j,
            |team| {
                assert_eq!(team.workers(), 0);
                // No lanes: submit hands the job back for inline execution.
                assert_eq!(team.submit(0, 42), Err(42));
            },
        );
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn worker_team_relays_worker_panics_to_recv() {
        Pool::new(2).with_worker_team(
            |_j: usize| -> usize { panic!("kernel exploded") },
            |team| {
                assert!(team.submit(0, 1).is_ok());
                let _ = team.recv();
            },
        );
    }

    #[test]
    fn combine_tree_order_is_fixed() {
        // With strings, the tree shape is directly observable:
        // ((a·b)·(c·d))·e for five leaves.
        let leaves: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let joined = combine_tree(leaves, &|a, b| format!("({a}{b})"));
        assert_eq!(joined.as_deref(), Some("(((ab)(cd))e)"));
    }
}

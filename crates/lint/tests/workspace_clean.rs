//! The tier-1 gate: the workspace must be free of un-allowlisted ultra-lint
//! findings. `cargo test` runs this, so a new violation (or a stale
//! `lint.toml` entry) fails the build with the same `file:line` diagnostics
//! the CLI prints.

use std::path::Path;
use ultra_lint::run_workspace;

#[test]
fn workspace_has_no_unallowed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_workspace(&root).expect("ultra-lint must run");
    assert!(
        report.files_scanned > 50,
        "scan looks incomplete: {} files",
        report.files_scanned
    );

    let mut failure = String::new();
    for d in &report.violations {
        failure.push_str(&format!("{d}\n"));
    }
    for s in &report.stale_allows {
        failure.push_str(&format!("stale lint.toml entry: {s}\n"));
    }
    assert!(
        report.violations.is_empty() && report.stale_allows.is_empty(),
        "ultra-lint found problems (fix them or allowlist with a reason in lint.toml):\n{failure}"
    );
}

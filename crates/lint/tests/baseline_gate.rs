//! End-to-end differential gate: runs the real `ultra-lint` binary against
//! a scratch workspace containing a tainted flow, snapshots it with
//! `--write-baseline`, verifies `--baseline` passes on the snapshot, then
//! introduces a fresh tainted flow and verifies the gate fails on — and
//! only flags — the new finding.

use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch workspace under the target directory, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("gate-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
        Scratch { root }
    }

    fn write(&self, rel: &str, content: &str) {
        std::fs::write(self.root.join(rel), content).expect("write");
    }

    fn lint(&self, extra: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_ultra-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("run ultra-lint")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const TAINTED: &str = "\
fn collect(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

fn rank(m: &HashMap<u64, f32>) -> RankedList {
    RankedList::from_sorted(collect(m))
}
";

const FRESH_FLOW: &str = "
fn rank_again(m: &HashMap<u64, f32>) -> RankedList {
    let pairs = collect(m);
    RankedList::from_scores(pairs)
}
";

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn parse(out: &Output) -> Value {
    let text = stdout(out);
    serde_json::from_str(text.trim()).unwrap_or_else(|e| panic!("invalid JSON ({e:?}): {text}"))
}

fn violations(v: &Value) -> Vec<&Value> {
    v.get("violations")
        .and_then(Value::as_array)
        .expect("violations array")
        .iter()
        .collect()
}

fn str_field<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).expect("string field")
}

#[test]
fn baseline_round_trip_gates_only_new_findings() {
    let ws = Scratch::new("round-trip");
    ws.write("crates/core/src/lib.rs", TAINTED);

    // 1. Without a baseline the tainted flow fails the run, and the JSON
    //    report carries the full chain and the taint origin.
    let out = ws.lint(&["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let v = parse(&out);
    assert_eq!(v.get("version").and_then(Value::as_u64), Some(3));
    let timing = v.get("timing").expect("timing section");
    for phase in ["lex_parse_ms", "analyze_ms", "total_ms"] {
        assert!(
            timing.get(phase).and_then(Value::as_u64).is_some(),
            "{phase} in {timing:?}"
        );
    }
    let l10: Vec<&Value> = violations(&v)
        .into_iter()
        .filter(|d| str_field(d, "rule") == "no-tainted-ranking")
        .collect();
    assert_eq!(l10.len(), 1, "{}", stdout(&out));
    let chain: Vec<&str> = l10[0]
        .get("chain")
        .and_then(Value::as_array)
        .expect("chain")
        .iter()
        .map(|f| str_field(f, "function"))
        .collect();
    assert_eq!(chain, ["collect", "rank"], "full chain in the JSON report");
    let origin = l10[0].get("origin").expect("origin field");
    assert_eq!(
        origin.get("line").and_then(Value::as_u64),
        Some(3),
        "origin is the hash iteration"
    );

    // 2. Snapshot the findings; the write itself exits 0.
    let base = ws.root.join("lint-baseline.json");
    let base = base.to_str().expect("utf-8 path").to_string();
    let out = ws.lint(&["--write-baseline", &base]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));

    // 3. Against the snapshot the same workspace passes: zero new findings.
    let out = ws.lint(&["--baseline", &base, "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let v = parse(&out);
    let summary = v.get("baseline").expect("baseline summary");
    assert_eq!(summary.get("new").and_then(Value::as_u64), Some(0));
    assert!(violations(&v)
        .iter()
        .all(|d| d.get("new").and_then(Value::as_bool) == Some(false)));

    // 4. A fresh tainted flow fails the gate, and only it is marked new.
    let grown = format!("{TAINTED}{FRESH_FLOW}");
    ws.write("crates/core/src/lib.rs", &grown);
    let out = ws.lint(&["--baseline", &base, "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let v = parse(&out);
    let summary = v.get("baseline").expect("baseline summary");
    assert_eq!(summary.get("new").and_then(Value::as_u64), Some(1));
    let new_rules: Vec<&str> = violations(&v)
        .into_iter()
        .filter(|d| d.get("new").and_then(Value::as_bool) == Some(true))
        .map(|d| str_field(d, "rule"))
        .collect();
    assert_eq!(new_rules, ["no-tainted-ranking"], "{}", stdout(&out));

    // 5. Text mode labels the same split for humans.
    let out = ws.lint(&["--baseline", &base]);
    let text = stdout(&out);
    assert!(text.contains("[NEW: not in baseline]"), "{text}");
    assert!(text.contains("[known: in baseline]"), "{text}");
}

#[test]
fn list_rules_prints_the_full_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_ultra-lint"))
        .arg("--list-rules")
        .output()
        .expect("run ultra-lint");
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for id in [
        "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14",
        "L15",
    ] {
        assert!(
            text.lines()
                .any(|l| l.split_whitespace().next() == Some(id)),
            "missing {id} in:\n{text}"
        );
    }
    assert!(text.contains("no-tainted-ranking"), "{text}");
}

//! Each fixture under `tests/fixtures/` must trigger exactly its rule's
//! expected findings — this pins both directions: the rules fire on real
//! violations, and they stay quiet on the adjacent compliant code.

use std::path::Path;
use ultra_lint::check_source;
use ultra_lint::rules::Rule;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Fixtures are checked as if they were library files inside a
/// ranked-output crate, so every rule's scope applies.
fn check(name: &str) -> Vec<(Rule, u32)> {
    let diags = check_source(&format!("crates/core/src/{name}"), &fixture(name));
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn l1_fixture_fires_twice_outside_tests() {
    let hits = check("l1_unseeded_rng.rs");
    let l1: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoUnseededRng)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l1,
        vec![5, 6],
        "thread_rng + from_entropy, not the test mod"
    );
}

#[test]
fn l2_fixture_fires_on_each_iteration_site() {
    let hits = check("l2_hash_iteration.rs");
    let l2: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoHashIterationOrder)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l2,
        vec![12, 21, 25],
        "for-loop, .iter() on a set, .keys() on a field"
    );
}

#[test]
fn l3_fixture_fires_on_each_comparator() {
    let hits = check("l3_nan_unwrap_sort.rs");
    let l3: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoNanUnwrapSort)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(l3, vec![5, 10, 16], "sort_by, sort_unstable_by, max_by");
}

#[test]
fn l4_fixture_fires_on_unwraps_and_macros() {
    let hits = check("l4_panic_in_lib.rs");
    let l4: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoPanicInLib)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l4,
        vec![5, 6, 12, 14],
        "unwrap, expect, panic!, unreachable! — but no *_or variants, no tests"
    );
}

#[test]
fn l5_fixture_fires_on_clock_reads_only() {
    let hits = check("l5_wallclock.rs");
    let l5: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoWallclockInScoring)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l5,
        vec![7, 14],
        "Instant::now and SystemTime::now, not the use item"
    );
}

#[test]
fn l6_fixture_fires_on_spawning_constructs_only() {
    let hits = check("l6_raw_thread_spawn.rs");
    let l6: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoRawThreadSpawn)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l6,
        vec![6, 8, 16],
        "spawn, scope, Builder — not sleep/available_parallelism, not tests"
    );
}

#[test]
fn l6_fixture_is_quiet_inside_the_execution_layer() {
    let diags =
        ultra_lint::check_source("crates/par/src/lib.rs", &fixture("l6_raw_thread_spawn.rs"));
    assert!(diags.iter().all(|d| d.rule != Rule::NoRawThreadSpawn));
}

#[test]
fn l7_fixture_reports_the_three_deep_chain_and_spares_the_guarded_branch() {
    // Checked as a serve API file so `handle_*` functions count as entries.
    let diags = check_source("crates/serve/src/api.rs", &fixture("l7_panic_chain.rs"));
    let l7: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::NoPanicReachableFromServe)
        .collect();
    assert_eq!(l7.len(), 1, "{diags:?}");
    let d = l7[0];
    assert_eq!(d.line, 13, "the unwrap three calls below the entry");
    let names: Vec<&str> = d.chain.iter().map(|c| c.function.as_str()).collect();
    assert_eq!(
        names,
        vec!["handle_widget", "step_one", "step_two"],
        "full entry-to-panic chain; `handle_contained`'s guarded subtree is quiet"
    );
    // The rendered diagnostic carries the chain for humans too.
    assert!(format!("{d}").contains("handle_widget"));
}

#[test]
fn l8_fixture_reports_the_order_inversion_once() {
    let diags = check_source("crates/serve/src/pair.rs", &fixture("l8_lock_order.rs"));
    let l8: Vec<_> = diags.iter().filter(|d| d.rule == Rule::LockOrder).collect();
    assert_eq!(
        l8.len(),
        1,
        "one finding for the pair, not one per method: {diags:?}"
    );
    assert!(
        l8[0].message.contains("`alpha` and `beta`"),
        "names both locks: {}",
        l8[0].message
    );
}

#[test]
fn l9_fixture_fires_on_each_loop_allocation_in_the_hot_fn_only() {
    let hits = check("l9_hot_alloc.rs");
    let l9: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::NoAllocInHotLoop)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l9,
        vec![8, 9],
        "push + format! in the hot loop; the cold twin stays quiet"
    );
}

#[test]
fn fixtures_outside_lib_scope_relax_scoped_rules() {
    // The same L4 fixture seen as a test file produces no panic findings…
    let as_test = check_source("tests/l4_panic_in_lib.rs", &fixture("l4_panic_in_lib.rs"));
    assert!(as_test.iter().all(|d| d.rule != Rule::NoPanicInLib));
    // …and the L2 fixture outside a ranked crate produces no order findings.
    let as_lm = check_source("crates/lm/src/l2.rs", &fixture("l2_hash_iteration.rs"));
    assert!(as_lm.iter().all(|d| d.rule != Rule::NoHashIterationOrder));
}

#[test]
fn l10_fixture_reports_the_three_deep_taint_chain_and_spares_the_sorted_twin() {
    let diags = check_source("crates/core/src/l10.rs", &fixture("l10_tainted_ranking.rs"));
    let l10: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::NoTaintedRanking)
        .collect();
    assert_eq!(l10.len(), 1, "{diags:#?}");
    let d = l10[0];
    assert_eq!(d.line, 19, "fires at the RankedList construction");
    let names: Vec<&str> = d.chain.iter().map(|c| c.function.as_str()).collect();
    assert_eq!(
        names,
        vec!["collect_scores", "assemble", "rank"],
        "full source-to-sink chain; `rank_sorted` stays quiet"
    );
    let origin = d.origin.as_ref().expect("L10 carries a taint origin");
    assert_eq!(origin.line, 6, "origin is the hash iteration");
    assert!(origin.desc.contains("hash-ordered"), "{}", origin.desc);
    // The rendered diagnostic tells the whole story for humans too.
    let text = format!("{d}");
    assert!(text.contains("source:"), "{text}");
    assert!(text.contains("collect_scores"), "{text}");
    assert!(text.contains("assemble"), "{text}");
}

#[test]
fn l11_fixture_fires_on_underived_seeds_only() {
    let hits = check("l11_unseeded_construction.rs");
    let l11: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::SeededRngOnly)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l11,
        vec![5, 9],
        "raw argument + hardcoded literal; the cfg/query-derived twins are quiet"
    );
}

#[test]
fn l13_fixture_flags_blocking_and_nesting_but_not_the_dropped_guard() {
    let diags = check_source(
        "crates/core/src/l13.rs",
        &fixture("l13_blocking_under_lock.rs"),
    );
    let l13: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::NoBlockingUnderLock)
        .collect();
    let mut sinks: Vec<u32> = l13.iter().map(|d| d.line).collect();
    sinks.sort_unstable();
    assert_eq!(
        sinks,
        vec![15, 30, 45, 57],
        "direct sleep, match-temporary sleep, nested `side` lock, callee sleep: {l13:#?}"
    );
    // The early-drop twin must NOT fire: no finding originates at its
    // guard acquisition (line 20), because `drop(g)` ends the live range
    // before the sleep.
    assert!(
        l13.iter()
            .all(|d| d.origin.as_ref().is_some_and(|o| o.line != 20)),
        "guard-dropped-early false positive: {l13:#?}"
    );
    // The match-temporary guard fires with its acquisition as origin and
    // its arm braces as the live range.
    let tmp = l13.iter().find(|d| d.line == 30).expect("match arm sink");
    assert_eq!(tmp.origin.as_ref().expect("origin").line, 28);
    let region = tmp.region.as_ref().expect("region");
    assert!(region.label.contains("state"), "{}", region.label);
    assert!(
        region.start_line <= 29 && region.end_line >= 34,
        "live range spans the match arms: {region:?}"
    );
    // The interprocedural case carries the caller→callee chain.
    let deep = l13.iter().find(|d| d.line == 57).expect("callee sink");
    let names: Vec<&str> = deep.chain.iter().map(|c| c.function.as_str()).collect();
    assert_eq!(names, vec!["blocks_in_a_callee", "slow_helper"]);
    // And the nested acquisition names both locks.
    let nested = l13.iter().find(|d| d.line == 45).expect("nested lock");
    assert!(
        nested.message.contains("`side`") && nested.message.contains("`state`"),
        "{}",
        nested.message
    );
}

#[test]
fn l14_fixture_flags_the_guard_spanning_the_hot_loop_only() {
    let diags = check_source(
        "crates/core/src/l14.rs",
        &fixture("l14_guard_across_hot_loop.rs"),
    );
    let l14: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::NoGuardAcrossHotLoop)
        .collect();
    assert_eq!(l14.len(), 1, "{diags:#?}");
    let d = l14[0];
    assert_eq!(d.line, 13, "fires at the guard acquisition");
    let region = d.region.as_ref().expect("region is the spanned loop");
    assert_eq!((region.start_line, region.end_line), (15, 17));
    assert!(
        d.message.contains("hot loop"),
        "names the loop: {}",
        d.message
    );
}

#[test]
fn l15_fixture_flags_the_drifted_pair_with_both_sites() {
    let diags = check_source("crates/core/src/l15.rs", &fixture("l15_serde_drift.rs"));
    let l15: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::SerdeSymmetry)
        .collect();
    assert_eq!(l15.len(), 1, "only the Record pair drifts: {diags:#?}");
    let d = l15[0];
    assert_eq!(d.line, 11, "writer op site");
    assert!(
        d.message.contains("`u32`") && d.message.contains("`u64`"),
        "{}",
        d.message
    );
    assert_eq!(
        d.origin.as_ref().expect("reader site").line,
        16,
        "origin is the mismatched reader op"
    );
    let region = d.region.as_ref().expect("region is the reader fn");
    assert!(region.label.contains("from_bytes"), "{}", region.label);
    assert_eq!((region.start_line, region.end_line), (15, 19));
}

/// L15 mutation self-test: flip one `read_u32` to `read_u64` in the clean
/// header pair and rerun in-process — exactly that pair must light up, and
/// nothing else may change.
#[test]
fn l15_mutation_flips_exactly_the_mutated_pair() {
    let clean = fixture("l15_serde_drift.rs");
    let baseline: Vec<_> = check_source("crates/core/src/l15.rs", &clean)
        .into_iter()
        .filter(|d| d.rule == Rule::SerdeSymmetry)
        .collect();
    assert_eq!(baseline.len(), 1, "the seeded Record drift only");

    let mutated = clean.replacen("read_u32", "read_u64", 1);
    assert_ne!(mutated, clean, "mutation must land");
    let after: Vec<_> = check_source("crates/core/src/l15.rs", &mutated)
        .into_iter()
        .filter(|d| d.rule == Rule::SerdeSymmetry)
        .collect();
    assert_eq!(after.len(), 2, "one new finding: {after:#?}");
    let new: Vec<_> = after
        .iter()
        .filter(|d| baseline.iter().all(|b| b.line != d.line))
        .collect();
    assert_eq!(new.len(), 1, "{after:#?}");
    assert!(
        new[0].message.contains("`write_header`") && new[0].message.contains("`read_header`"),
        "the mutated pair, not any other: {}",
        new[0].message
    );
    assert!(
        new[0].message.contains("`u32`") && new[0].message.contains("`u64`"),
        "width drift named: {}",
        new[0].message
    );
}

#[test]
fn l12_fixture_fires_on_the_hash_ordered_float_reduction_only() {
    let hits = check("l12_unordered_float_reduction.rs");
    let l12: Vec<u32> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::OrderedFloatReduction)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        l12,
        vec![7],
        "float += over the HashMap; BTreeMap and integer twins are quiet"
    );
    let diags = check_source(
        "crates/core/src/l12.rs",
        &fixture("l12_unordered_float_reduction.rs"),
    );
    let d = diags
        .iter()
        .find(|d| d.rule == Rule::OrderedFloatReduction)
        .expect("l12 finding");
    assert!(
        d.message.contains("line 6"),
        "names the loop: {}",
        d.message
    );
}

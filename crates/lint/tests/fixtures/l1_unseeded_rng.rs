// Fixture: L1 no-unseeded-rng must fire on OS-entropy constructors in
// non-test code and stay quiet inside #[cfg(test)].

fn entropy_in_lib() -> u64 {
    let mut rng = rand::thread_rng(); // <- violation
    let from = StdRng::from_entropy(); // <- violation
    let _ = from;
    rng.gen()
}

fn seeded_is_fine() -> u64 {
    let mut rng = ultra_core::rng::derive_rng(42, stream_label("fixture"));
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_entropy() {
        let mut rng = rand::thread_rng(); // allowed: test code
        let _ = rng;
    }
}

//! L7 fixture: a panic source three calls deep from a serve entry point,
//! plus a `catch_unwind`-guarded branch that must stay quiet.

pub fn handle_widget(input: &str) -> usize {
    step_one(input)
}

fn step_one(input: &str) -> usize {
    step_two(input)
}

fn step_two(input: &str) -> usize {
    input.parse::<usize>().unwrap()
}

pub fn handle_contained(input: &str) -> usize {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| risky(input)));
    result.unwrap_or(0)
}

fn risky(input: &str) -> usize {
    input.len() + explode()
}

fn explode() -> usize {
    panic!("contained by the entry's catch_unwind")
}

//! L12 fixture: float accumulation inside a loop over a hash-ordered
//! collection; the `BTreeMap` and integer twins are silent.

fn tainted_total(weights: &HashMap<u64, f32>) -> f32 {
    let mut sum = 0.0;
    for (_, w) in weights.iter() {
        sum += *w;
    }
    sum
}

fn ordered_total(weights: &BTreeMap<u64, f32>) -> f32 {
    let mut sum = 0.0;
    for (_, w) in weights.iter() {
        sum += *w;
    }
    sum
}

fn counting_is_exact(weights: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_, w) in weights.iter() {
        total += *w;
    }
    total
}

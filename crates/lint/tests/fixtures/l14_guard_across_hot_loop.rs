//! L14 fixture: a guard held across an entire hot loop; the twin that
//! acquires inside the loop body must stay quiet.

use std::sync::Mutex;

pub struct Stats {
    totals: Mutex<Vec<f32>>,
}

impl Stats {
    // ultra-lint: hot
    pub fn accumulate_under_guard(&self, xs: &[f32]) -> f32 {
        let g = self.totals.lock().expect("totals");
        let mut sum = 0.0;
        for &x in xs {
            sum += x + g[0];
        }
        sum
    }

    // ultra-lint: hot
    pub fn accumulate_inside_loop(&self, xs: &[f32]) -> f32 {
        let mut sum = 0.0;
        for &x in xs {
            let g = self.totals.lock().expect("totals");
            sum += x + g[0];
        }
        sum
    }
}

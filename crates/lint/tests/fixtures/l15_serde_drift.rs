//! L15 fixture: the `Record` pair drifts (`u32` written, `u64` read);
//! the header pair below is symmetric and must stay quiet.

pub struct Record {
    id: u32,
    score: f32,
}

impl Record {
    pub fn to_bytes(&self, w: &mut ByteWriter) {
        w.u32(self.id);
        w.f32(self.score);
    }

    pub fn from_bytes(r: &mut ByteReader) -> Record {
        let id = r.u64()? as u32;
        let score = r.f32()?;
        Record { id, score }
    }
}

pub fn write_header(w: &mut ByteWriter, count: u32, seed: u64) {
    write_u32(w, count);
    write_u64(w, seed);
}

pub fn read_header(r: &mut ByteReader) -> (u32, u64) {
    let count = read_u32(r);
    let seed = read_u64(r);
    (count, seed)
}

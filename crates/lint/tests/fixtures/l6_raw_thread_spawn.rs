// Fixture: L6 no-raw-thread-spawn must flag ad-hoc std::thread use in
// library code — data parallelism goes through ultra_par::Pool so that
// outputs stay byte-identical at any thread count.

fn fan_out(items: &[f32]) -> Vec<f32> {
    let handle = std::thread::spawn(move || heavy()); // <- violation
    let _ = handle;
    std::thread::scope(|s| {
        // ^ violation (scope is spawning machinery too)
        let _ = s;
    });
    items.to_vec()
}

fn named_worker() {
    let b = std::thread::Builder::new(); // <- violation
    let _ = b;
}

fn sleeping_is_fine(d: std::time::Duration) {
    std::thread::sleep(d);
    let _ = std::thread::available_parallelism();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn_freely() {
        let h = std::thread::spawn(|| 1 + 1);
        assert_eq!(h.join().unwrap(), 2);
    }
}

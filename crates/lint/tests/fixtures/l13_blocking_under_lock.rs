//! L13 fixture: blocking calls and nested acquisitions reachable while a
//! guard is live; the early-drop and scope-exit twins must stay quiet.

use std::sync::Mutex;
use std::time::Duration;

pub struct Shared {
    state: Mutex<u32>,
    side: Mutex<u32>,
}

impl Shared {
    pub fn sleeps_under_guard(&self) -> u32 {
        let g = self.state.lock().expect("state");
        std::thread::sleep(Duration::from_millis(5));
        *g
    }

    pub fn drops_before_sleeping(&self) -> u32 {
        let g = self.state.lock().expect("state");
        let v = *g;
        drop(g);
        std::thread::sleep(Duration::from_millis(5));
        v
    }

    pub fn matches_on_temporary(&self) -> u32 {
        match self.state.lock() {
            Ok(g) => {
                std::thread::sleep(Duration::from_millis(5));
                *g
            }
            Err(_) => 0,
        }
    }

    pub fn blocks_in_a_callee(&self) -> u32 {
        let g = self.state.lock().expect("state");
        slow_helper();
        *g
    }

    pub fn nests_the_side_lock(&self) -> u32 {
        let g = self.state.lock().expect("state");
        let s = self.side.lock().expect("side");
        *g + *s
    }

    pub fn sequential_locks(&self) -> u32 {
        let a = { *self.state.lock().expect("state") };
        let b = *self.side.lock().expect("side");
        a + b
    }
}

fn slow_helper() {
    std::thread::sleep(Duration::from_millis(5));
}

// Fixture: L5 no-wallclock-in-scoring must flag wall-clock reads in library
// code — scores must be pure functions of (input, seed).

use std::time::{Instant, SystemTime};

fn timed_score(x: f64) -> f64 {
    let t0 = Instant::now(); // <- violation
    let s = x * 2.0;
    let _ = t0.elapsed();
    s
}

fn timestamped(x: f64) -> (f64, SystemTime) {
    (x, SystemTime::now()) // <- violation (any SystemTime use)
}

fn pure_scoring_is_fine(x: f64, seed: u64) -> f64 {
    x * (seed as f64).sqrt()
}

// Fixture: L4 no-panic-in-lib must flag panicking calls in non-test library
// code (checked as if this file were crates/<x>/src/<f>.rs).

fn unwraps(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // <- violation
    let b = r.expect("always ok"); // <- violation
    a + b
}

fn macros(flag: bool) -> u32 {
    if flag {
        panic!("boom"); // <- violation
    }
    unreachable!() // <- violation
}

fn non_panicking_variants(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

fn propagating_is_fine(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let x: Option<u32> = Some(3);
        assert_eq!(x.unwrap(), 3); // allowed: test code
    }
}

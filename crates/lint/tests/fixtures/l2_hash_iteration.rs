// Fixture: L2 no-hash-iteration-order must flag iteration over hash-ordered
// collections (checked as if this file lived in a ranked-output crate).

use std::collections::{HashMap, HashSet};

struct Index {
    postings: HashMap<u32, Vec<u32>>,
}

fn iterate_map(counts: HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    for (k, v) in &counts {
        // <- violation: for-loop over a HashMap
        out.push((*k, *v));
    }
    out
}

fn iterate_set() -> Vec<u32> {
    let seen: HashSet<u32> = HashSet::new();
    seen.iter().copied().collect() // <- violation: .iter() on a HashSet
}

fn field_iteration(idx: &Index) -> usize {
    idx.postings.keys().count() // <- violation: .keys() on a HashMap field
}

fn point_lookups_are_fine(counts: &HashMap<u32, f64>) -> Option<f64> {
    counts.get(&7).copied()
}

fn btree_is_fine(m: std::collections::BTreeMap<u32, f64>) -> Vec<u32> {
    m.keys().copied().collect()
}

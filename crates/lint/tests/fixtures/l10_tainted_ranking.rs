//! L10 fixture: hash-ordered iteration flows through two helpers into a
//! `RankedList`; the sorted twin next to it is silent.

fn collect_scores(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

fn assemble(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let pairs = collect_scores(m);
    pairs
}

fn rank(m: &HashMap<u64, f32>) -> RankedList {
    let pairs = assemble(m);
    RankedList::from_sorted(pairs)
}

fn rank_sorted(m: &HashMap<u64, f32>) -> RankedList {
    let mut pairs = assemble(m);
    pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    RankedList::from_sorted(pairs)
}

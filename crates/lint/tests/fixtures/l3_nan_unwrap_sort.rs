// Fixture: L3 no-nan-unwrap-sort must flag partial_cmp-based comparators
// that unwrap or default on NaN.

fn sort_panics_on_nan(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // <- violation
}

fn sort_breaks_total_order(v: &mut [(u32, f32)]) {
    v.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1) // <- violation
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn max_by_panics(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).expect("NaN")) // <- violation
}

fn total_cmp_is_fine(v: &mut Vec<f64>) {
    v.sort_by(f64::total_cmp);
    v.sort_by(|a, b| b.total_cmp(a));
}

fn partial_cmp_outside_comparators_is_fine(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Less)
}

//! L8 fixture: two mutex fields acquired in both orders across two methods.
//! `consistent` repeats the canonical order and must add no second finding.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().expect("alpha");
        let b = self.beta.lock().expect("beta");
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().expect("beta");
        let a = self.alpha.lock().expect("alpha");
        *a - *b
    }

    pub fn consistent(&self) -> u32 {
        let a = self.alpha.lock().expect("alpha");
        let b = self.beta.lock().expect("beta");
        *a * *b
    }
}

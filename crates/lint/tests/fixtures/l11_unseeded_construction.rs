//! L11 fixture: RNG creation sites must take a config/query-derived seed;
//! the derived twins are silent.

fn fresh(x: u64) -> UltraRng {
    UltraRng::seed_from_u64(x)
}

fn hardcoded() -> UltraRng {
    UltraRng::seed_from_u64(0xdead_beef)
}

fn derived(cfg: &RunConfig) -> UltraRng {
    UltraRng::seed_from_u64(mix_seed(cfg.seed, stream_label("fixture")))
}

fn threaded(query: &Query) -> UltraRng {
    derive_rng(query.seed, 7)
}

//! L9 fixture: allocation calls inside the loop of a hot-marked kernel;
//! the unmarked twin below must stay quiet.

// ultra-lint: hot
pub fn doubled_hot(xs: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    for &x in xs {
        out.push(x * 2.0);
        let label = format!("{x}");
        let _ = label;
    }
    out
}

pub fn doubled_cold(xs: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    for &x in xs {
        out.push(x);
    }
    out
}

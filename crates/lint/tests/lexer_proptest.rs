//! Property tests for the lexer: `lex` must terminate without panicking on
//! arbitrary input, and the token stream it produces must respect cheap
//! structural invariants (in-order line numbers, lines within the source).
//!
//! Two generators attack from different angles: a character soup biased
//! toward lexer-relevant bytes (quotes, escapes, comment openers), and a
//! fragment soup splicing together *partial* Rust constructs — unterminated
//! strings, half-open block comments, dangling raw-string guards — which a
//! uniform character generator would almost never assemble.

use proptest::prelude::*;
use ultra_lint::lexer::{lex, Lexed};

/// Characters the lexer treats specially, heavily over-represented relative
/// to uniform sampling so literal/comment state machines actually trigger.
const ALPHABET: &[char] = &[
    '"', '\'', '\\', 'b', 'r', '#', '/', '*', '!', '{', '}', '(', ')', '<', '>', ':', ';', '.',
    ',', '=', '&', '_', 'a', 'x', '0', '7', 'n', 'u', ' ', '\t', '\n', 'λ', '\u{0}',
];

/// Partial constructs that leave the lexer mid-state at end of input.
const FRAGMENTS: &[&str] = &[
    "\"unterminated",
    "\"esc\\",
    "'c",
    "'\\u{1F4",
    "b\"bytes",
    "b'",
    "r\"raw",
    "r#\"guarded",
    "r##\"deep\"#",
    "/* open",
    "/* nested /* deeper",
    "*/",
    "// line comment",
    "// ultra-lint: allow(",
    "// ultra-lint: allow(no-tainted-ranking",
    "/// doc ultra-lint: hot",
    "fn f(x: &HashMap<u64, f32>) {",
    "let s = \"ok\";\n",
    "'static",
    "#[cfg(test)]",
    "0.5f32",
    "\n",
];

fn checked_lex(src: &str) -> Lexed {
    let lexed = lex(src);
    let total_lines = src.split('\n').count() as u32;
    let mut prev = 0u32;
    for tok in &lexed.tokens {
        assert!(tok.line >= 1, "line numbers are 1-based");
        assert!(
            tok.line <= total_lines,
            "token line {} beyond source ({} lines)",
            tok.line,
            total_lines
        );
        assert!(tok.line >= prev, "token lines must be non-decreasing");
        prev = tok.line;
    }
    for allow in &lexed.allows {
        assert!(allow.line >= 1 && allow.line <= total_lines);
    }
    lexed
}

proptest! {
    #[test]
    fn lex_never_panics_on_character_soup(
        picks in prop::collection::vec(0usize..ALPHABET.len(), 0..256),
    ) {
        let src: String = picks.iter().map(|&i| ALPHABET[i]).collect();
        checked_lex(&src);
    }

    #[test]
    fn lex_never_panics_on_spliced_fragments(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..24),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let lexed = checked_lex(&src);
        // Lexing is a pure function of the source: same input, same output
        // shape. (Guards against hidden global state in the lexer.)
        let again = checked_lex(&src);
        prop_assert_eq!(lexed.tokens.len(), again.tokens.len());
        prop_assert_eq!(lexed.allows.len(), again.allows.len());
        prop_assert_eq!(&lexed.hots, &again.hots);
    }
}

//! The differential gate: a committed snapshot of accepted findings, so CI
//! fails only on *new* ones.
//!
//! Retrofitting a new rule onto a living workspace surfaces pre-existing
//! findings that are real but not this PR's fault. Instead of waiving them
//! one by one (or worse, weakening the rule), `ultra-lint --write-baseline
//! lint-baseline.json` snapshots the current findings, the file is
//! committed, and `ultra-lint --baseline lint-baseline.json` fails only on
//! findings beyond the snapshot. The snapshot shrinks monotonically: fixing
//! a finding leaves a stale baseline entry, which the comparison reports so
//! the file gets re-written smaller.
//!
//! Findings are keyed by `(rule, path, message)` — deliberately **not** by
//! line, so unrelated edits that shift code downward do not churn the
//! baseline. Identical findings at several sites in one file are handled by
//! a `count` per key: the gate fires when a key's multiplicity grows.
//!
//! The file format is a stable, sorted JSON document (the lint crate has no
//! runtime dependencies, so both the writer and the parser are hand-rolled):
//!
//! ```json
//! {"version":1,"findings":[
//!   {"rule":"no-panic-in-lib","path":"crates/x/src/a.rs","message":"...","count":2}
//! ]}
//! ```

use crate::rules::Diagnostic;
use std::collections::BTreeMap;

/// One accepted finding key with its multiplicity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineFinding {
    /// Rule name (`no-tainted-ranking`, …).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Exact diagnostic message.
    pub message: String,
    /// How many sites share this (rule, path, message).
    pub count: usize,
}

/// A parsed (or freshly computed) baseline snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted findings, sorted by (rule, path, message).
    pub findings: Vec<BaselineFinding>,
}

/// Result of comparing a run against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Indices into the compared violation slice that exceed the snapshot.
    pub new: Vec<usize>,
    /// Baseline keys the run no longer produces (candidates for rewrite).
    pub stale: Vec<String>,
}

impl Baseline {
    /// Builds a snapshot from a run's violations.
    pub fn from_violations(violations: &[Diagnostic]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for d in violations {
            *counts
                .entry((d.rule.name().to_string(), d.path.clone(), d.message.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            findings: counts
                .into_iter()
                .map(|((rule, path, message), count)| BaselineFinding {
                    rule,
                    path,
                    message,
                    count,
                })
                .collect(),
        }
    }

    /// Marks each violation as known (covered by the snapshot) or new, and
    /// collects snapshot keys the run no longer hits.
    pub fn diff(&self, violations: &[Diagnostic]) -> BaselineDiff {
        let mut budget: BTreeMap<(&str, &str, &str), usize> = self
            .findings
            .iter()
            .map(|f| {
                (
                    (f.rule.as_str(), f.path.as_str(), f.message.as_str()),
                    f.count,
                )
            })
            .collect();
        let mut diff = BaselineDiff::default();
        for (i, d) in violations.iter().enumerate() {
            let key = (d.rule.name(), d.path.as_str(), d.message.as_str());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => diff.new.push(i),
            }
        }
        for ((rule, path, message), n) in budget {
            if n > 0 {
                diff.stale
                    .push(format!("{rule} @ {path}: {message} (×{n} unmatched)"));
            }
        }
        diff
    }

    /// Renders the stable JSON document (sorted; one finding per line so
    /// diffs of the committed file read naturally).
    pub fn render(&self) -> String {
        if self.findings.is_empty() {
            return String::from("{\"version\":1,\"findings\":[]}\n");
        }
        let mut out = String::from("{\"version\":1,\"findings\":[\n");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"rule\":{},\"path\":{},\"message\":{},\"count\":{}}}",
                json_str(&f.rule),
                json_str(&f.path),
                json_str(&f.message),
                f.count
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a baseline document (accepts anything [`Baseline::render`]
    /// emits, plus arbitrary whitespace).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let doc = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        let Json::Object(doc) = doc else {
            return Err("top level must be an object".into());
        };
        match doc.get("version") {
            Some(Json::Number(1)) => {}
            Some(Json::Number(v)) => return Err(format!("unsupported baseline version {v}")),
            _ => return Err("missing `version`".into()),
        }
        let Some(Json::Array(raw)) = doc.get("findings") else {
            return Err("missing `findings` array".into());
        };
        let mut findings = Vec::with_capacity(raw.len());
        for (i, item) in raw.iter().enumerate() {
            let Json::Object(f) = item else {
                return Err(format!("findings[{i}] is not an object"));
            };
            let get_str = |key: &str| -> Result<String, String> {
                match f.get(key) {
                    Some(Json::String(s)) => Ok(s.clone()),
                    _ => Err(format!("findings[{i}] is missing string `{key}`")),
                }
            };
            let count = match f.get("count") {
                Some(Json::Number(n)) => *n as usize,
                _ => return Err(format!("findings[{i}] is missing numeric `count`")),
            };
            findings.push(BaselineFinding {
                rule: get_str("rule")?,
                path: get_str("path")?,
                message: get_str("message")?,
                count,
            });
        }
        findings.sort();
        Ok(Baseline { findings })
    }
}

/// JSON string literal with RFC 8259 escaping (duplicated from the CLI so
/// the library stays dependency-free in both directions).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The subset of JSON the baseline needs: objects, arrays, strings with the
/// escapes [`json_str`] emits, and non-negative integers.
#[derive(Debug)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(u64),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.consume(b':')?;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(map));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => self.string().map(Json::String),
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse()
                    .map(Json::Number)
                    .map_err(|_| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let Some(c) = s.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn diag(rule: Rule, path: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: rule.severity(),
            path: path.into(),
            line,
            message: message.into(),
            suggestion: "",
            chain: Vec::new(),
            origin: None,
            region: None,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let violations = vec![
            diag(Rule::NoPanicInLib, "crates/x/src/a.rs", 10, "m \"quoted\""),
            diag(Rule::NoPanicInLib, "crates/x/src/a.rs", 40, "m \"quoted\""),
            diag(Rule::NoTaintedRanking, "crates/y/src/b.rs", 7, "tainted"),
        ];
        let base = Baseline::from_violations(&violations);
        assert_eq!(base.findings.len(), 2, "same-message sites aggregate");
        assert_eq!(base.findings[0].count, 2);
        let parsed = Baseline::parse(&base.render()).expect("parses own output");
        assert_eq!(parsed, base);
    }

    #[test]
    fn diff_flags_only_findings_beyond_the_snapshot() {
        let old = vec![diag(Rule::NoPanicInLib, "a.rs", 10, "m")];
        let base = Baseline::from_violations(&old);

        // Same finding, shifted line: covered.
        let shifted = vec![diag(Rule::NoPanicInLib, "a.rs", 25, "m")];
        let d = base.diff(&shifted);
        assert!(d.new.is_empty());
        assert!(d.stale.is_empty());

        // A second site with the same message exceeds the count.
        let grown = vec![
            diag(Rule::NoPanicInLib, "a.rs", 10, "m"),
            diag(Rule::NoPanicInLib, "a.rs", 90, "m"),
        ];
        let d = base.diff(&grown);
        assert_eq!(d.new, vec![1]);

        // A different rule/path/message is new; the unmatched key is stale.
        let changed = vec![diag(Rule::NoTaintedRanking, "b.rs", 3, "other")];
        let d = base.diff(&changed);
        assert_eq!(d.new, vec![0]);
        assert_eq!(d.stale.len(), 1);
        assert!(d.stale[0].contains("no-panic-in-lib @ a.rs"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"version\":2,\"findings\":[]}").is_err());
        assert!(Baseline::parse("{\"version\":1}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"findings\":[{}]}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"findings\":[]}extra").is_err());
        assert!(Baseline::parse("{\"version\":1,\"findings\":[]}")
            .expect("ok")
            .findings
            .is_empty());
    }
}

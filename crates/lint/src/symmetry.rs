//! Serialization-symmetry checking: **L15 `serde-symmetry`**.
//!
//! The hand-rolled `USNP` byte formats are written and read by paired
//! functions (`to_bytes`/`from_bytes`, `write_header`/`read_header`). A
//! width drift between the two sides — write `u32`, read `u64` — corrupts
//! every field after it and is only caught today by corruption tests
//! *after* the bug ships. This pass catches it statically: pair the
//! writer/reader functions, lower each side to its ordered sequence of
//! primitive-width operations over the [`crate::dataflow::FnFlow`] IR, and
//! diff the sequences.
//!
//! **Pairing.** By convention within one file: `to_bytes` ↔ `from_bytes`
//! (matched per `impl` target, so two types in one file pair correctly)
//! and `write_X` ↔ `read_X` for any suffix `X`. Non-conventional names are
//! declared in `lint.toml` as `[[symmetry_pair]]` entries (with staleness
//! detection like `[[sanitizer]]`).
//!
//! **Width ops.** A call contributes an op when its name is a primitive
//! width (`u8`…`u128`, `i8`…`i16`, `f32`, `f64`) called as a method
//! (`w.u32(..)`, `r.f64()?`), or carries a `read_`/`write_` width prefix
//! (`read_u32(..)`), or is `bytes`/`take` on a receiver typed
//! `ByteWriter`/`ByteReader` (variable-length payloads). Extraction is
//! intra-function: helpers called by a writer contribute nothing. A side
//! that lowers to *zero* ops is therefore treated as opaque (it delegates
//! all byte work — the IVF writer appends to a raw `Vec`, the snapshot
//! reader parses through `scan_structure`), not as an empty sequence, and
//! the pair is skipped: there is no visible sequence to diff against.
//!
//! **Diff.** First divergence wins, one finding per pair: a width
//! mismatch at the same position, a field *reorder* (same widths, both
//! sides label the position, and the labels appear swapped), a
//! written-but-never-read suffix, or a read-but-never-written suffix. Both
//! sites are reported: the diagnostic points at the writer op, `origin` at
//! the reader op, and the `region` span names the reader function. Loops
//! are tolerated asymmetrically (a `for` writing N floats pairs with a
//! counted reading loop) — repetition counts are a dynamic property the
//! IR cannot see.

use crate::dataflow::{Call, Expr, Stmt, StmtKind};
use crate::parser::{FileModel, FnDef};
use crate::rules::{Diagnostic, RegionSpan, Rule, TaintOrigin};

/// A writer/reader pair declared in `lint.toml` (non-conventional names).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairSpec {
    /// Writer function name.
    pub writer: String,
    /// Reader function name.
    pub reader: String,
}

/// One primitive-width operation in a function's byte sequence.
struct WidthOp {
    /// Width label: `u8`…`f64`, or `bytes` for variable-length payloads.
    width: &'static str,
    /// Field label when recoverable: the reader's single `let` binding or
    /// the writer's argument identifier/getter.
    label: Option<String>,
    /// 1-based line of the op.
    line: u32,
}

const WIDTH_NAMES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32", "f64",
];

/// The width a call name denotes, if any.
fn width_name(name: &str) -> Option<&'static str> {
    let bare = name
        .strip_prefix("read_")
        .or_else(|| name.strip_prefix("write_"))
        .unwrap_or(name);
    WIDTH_NAMES.iter().find(|w| **w == bare).copied()
}

/// Whether a call contributes a width op for function `f`.
fn op_width(c: &Call, f: &FnDef) -> Option<&'static str> {
    if let Some(w) = width_name(&c.name) {
        // Prefixed names (`read_u32`) stand alone; pure width names must be
        // method calls (`r.u32()`), which excludes `u32::from(..)`-style
        // qualified constructors.
        if c.name.starts_with("read_") || c.name.starts_with("write_") || c.receiver.is_some() {
            return Some(w);
        }
        return None;
    }
    if c.name == "bytes" || c.name == "take" {
        let cursor = c
            .receiver
            .as_deref()
            .and_then(|r| f.local_types.iter().find(|(n, _)| n == r))
            .is_some_and(|(_, t)| t == "ByteWriter" || t == "ByteReader");
        if cursor {
            return Some("bytes");
        }
    }
    None
}

/// Best-effort field label for one op: the reader's single-let binding,
/// else the writer's first argument call (getter) or identifier.
fn label_for(c: &Call, stmt: &Stmt) -> Option<String> {
    if stmt.kind == StmtKind::Let && stmt.bound.len() == 1 {
        return Some(stmt.bound[0].clone());
    }
    let a = c.args.first()?;
    if let Some(call) = a.calls.first() {
        return Some(call.name.clone());
    }
    a.idents.iter().find(|id| *id != "self").cloned()
}

fn walk_expr(e: &Expr, stmt: &Stmt, f: &FnDef, ops: &mut Vec<WidthOp>) {
    for c in &e.calls {
        if let Some(width) = op_width(c, f) {
            ops.push(WidthOp {
                width,
                label: label_for(c, stmt),
                line: c.line,
            });
        }
        for a in &c.args {
            walk_expr(a, stmt, f, ops);
        }
    }
}

/// Lowers one function to its ordered width-op sequence.
fn collect_ops(f: &FnDef) -> Vec<WidthOp> {
    let mut ops = Vec::new();
    for stmt in &f.flow.stmts {
        walk_expr(&stmt.expr, stmt, f, &mut ops);
    }
    ops
}

/// A resolved pair: (file, fn) of each side.
type Pair = ((usize, usize), (usize, usize));

/// Convention pairs within one file: `to_bytes`/`from_bytes` per impl
/// target, `write_X`/`read_X` per suffix.
fn convention_pairs(models: &[FileModel]) -> Vec<Pair> {
    let mut out = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        for (wj, wf) in m.fns.iter().enumerate() {
            if wf.in_test {
                continue;
            }
            let reader_name = if wf.name == "to_bytes" {
                "from_bytes".to_string()
            } else if let Some(suffix) = wf.name.strip_prefix("write_") {
                format!("read_{suffix}")
            } else {
                continue;
            };
            // Same file, same impl target (both None for free fns).
            let mut hits = m.fns.iter().enumerate().filter(|(_, rf)| {
                !rf.in_test && rf.name == reader_name && rf.self_type == wf.self_type
            });
            if let Some((rj, _)) = hits.next() {
                if hits.next().is_none() {
                    out.push(((fi, wj), (fi, rj)));
                }
            }
        }
    }
    out
}

/// Resolves one configured pair to definitions: first non-test match of
/// each name, in (path, fn) order. `None` when either side is missing
/// (reported as a stale config entry by the caller).
fn config_pair(models: &[FileModel], spec: &PairSpec) -> Option<Pair> {
    let find = |name: &str| {
        models.iter().enumerate().find_map(|(fi, m)| {
            m.fns
                .iter()
                .position(|f| !f.in_test && f.name == name)
                .map(|fj| (fi, fj))
        })
    };
    Some((find(&spec.writer)?, find(&spec.reader)?))
}

/// Runs L15 over every paired writer/reader.
pub(crate) fn check_symmetry(
    models: &[FileModel],
    extra_pairs: &[PairSpec],
    out: &mut Vec<Diagnostic>,
) {
    let mut pairs = convention_pairs(models);
    for spec in extra_pairs {
        if let Some(p) = config_pair(models, spec) {
            pairs.push(p);
        }
    }
    pairs.sort();
    pairs.dedup();

    for (w_id, r_id) in pairs {
        let (wm, wf) = (&models[w_id.0], &models[w_id.0].fns[w_id.1]);
        let (rm, rf) = (&models[r_id.0], &models[r_id.0].fns[r_id.1]);
        let w_ops = collect_ops(wf);
        let r_ops = collect_ops(rf);
        // A zero-op side is opaque (fully delegating), not empty — skip.
        if w_ops.is_empty() || r_ops.is_empty() {
            continue;
        }
        if let Some(d) = diff_pair(wm, wf, &w_ops, rm, rf, &r_ops) {
            out.push(d);
        }
    }
}

/// Diffs one pair's sequences; at most one finding (first divergence).
fn diff_pair(
    wm: &FileModel,
    wf: &FnDef,
    w_ops: &[WidthOp],
    rm: &FileModel,
    rf: &FnDef,
    r_ops: &[WidthOp],
) -> Option<Diagnostic> {
    let pair_name = format!("`{}` ↔ `{}`", wf.name, rf.name);
    let reader_region = || {
        Some(RegionSpan {
            label: format!("reader `{}`", rf.name),
            path: rm.path.clone(),
            start_line: rf.line,
            end_line: rf.end_line,
        })
    };
    let reader_origin = |line: u32, desc: String| {
        Some(TaintOrigin {
            desc,
            path: rm.path.clone(),
            line,
        })
    };
    let diag = |line: u32, message: String, origin: Option<TaintOrigin>| Diagnostic {
        rule: Rule::SerdeSymmetry,
        severity: Rule::SerdeSymmetry.severity(),
        path: wm.path.clone(),
        line,
        message,
        suggestion: "make the reader mirror the writer field-for-field (same widths, same \
                     order); bump the format version if the layout must change",
        chain: Vec::new(),
        origin,
        region: reader_region(),
    };

    let n = w_ops.len().min(r_ops.len());
    for i in 0..n {
        let (w, r) = (&w_ops[i], &r_ops[i]);
        if w.width != r.width {
            let wl = w
                .label
                .as_deref()
                .map(|l| format!(" (`{l}`)"))
                .unwrap_or_default();
            return Some(diag(
                w.line,
                format!(
                    "pair {pair_name}: writer writes `{}`{wl} at op #{} but reader reads \
                     `{}` ({}:{}) — every later field is decoded from shifted bytes",
                    w.width,
                    i + 1,
                    r.width,
                    rm.path,
                    r.line,
                ),
                reader_origin(r.line, format!("reader expects `{}` here", r.width)),
            ));
        }
        if let (Some(wl), Some(rl)) = (w.label.as_deref(), r.label.as_deref()) {
            if wl != rl {
                let w_has_rl = w_ops.iter().any(|o| o.label.as_deref() == Some(rl));
                let r_has_wl = r_ops.iter().any(|o| o.label.as_deref() == Some(wl));
                if w_has_rl && r_has_wl {
                    return Some(diag(
                        w.line,
                        format!(
                            "pair {pair_name}: field order diverges at op #{} — writer \
                             writes `{wl}` but reader reads `{rl}` ({}:{})",
                            i + 1,
                            rm.path,
                            r.line,
                        ),
                        reader_origin(r.line, format!("reader reads `{rl}` here")),
                    ));
                }
            }
        }
    }
    if w_ops.len() > r_ops.len() {
        let w = &w_ops[n];
        let wl = w
            .label
            .as_deref()
            .map(|l| format!(" (`{l}`)"))
            .unwrap_or_default();
        return Some(diag(
            w.line,
            format!(
                "pair {pair_name}: writer writes `{}`{wl} at op #{} but reader `{}` \
                 ({}:{}) stops after {} ops — written but never read",
                w.width,
                n + 1,
                rf.name,
                rm.path,
                rf.line,
                r_ops.len(),
            ),
            reader_origin(rf.end_line, "reader ends here".to_string()),
        ));
    }
    if r_ops.len() > w_ops.len() {
        let r = &r_ops[n];
        let rl = r
            .label
            .as_deref()
            .map(|l| format!(" (`{l}`)"))
            .unwrap_or_default();
        return Some(diag(
            wf.line,
            format!(
                "pair {pair_name}: reader reads `{}`{rl} at op #{} ({}:{}) but writer \
                 `{}` only writes {} ops — read past the written payload",
                r.width,
                n + 1,
                rm.path,
                r.line,
                wf.name,
                w_ops.len(),
            ),
            reader_origin(r.line, format!("reader expects `{}` here", r.width)),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_code_mask};
    use crate::parser;

    fn diags_with(files: &[(&str, &str)], pairs: &[PairSpec]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_code_mask(&lexed.tokens);
                parser::build(path, &lexed, &mask)
            })
            .collect();
        let mut out = Vec::new();
        check_symmetry(&models, pairs, &mut out);
        out
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        diags_with(&[("crates/core/src/fmt.rs", src)], &[])
    }

    const CLEAN: &str = "impl M {\n\
                         fn to_bytes(&self, w: &mut ByteWriter) {\n\
                         w.u32(self.rows() as u32);\n\
                         w.u32(self.cols() as u32);\n\
                         for v in &self.data { w.f32(*v); }\n\
                         }\n\
                         fn from_bytes(r: &mut ByteReader) -> M {\n\
                         let rows = r.u32()? as usize;\n\
                         let cols = r.u32()? as usize;\n\
                         for i in 0..rows { data.push(r.f32()?); }\n\
                         M { rows, cols, data }\n\
                         }\n\
                         }";

    #[test]
    fn symmetric_pair_is_quiet() {
        assert!(diags(CLEAN).is_empty(), "{:?}", diags(CLEAN));
    }

    #[test]
    fn width_mismatch_is_flagged_with_both_sites() {
        let src = CLEAN.replace(
            "let cols = r.u32()? as usize;",
            "let cols = r.u64()? as usize;",
        );
        let out = diags(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        let d = &out[0];
        assert_eq!(d.rule, Rule::SerdeSymmetry);
        assert_eq!(d.line, 4, "writer op site");
        assert!(d.message.contains("`u32`") && d.message.contains("`u64`"));
        assert_eq!(d.origin.as_ref().unwrap().line, 9, "reader op site");
        assert!(d.region.as_ref().unwrap().label.contains("from_bytes"));
    }

    #[test]
    fn written_but_never_read_is_flagged() {
        let src = CLEAN.replace("for i in 0..rows { data.push(r.f32()?); }\n", "");
        let out = diags(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("written but never read"));
    }

    #[test]
    fn reordered_fields_are_flagged() {
        let src = "fn write_hdr(w: &mut ByteWriter, rows: u32, cols: u32) {\n\
                   w.u32(rows);\n\
                   w.u32(cols);\n\
                   }\n\
                   fn read_hdr(r: &mut ByteReader) -> (u32, u32) {\n\
                   let cols = r.u32()?;\n\
                   let rows = r.u32()?;\n\
                   (rows, cols)\n\
                   }";
        let out = diags(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("field order diverges"), "{out:?}");
    }

    #[test]
    fn config_pairs_cover_nonconventional_names() {
        let src = "fn dump(w: &mut ByteWriter, n: u32) { w.u32(n); w.u8(tag); }\n\
                   fn load(r: &mut ByteReader) -> u32 { let n = r.u32()?; n }";
        let quiet = diags_with(&[("crates/core/src/fmt.rs", src)], &[]);
        assert!(quiet.is_empty(), "not paired by convention: {quiet:?}");
        let out = diags_with(
            &[("crates/core/src/fmt.rs", src)],
            &[PairSpec {
                writer: "dump".to_string(),
                reader: "load".to_string(),
            }],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("written but never read"));
    }

    #[test]
    fn two_impls_in_one_file_pair_by_self_type() {
        let src = "impl A {\n\
                   fn to_bytes(&self, w: &mut ByteWriter) { w.u32(self.n); }\n\
                   fn from_bytes(r: &mut ByteReader) -> A { let n = r.u32()?; A { n } }\n\
                   }\n\
                   impl B {\n\
                   fn to_bytes(&self, w: &mut ByteWriter) { w.u64(self.m); }\n\
                   fn from_bytes(r: &mut ByteReader) -> B { let m = r.u64()?; B { m } }\n\
                   }";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }
}

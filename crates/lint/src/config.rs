//! The `lint.toml` allowlist, sanitizer registry, and symmetry-pair
//! registry.
//!
//! Format (a TOML subset parsed without external crates — the build
//! environment has no crates.io access):
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic-in-lib"
//! path = "crates/data/src/export.rs"
//! line = 42            # optional: omit to waive the rule file-wide
//! reason = "why this is sound"
//!
//! [[sanitizer]]
//! function = "canonical_order"
//! reason = "sorts by (score, id) before returning"
//!
//! [[symmetry_pair]]
//! writer = "dump_postings"
//! reader = "load_postings"
//! reason = "the postings section of the USNP format"
//! ```
//!
//! `[[allow]]` waives one finding; `[[sanitizer]]` teaches the L10 taint
//! pass that a workspace function kills order-taint (its result no longer
//! depends on iteration order), so every flow through it is clean — a
//! stronger, reviewable claim than waiving each downstream sink.
//! `[[symmetry_pair]]` declares a writer/reader pair for the L15
//! serialization-symmetry check when the names don't follow the
//! `to_bytes`/`from_bytes` or `write_X`/`read_X` conventions.
//!
//! Every entry must carry a non-empty `reason`: a waiver without a
//! justification is a violation of the policy, not an exception to it.
//! Entries that match nothing are reported as stale so the allowlist cannot
//! quietly outlive the code it excuses.

use crate::rules::{Diagnostic, Rule};

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being waived.
    pub rule: Rule,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<u32>,
    /// Human justification (required, non-empty).
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry waives the given diagnostic.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.path == d.path && self.line.is_none_or(|l| l == d.line)
    }
}

/// One `[[sanitizer]]` entry: a workspace function L10 treats as killing
/// order-taint.
#[derive(Clone, Debug)]
pub struct SanitizerEntry {
    /// Function name (last path segment, as called).
    pub function: String,
    /// Why its output is order-insensitive (required, non-empty).
    pub reason: String,
}

/// One `[[symmetry_pair]]` entry: a writer/reader pair L15 diffs even
/// though the names don't follow the pairing conventions.
#[derive(Clone, Debug)]
pub struct SymmetryPairEntry {
    /// Writer function name (bare identifier).
    pub writer: String,
    /// Reader function name (bare identifier).
    pub reader: String,
    /// What format the pair serializes (required, non-empty).
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All `[[allow]]` entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// All `[[sanitizer]]` entries, in file order.
    pub sanitizers: Vec<SanitizerEntry>,
    /// All `[[symmetry_pair]]` entries, in file order.
    pub symmetry_pairs: Vec<SymmetryPairEntry>,
}

/// A `lint.toml` parse failure, with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// Line the error occurred on.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// An `[[allow]]` entry mid-parse: optional rule/path/line/reason fields
/// plus the line number of the entry header (for error messages).
type PartialAllow = (
    Option<Rule>,
    Option<String>,
    Option<u32>,
    Option<String>,
    u32,
);

/// A `[[sanitizer]]` entry mid-parse: (function, reason, header line).
type PartialSanitizer = (Option<String>, Option<String>, u32);

/// A `[[symmetry_pair]]` entry mid-parse: (writer, reader, reason,
/// header line).
type PartialPair = (Option<String>, Option<String>, Option<String>, u32);

/// Which table the parser is inside.
enum Current {
    Allow(PartialAllow),
    Sanitizer(PartialSanitizer),
    SymmetryPair(PartialPair),
}

impl Allowlist {
    /// Parses the `lint.toml` text.
    pub fn parse(text: &str) -> Result<Allowlist, ConfigError> {
        let mut out = Allowlist::default();
        let mut current: Option<Current> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(current.take(), &mut out)?;
                current = Some(Current::Allow((None, None, None, None, lineno)));
                continue;
            }
            if line == "[[sanitizer]]" {
                finish(current.take(), &mut out)?;
                current = Some(Current::Sanitizer((None, None, lineno)));
                continue;
            }
            if line == "[[symmetry_pair]]" {
                finish(current.take(), &mut out)?;
                current = Some(Current::SymmetryPair((None, None, None, lineno)));
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!(
                        "unknown table `{line}` (only [[allow]], [[sanitizer]], and \
                         [[symmetry_pair]] are supported)"
                    ),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match current.as_mut() {
                None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: "key outside any [[allow]], [[sanitizer]], or [[symmetry_pair]] \
                                  entry"
                            .into(),
                    });
                }
                Some(Current::Allow(cur)) => match key {
                    "rule" => {
                        let name = parse_string(value, lineno)?;
                        let rule = Rule::from_name(&name).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("unknown rule `{name}`"),
                        })?;
                        cur.0 = Some(rule);
                    }
                    "path" => cur.1 = Some(parse_string(value, lineno)?),
                    "line" => {
                        let n: u32 = value.parse().map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("`line` must be an integer, got `{value}`"),
                        })?;
                        cur.2 = Some(n);
                    }
                    "reason" => cur.3 = Some(parse_string(value, lineno)?),
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown key `{other}` in [[allow]]"),
                        });
                    }
                },
                Some(Current::Sanitizer(cur)) => match key {
                    "function" => cur.0 = Some(parse_ident(value, lineno, "function")?),
                    "reason" => cur.1 = Some(parse_string(value, lineno)?),
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown key `{other}` in [[sanitizer]]"),
                        });
                    }
                },
                Some(Current::SymmetryPair(cur)) => match key {
                    "writer" => cur.0 = Some(parse_ident(value, lineno, "writer")?),
                    "reader" => cur.1 = Some(parse_ident(value, lineno, "reader")?),
                    "reason" => cur.2 = Some(parse_string(value, lineno)?),
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown key `{other}` in [[symmetry_pair]]"),
                        });
                    }
                },
            }
        }
        finish(current.take(), &mut out)?;
        Ok(out)
    }
}

/// Validates and commits the entry currently being assembled.
fn finish(cur: Option<Current>, out: &mut Allowlist) -> Result<(), ConfigError> {
    match cur {
        None => Ok(()),
        Some(Current::Allow((rule, path, line, reason, at))) => {
            let err = |message: String| ConfigError { line: at, message };
            let rule = rule.ok_or_else(|| err("entry is missing `rule`".into()))?;
            let path = path.ok_or_else(|| err("entry is missing `path`".into()))?;
            let reason = reason.ok_or_else(|| err("entry is missing `reason`".into()))?;
            if reason.trim().is_empty() {
                return Err(err("`reason` must not be empty".into()));
            }
            // A duplicated (rule, path, line) entry is rot: the second copy
            // can never match anything the first did not already waive, yet
            // both read as live policy.
            if out
                .entries
                .iter()
                .any(|e| e.rule == rule && e.path == path && e.line == line)
            {
                let at_line = line.map(|l| format!(":{l}")).unwrap_or_default();
                return Err(err(format!(
                    "duplicate [[allow]] entry for `{} @ {}{}`",
                    rule.name(),
                    path,
                    at_line
                )));
            }
            out.entries.push(AllowEntry {
                rule,
                path,
                line,
                reason,
            });
            Ok(())
        }
        Some(Current::Sanitizer((function, reason, at))) => {
            let err = |message: String| ConfigError { line: at, message };
            let function = function.ok_or_else(|| err("entry is missing `function`".into()))?;
            let reason = reason.ok_or_else(|| err("entry is missing `reason`".into()))?;
            if reason.trim().is_empty() {
                return Err(err("`reason` must not be empty".into()));
            }
            if out.sanitizers.iter().any(|s| s.function == function) {
                return Err(err(format!(
                    "duplicate [[sanitizer]] entry for `{function}`"
                )));
            }
            out.sanitizers.push(SanitizerEntry { function, reason });
            Ok(())
        }
        Some(Current::SymmetryPair((writer, reader, reason, at))) => {
            let err = |message: String| ConfigError { line: at, message };
            let writer = writer.ok_or_else(|| err("entry is missing `writer`".into()))?;
            let reader = reader.ok_or_else(|| err("entry is missing `reader`".into()))?;
            let reason = reason.ok_or_else(|| err("entry is missing `reason`".into()))?;
            if reason.trim().is_empty() {
                return Err(err("`reason` must not be empty".into()));
            }
            if writer == reader {
                return Err(err(format!(
                    "`writer` and `reader` are both `{writer}` — a function cannot pair \
                     with itself"
                )));
            }
            if out
                .symmetry_pairs
                .iter()
                .any(|p| p.writer == writer && p.reader == reader)
            {
                return Err(err(format!(
                    "duplicate [[symmetry_pair]] entry for `{writer}`/`{reader}`"
                )));
            }
            out.symmetry_pairs.push(SymmetryPairEntry {
                writer,
                reader,
                reason,
            });
            Ok(())
        }
    }
}

/// Parses a double-quoted string that must be a bare `fn` identifier (no
/// paths, no generics — both the sanitizer and symmetry registries match
/// by call-site name).
fn parse_ident(value: &str, line: u32, key: &str) -> Result<String, ConfigError> {
    let name = parse_string(value, line)?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(ConfigError {
            line,
            message: format!("`{key}` must be a bare function name, got `{name}`"),
        });
    }
    Ok(name)
}

/// Strips a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parses a double-quoted TOML basic string (escapes limited to `\"` and
/// `\\`, which is all the allowlist needs).
fn parse_string(value: &str, line: u32) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn parses_entries_and_matches() {
        let toml = r#"
# workspace waivers
[[allow]]
rule = "no-panic-in-lib"
path = "crates/x/src/lib.rs"
line = 10
reason = "slice length checked on the previous line"

[[allow]]
rule = "no-hash-iteration-order"
path = "crates/y/src/a.rs"
reason = "feeds a commutative integer sum"
"#;
        let list = Allowlist::parse(toml).expect("parses");
        assert_eq!(list.entries.len(), 2);
        let d = Diagnostic {
            rule: Rule::NoPanicInLib,
            severity: Severity::Warn,
            path: "crates/x/src/lib.rs".into(),
            line: 10,
            message: String::new(),
            suggestion: "",
            chain: Vec::new(),
            origin: None,
            region: None,
        };
        assert!(list.entries[0].matches(&d));
        assert!(!list.entries[1].matches(&d));
        // File-wide entry matches any line of its rule+path.
        let d2 = Diagnostic {
            rule: Rule::NoHashIterationOrder,
            severity: Severity::Error,
            path: "crates/y/src/a.rs".into(),
            line: 999,
            message: String::new(),
            suggestion: "",
            chain: Vec::new(),
            origin: None,
            region: None,
        };
        assert!(list.entries[1].matches(&d2));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let toml = "[[allow]]\nrule = \"no-panic-in-lib\"\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(toml).is_err());
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let toml = "[[allow]]\nrule = \"no-such-rule\"\npath = \"x.rs\"\nreason = \"r\"\n";
        let err = Allowlist::parse(toml).unwrap_err();
        assert!(err.message.contains("unknown rule"));
    }

    #[test]
    fn duplicate_entries_are_rejected_with_the_duplicate_location() {
        let one =
            "[[allow]]\nrule = \"no-panic-in-lib\"\npath = \"x.rs\"\nline = 7\nreason = \"a\"\n";
        let dup = format!("{one}\n{one}");
        let err = Allowlist::parse(&dup).unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
        assert_eq!(err.line, 7, "error points at the second entry's header");

        // File-wide duplicates (both without `line`) are duplicates too.
        let wide =
            "[[allow]]\nrule = \"no-wallclock-in-scoring\"\npath = \"m.rs\"\nreason = \"a\"\n";
        assert!(Allowlist::parse(&format!("{wide}\n{wide}")).is_err());

        // Same rule+path at *different* lines is two distinct waivers.
        let two_lines = "[[allow]]\nrule = \"no-panic-in-lib\"\npath = \"x.rs\"\nline = 7\nreason = \"a\"\n\
                         [[allow]]\nrule = \"no-panic-in-lib\"\npath = \"x.rs\"\nline = 9\nreason = \"b\"\n";
        assert_eq!(Allowlist::parse(two_lines).expect("ok").entries.len(), 2);
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(Allowlist::parse("").expect("ok").entries.is_empty());
        assert!(Allowlist::parse("# nothing\n")
            .expect("ok")
            .entries
            .is_empty());
    }

    #[test]
    fn sanitizer_entries_parse_and_validate() {
        let toml = r#"
[[sanitizer]]
function = "canonical_order"
reason = "sorts by (score, id) before returning"

[[allow]]
rule = "no-panic-in-lib"
path = "x.rs"
reason = "fine"
"#;
        let list = Allowlist::parse(toml).expect("parses");
        assert_eq!(list.sanitizers.len(), 1);
        assert_eq!(list.sanitizers[0].function, "canonical_order");
        assert_eq!(list.entries.len(), 1);

        // Missing reason.
        let bad = "[[sanitizer]]\nfunction = \"f\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Not a bare identifier.
        let bad = "[[sanitizer]]\nfunction = \"a::b\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Duplicate function.
        let dup = "[[sanitizer]]\nfunction = \"f\"\nreason = \"a\"\n\
                   [[sanitizer]]\nfunction = \"f\"\nreason = \"b\"\n";
        let err = Allowlist::parse(dup).unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
        // Unknown key inside [[sanitizer]].
        let bad = "[[sanitizer]]\nfunction = \"f\"\npath = \"x.rs\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }

    #[test]
    fn symmetry_pair_entries_parse_and_validate() {
        let toml = r#"
[[symmetry_pair]]
writer = "dump_postings"
reader = "load_postings"
reason = "the postings section of the USNP format"
"#;
        let list = Allowlist::parse(toml).expect("parses");
        assert_eq!(list.symmetry_pairs.len(), 1);
        assert_eq!(list.symmetry_pairs[0].writer, "dump_postings");
        assert_eq!(list.symmetry_pairs[0].reader, "load_postings");

        // Missing reader.
        let bad = "[[symmetry_pair]]\nwriter = \"w\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Missing reason.
        let bad = "[[symmetry_pair]]\nwriter = \"w\"\nreader = \"r\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Not a bare identifier.
        let bad = "[[symmetry_pair]]\nwriter = \"A::dump\"\nreader = \"r\"\nreason = \"x\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(
            err.message.contains("bare function name"),
            "{}",
            err.message
        );
        // Writer pairing with itself.
        let bad = "[[symmetry_pair]]\nwriter = \"f\"\nreader = \"f\"\nreason = \"x\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Duplicate pair.
        let one = "[[symmetry_pair]]\nwriter = \"w\"\nreader = \"r\"\nreason = \"x\"\n";
        let err = Allowlist::parse(&format!("{one}\n{one}")).unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
        // Unknown key.
        let bad =
            "[[symmetry_pair]]\nwriter = \"w\"\nreader = \"r\"\nfoo = \"x\"\nreason = \"y\"\n";
        assert!(Allowlist::parse(bad).is_err());
        // Unknown-table error names all three tables.
        let err = Allowlist::parse("[[nope]]\n").unwrap_err();
        assert!(err.message.contains("[[symmetry_pair]]"), "{}", err.message);
    }
}

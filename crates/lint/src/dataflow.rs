//! Determinism-taint dataflow: the machinery behind **L10
//! `no-tainted-ranking`**, **L11 `seeded-rng-only`**, and **L12
//! `ordered-float-reduction`**.
//!
//! The pass works in two layers:
//!
//! 1. **Extraction** ([`extract_flow`], run by [`crate::parser::build`])
//!    lowers each function body to a statement-level IR: `let` bindings,
//!    assignments, loop heads, returns, and the trailing tail expression,
//!    each carrying the identifiers it reads and the calls it makes
//!    (receiver, `Path::` qualifier, turbofish types, and arguments,
//!    recursively). Braces that open control blocks (`for`/`while`/`if`/
//!    `match`/…) segment statements and maintain a loop stack; braces that
//!    appear in expression position (struct literals, `let x = if … {…}
//!    else {…}`, closure bodies) are absorbed into the enclosing statement,
//!    which gives branchy expressions *union* semantics — taint from any
//!    branch taints the binding.
//!
//! 2. **Evaluation** ([`check_taint`], run by [`crate::check_sources`])
//!    interprets the IR per function over an abstract state mapping locals
//!    to taint values, and iterates function *summaries* (returned taint,
//!    param→return flows, param→sink flows) to a fixpoint over the
//!    [`crate::callgraph`] resolution so taint crosses call boundaries in
//!    both directions. Two taint kinds are tracked separately:
//!
//!    * **order** — the value depends on an unordered iteration
//!      (`HashMap`/`HashSet` layout). Killed by sanitizers: the `sort*`
//!      family, `ultra-par`'s `*_ordered` APIs, collecting into a
//!      `BTreeMap`/`BTreeSet`, order-insensitive observers (`len`,
//!      `contains`, `max_by_key`, integer `sum::<u64>()`, …), and any
//!      `[[sanitizer]]` function declared in `lint.toml`.
//!    * **value** — the value embeds an environmental observation
//!      (wall-clock, thread id, OS entropy, `env::var`, pointer address).
//!      Nothing sanitizes it; only a waiver can.
//!
//!    When either kind reaches a determinism sink — `RankedList`
//!    construction, a serve response body, a dataset export, loss-curve
//!    accumulation — L10 fires with the source site and the full
//!    source→sink call chain, exactly like L7 prints panic chains.
//!
//! Everything is heuristic: locals are tracked by name, fields are not
//! tracked, and unresolved calls pass taint through from receiver and
//! arguments (erring toward reporting; the observer sanitizers keep that
//! over-approximation from drowning the signal).

use crate::callgraph::{FnId, Graph};
use crate::lexer::{Tok, TokKind};
use crate::parser::{FileModel, FnDef, NON_CALL_KEYWORDS};
use crate::rules::{ChainFrame, Diagnostic, Rule, TaintOrigin, HASH_ITER_METHODS};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

/// Statement-level dataflow IR of one function body.
#[derive(Clone, Debug, Default)]
pub struct FnFlow {
    /// Parameters, in declaration order.
    pub params: Vec<Param>,
    /// Statements, in source order (control-block bodies inlined).
    pub stmts: Vec<Stmt>,
    /// Identifiers bound to `HashMap`/`HashSet` values: hash-typed params
    /// plus every file-wide hash binding (locals and struct fields, by
    /// name).
    pub hash_locals: BTreeSet<String>,
    /// Identifiers bound to float values: `f32`/`f64` params plus `let`
    /// bindings whose initialiser mentions a float literal or type.
    pub float_locals: BTreeSet<String>,
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (first identifier of the pattern).
    pub name: String,
    /// Type mentions `HashMap`/`HashSet`.
    pub is_hash: bool,
    /// Type mentions `f32`/`f64`.
    pub is_float: bool,
}

/// What a statement does with its expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// `let PAT = EXPR;` (also `if let` / `while let` heads).
    Let,
    /// `LHS = EXPR;` / `LHS op= EXPR;`.
    Assign,
    /// `for PAT in EXPR {` head.
    For,
    /// `return EXPR;`.
    Return,
    /// The function's trailing tail expression.
    Tail,
    /// Anything else (conditions, bare calls, match heads).
    Plain,
}

/// One lowered statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// 1-based line of the statement's first token.
    pub line: u32,
    /// Statement role.
    pub kind: StmtKind,
    /// Identifiers the statement binds or assigns.
    pub bound: Vec<String>,
    /// The evaluated expression (right-hand side for `Let`/`Assign`).
    pub expr: Expr,
    /// A float `+=`/`-=`/`*=`//=` (or `x = x.max(..)`/`.min(..)`)
    /// accumulation — L12's trigger when inside a hash-ordered loop.
    pub compound_float_op: bool,
    /// Line of the innermost enclosing `for` over a hash-ordered
    /// collection, if any.
    pub hash_loop: Option<u32>,
    /// `let` with a `BTreeMap`/`BTreeSet` type ascription — sanitizes
    /// order-taint like a `collect::<BTreeMap<…>>()` turbofish.
    pub btree_let: bool,
    /// Whether the statement sits inside any `for`/`while`/`loop` body —
    /// L15 uses this to distinguish repeated from one-shot width ops.
    pub in_loop: bool,
}

/// A flattened expression: the identifiers it reads and the calls it makes.
#[derive(Clone, Debug, Default)]
pub struct Expr {
    /// Non-call identifiers, in source order.
    pub idents: Vec<String>,
    /// Calls, in source order.
    pub calls: Vec<Call>,
}

/// One call inside an expression.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Path segment before `::name(`, if any (`RankedList`, `env`, …).
    pub qualifier: Option<String>,
    /// Identifier before `.name(`, if any (method receiver).
    pub receiver: Option<String>,
    /// 1-based line.
    pub line: u32,
    /// Identifiers inside a `::<…>` turbofish.
    pub turbofish: Vec<String>,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Brace-introducing keywords that segment statements (everything else in
/// brace position is an expression brace and is absorbed).
const CONTROL_KEYWORDS: [&str; 7] = ["for", "while", "loop", "if", "else", "match", "unsafe"];

/// File-wide identifiers bound to `HashMap`/`HashSet`: type ascriptions
/// (`x: HashMap<…>`, struct fields and params included) and constructor
/// bindings (`let x = HashMap::new()`). Tracking is by name, so a hash
/// binding anywhere in the file taints same-named locals everywhere — an
/// over-approximation that matches L2's heuristic.
pub fn file_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        let mut start = i;
        while start >= 3
            && toks[start - 1].is_punct(':')
            && toks[start - 2].is_punct(':')
            && toks[start - 3].ident().is_some()
        {
            start -= 3;
        }
        // Skip reference/mutability/lifetime tokens between the `:` and the
        // path (`m: &mut HashMap<…>`, `m: &'a HashMap<…>`).
        let mut j = start;
        while j >= 1
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].is_ident("mut")
                || matches!(toks[j - 1].kind, TokKind::Lifetime))
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(':') && !toks[j - 2].is_punct(':') {
            if let Some(id) = toks[j - 2].ident() {
                out.insert(id.to_string());
            }
        }
        if start >= 1 && toks[start - 1].is_punct('=') {
            for back in 2..=6usize {
                let Some(j) = start.checked_sub(back) else {
                    break;
                };
                if toks[j].is_punct(';') || toks[j].is_punct('{') {
                    break;
                }
                if toks[j].is_ident("let") {
                    let mut k = j + 1;
                    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                        k += 1;
                    }
                    if let Some(id) = toks.get(k).and_then(|t| t.ident()) {
                        out.insert(id.to_string());
                    }
                    break;
                }
            }
        }
    }
    out
}

/// Lowers one function (signature + body token ranges) to [`FnFlow`].
pub fn extract_flow(
    toks: &[Tok],
    sig: &Range<usize>,
    body: &Range<usize>,
    file_hash: &BTreeSet<String>,
) -> FnFlow {
    let mut flow = FnFlow {
        params: parse_params(toks, sig),
        ..FnFlow::default()
    };
    flow.hash_locals.extend(file_hash.iter().cloned());
    // A parameter's declared type shadows any same-named file-wide binding:
    // `weights: &BTreeMap<…>` here is not hash-ordered even if another
    // function takes `weights: &HashMap<…>`.
    for p in &flow.params {
        if p.is_hash {
            flow.hash_locals.insert(p.name.clone());
        } else {
            flow.hash_locals.remove(&p.name);
        }
        if p.is_float {
            flow.float_locals.insert(p.name.clone());
        }
    }
    if body.is_empty() {
        return flow;
    }

    // One frame per open control block: the hash-`for` line (L12) and
    // whether the frame is a loop at all (L15's `in_loop`).
    let mut loop_stack: Vec<(Option<u32>, bool)> = Vec::new();
    let mut seg: Vec<usize> = Vec::new();
    let mut depth = 0i32; // paren/bracket depth within the current segment
    let mut i = body.start + 1;
    let end = body.end.saturating_sub(1);
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => {
                depth += 1;
                seg.push(i);
            }
            TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                seg.push(i);
            }
            TokKind::Punct(';') if depth == 0 => {
                flush_stmt(toks, &mut seg, &loop_stack, &mut flow, false);
            }
            TokKind::Punct('{') if depth == 0 => {
                let head = seg.first().and_then(|&k| toks[k].ident());
                if seg.is_empty() || head.is_some_and(|h| CONTROL_KEYWORDS.contains(&h)) {
                    let is_loop = head.is_some_and(|h| matches!(h, "for" | "while" | "loop"));
                    let hash_for = flush_control_head(toks, &mut seg, &loop_stack, &mut flow);
                    loop_stack.push((hash_for, is_loop));
                } else {
                    // Expression brace (struct literal, `let x = if … {…}`,
                    // match-in-let): absorb the balanced group — union
                    // semantics over every branch.
                    let mut braces = 0i32;
                    while i < end {
                        match &toks[i].kind {
                            TokKind::Punct('{') => braces += 1,
                            TokKind::Punct('}') => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        seg.push(i);
                        i += 1;
                    }
                }
            }
            TokKind::Punct('}') if depth == 0 => {
                flush_stmt(toks, &mut seg, &loop_stack, &mut flow, false);
                loop_stack.pop();
            }
            _ => seg.push(i),
        }
        i += 1;
    }
    flush_stmt(toks, &mut seg, &loop_stack, &mut flow, true);
    flow
}

/// Parses the parameter list out of the signature range.
fn parse_params(toks: &[Tok], sig: &Range<usize>) -> Vec<Param> {
    let mut params = Vec::new();
    let mut i = sig.start;
    while i < sig.end && !toks[i].is_punct('(') {
        i += 1;
    }
    let mut depth = 0i32;
    let mut seg: Vec<usize> = Vec::new();
    let flush = |seg: &mut Vec<usize>, params: &mut Vec<Param>| {
        let mut name = None;
        let mut is_hash = false;
        let mut is_float = false;
        for &k in seg.iter() {
            if let Some(id) = toks[k].ident() {
                if name.is_none() && id != "mut" && id != "ref" && id != "_" {
                    name = Some(id.to_string());
                }
                is_hash |= id == "HashMap" || id == "HashSet";
                is_float |= id == "f32" || id == "f64";
            }
        }
        if let Some(name) = name {
            params.push(Param {
                name,
                is_hash,
                is_float,
            });
        }
        seg.clear();
    };
    while i < sig.end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                depth += 1;
                if depth > 1 {
                    seg.push(i);
                }
            }
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                seg.push(i);
            }
            TokKind::Punct(',') if depth == 1 => flush(&mut seg, &mut params),
            _ if depth >= 1 => seg.push(i),
            _ => {}
        }
        i += 1;
    }
    flush(&mut seg, &mut params);
    params
}

/// Innermost enclosing hash-ordered `for` line, if any.
fn cur_hash_loop(loop_stack: &[(Option<u32>, bool)]) -> Option<u32> {
    loop_stack.iter().rev().find_map(|x| x.0)
}

/// Whether any enclosing control frame is a loop.
fn cur_in_loop(loop_stack: &[(Option<u32>, bool)]) -> bool {
    loop_stack.iter().any(|x| x.1)
}

/// Pattern identifiers (excluding `mut`/`ref`/`_` and path-like segments).
fn binder_idents(toks: &[Tok], seg: &[usize]) -> Vec<String> {
    seg.iter()
        .filter_map(|&k| toks[k].ident())
        .filter(|id| *id != "mut" && *id != "ref" && *id != "_")
        .map(String::from)
        .collect()
}

/// Position in `seg` of the top-level assignment `=`, plus the compound-op
/// character when the `=` completes `+=`/`-=`/`*=`//=`/….
fn top_level_assign(toks: &[Tok], seg: &[usize]) -> Option<(usize, Option<char>)> {
    let mut depth = 0i32;
    for (s, &k) in seg.iter().enumerate() {
        match &toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct('=') if depth == 0 => {
                // `==` / `=>`: not an assignment.
                if let Some(&n) = seg.get(s + 1) {
                    if toks[n].is_punct('=') || toks[n].is_punct('>') {
                        continue;
                    }
                }
                match s.checked_sub(1).map(|p| &toks[seg[p]].kind) {
                    // Second half of `==`/`!=`/`<=`/`>=` (or `<<=`/`>>=`).
                    Some(TokKind::Punct(c)) if "=!<>".contains(*c) => continue,
                    Some(TokKind::Punct(c)) if "+-*/%&|^".contains(*c) => {
                        return Some((s, Some(*c)))
                    }
                    _ => return Some((s, None)),
                }
            }
            _ => {}
        }
    }
    None
}

/// Position in `seg` of the top-level type-ascription `:` (not `::`).
fn top_level_colon(toks: &[Tok], seg: &[usize], before: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (s, &k) in seg.iter().enumerate().take(before) {
        match &toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(':') if depth == 0 => {
                let next_colon = seg.get(s + 1).is_some_and(|&n| toks[n].is_punct(':'));
                let prev_colon = s.checked_sub(1).is_some_and(|p| toks[seg[p]].is_punct(':'));
                if !next_colon && !prev_colon {
                    return Some(s);
                }
            }
            _ => {}
        }
    }
    None
}

/// Flushes the accumulated segment as one classified statement.
fn flush_stmt(
    toks: &[Tok],
    seg: &mut Vec<usize>,
    loop_stack: &[(Option<u32>, bool)],
    flow: &mut FnFlow,
    is_tail: bool,
) {
    if seg.is_empty() {
        return;
    }
    let line = toks[seg[0]].line;
    let hash_loop = cur_hash_loop(loop_stack);
    let in_loop = cur_in_loop(loop_stack);
    let head = toks[seg[0]].ident().unwrap_or("");
    let stmt = if head == "let" {
        let eq = top_level_assign(toks, seg).map(|(s, _)| s);
        let bound_end = top_level_colon(toks, seg, eq.unwrap_or(seg.len()))
            .or(eq)
            .unwrap_or(seg.len());
        let bound = binder_idents(toks, &seg[1..bound_end]);
        let ty = &seg[bound_end..eq.unwrap_or(seg.len())];
        let btree_let = ty
            .iter()
            .any(|&k| toks[k].is_ident("BTreeMap") || toks[k].is_ident("BTreeSet"));
        let expr = eq
            .map(|e| parse_expr(toks, &seg[e + 1..]))
            .unwrap_or_default();
        let is_float = seg.iter().any(|&k| {
            matches!(toks[k].kind, TokKind::Float)
                || toks[k].is_ident("f32")
                || toks[k].is_ident("f64")
        });
        if is_float {
            for b in &bound {
                flow.float_locals.insert(b.clone());
            }
        }
        Stmt {
            line,
            kind: StmtKind::Let,
            bound,
            expr,
            compound_float_op: false,
            hash_loop,
            in_loop,
            btree_let,
        }
    } else if head == "return" {
        Stmt {
            line,
            kind: StmtKind::Return,
            bound: Vec::new(),
            expr: parse_expr(toks, &seg[1..]),
            compound_float_op: false,
            hash_loop,
            in_loop,
            btree_let: false,
        }
    } else if let Some((pos, op)) = top_level_assign(toks, seg) {
        let lhs_end = if op.is_some() { pos - 1 } else { pos };
        let bound: Vec<String> = seg[..lhs_end]
            .iter()
            .rev()
            .find_map(|&k| toks[k].ident().map(String::from))
            .into_iter()
            .collect();
        let bound_is_float = bound.iter().any(|b| flow.float_locals.contains(b));
        let (expr, compound_float_op) = if let Some(op) = op {
            // Compound: the whole segment (LHS reads feed the result too).
            (parse_expr(toks, seg), "+-*/".contains(op) && bound_is_float)
        } else {
            let expr = parse_expr(toks, &seg[pos + 1..]);
            // `x = x.max(v)` / `x = x.min(v)` on a float accumulator.
            let minmax = bound_is_float
                && bound.len() == 1
                && expr.calls.iter().any(|c| {
                    (c.name == "max" || c.name == "min")
                        && c.receiver.as_deref() == Some(bound[0].as_str())
                });
            (expr, minmax)
        };
        Stmt {
            line,
            kind: StmtKind::Assign,
            bound,
            expr,
            compound_float_op,
            hash_loop,
            in_loop,
            btree_let: false,
        }
    } else {
        Stmt {
            line,
            kind: if is_tail {
                StmtKind::Tail
            } else {
                StmtKind::Plain
            },
            bound: Vec::new(),
            expr: parse_expr(toks, seg),
            compound_float_op: false,
            hash_loop,
            in_loop,
            btree_let: false,
        }
    };
    flow.stmts.push(stmt);
    seg.clear();
}

/// Flushes a control-block head (`for x in m` / `while let …` / `if c` /
/// `match v` / `loop` / `unsafe`). Returns `Some(line)` when the block is a
/// `for` over a hash-ordered collection.
fn flush_control_head(
    toks: &[Tok],
    seg: &mut Vec<usize>,
    loop_stack: &[(Option<u32>, bool)],
    flow: &mut FnFlow,
) -> Option<u32> {
    if seg.is_empty() {
        return None;
    }
    let line = toks[seg[0]].line;
    let hash_loop = cur_hash_loop(loop_stack);
    let in_loop = cur_in_loop(loop_stack);
    let head = toks[seg[0]].ident().unwrap_or("");
    let mut hash_for = None;
    match head {
        "for" => {
            let in_pos = seg
                .iter()
                .position(|&k| toks[k].is_ident("in"))
                .unwrap_or(seg.len());
            let bound = binder_idents(toks, &seg[1..in_pos]);
            let expr = parse_expr(toks, &seg[(in_pos + 1).min(seg.len())..]);
            let direct =
                expr.calls.is_empty() && expr.idents.iter().any(|id| flow.hash_locals.contains(id));
            let via_method = expr.calls.iter().any(|c| {
                HASH_ITER_METHODS.contains(&c.name.as_str())
                    && c.receiver
                        .as_ref()
                        .is_some_and(|r| flow.hash_locals.contains(r))
            });
            if direct || via_method {
                hash_for = Some(line);
            }
            flow.stmts.push(Stmt {
                line,
                kind: StmtKind::For,
                bound,
                expr,
                compound_float_op: false,
                hash_loop,
                in_loop,
                btree_let: false,
            });
        }
        "while" | "if" | "else" => {
            // `while let PAT = EXPR` / `if let PAT = EXPR` bind; plain
            // conditions just read.
            let let_pos = seg.iter().position(|&k| toks[k].is_ident("let"));
            let stmt = match (let_pos, top_level_assign(toks, seg)) {
                (Some(lp), Some((eq, None))) => Stmt {
                    line,
                    kind: StmtKind::Let,
                    bound: binder_idents(toks, &seg[lp + 1..eq]),
                    expr: parse_expr(toks, &seg[eq + 1..]),
                    compound_float_op: false,
                    hash_loop,
                    in_loop,
                    btree_let: false,
                },
                _ => Stmt {
                    line,
                    kind: StmtKind::Plain,
                    bound: Vec::new(),
                    expr: parse_expr(toks, &seg[1..]),
                    compound_float_op: false,
                    hash_loop,
                    in_loop,
                    btree_let: false,
                },
            };
            flow.stmts.push(stmt);
        }
        "match" => flow.stmts.push(Stmt {
            line,
            kind: StmtKind::Plain,
            bound: Vec::new(),
            expr: parse_expr(toks, &seg[1..]),
            compound_float_op: false,
            hash_loop,
            in_loop,
            btree_let: false,
        }),
        // `loop` / `unsafe` heads carry no expression.
        _ => {}
    }
    seg.clear();
    hash_for
}

/// If `seg[s]` starts a call — `name (` or `name ::<…> (` — returns the
/// segment position of the `(` and the turbofish identifiers.
fn call_open(toks: &[Tok], seg: &[usize], s: usize) -> Option<(usize, Vec<String>)> {
    if seg.get(s + 1).is_some_and(|&n| toks[n].is_punct('(')) {
        return Some((s + 1, Vec::new()));
    }
    if !(seg.get(s + 1).is_some_and(|&n| toks[n].is_punct(':'))
        && seg.get(s + 2).is_some_and(|&n| toks[n].is_punct(':'))
        && seg.get(s + 3).is_some_and(|&n| toks[n].is_punct('<')))
    {
        return None;
    }
    let mut depth = 1i32;
    let mut fish = Vec::new();
    let mut t = s + 4;
    while t < seg.len() && depth > 0 && t < s + 64 {
        match &toks[seg[t]].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => depth -= 1,
            TokKind::Ident(id) => fish.push(id.clone()),
            _ => {}
        }
        t += 1;
    }
    (depth == 0 && seg.get(t).is_some_and(|&n| toks[n].is_punct('('))).then_some((t, fish))
}

/// Flattens a token segment to an [`Expr`]: identifiers and (recursive)
/// calls, left to right. Macro names are skipped; keywords are skipped.
fn parse_expr(toks: &[Tok], seg: &[usize]) -> Expr {
    let mut e = Expr::default();
    let mut s = 0usize;
    while s < seg.len() {
        let k = seg[s];
        let Some(name) = toks[k].ident() else {
            s += 1;
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name) {
            s += 1;
            continue;
        }
        if seg.get(s + 1).is_some_and(|&n| toks[n].is_punct('!')) {
            s += 2; // macro name: skip it, still scan its arguments
            continue;
        }
        if let Some((open, turbofish)) = call_open(toks, seg, s) {
            let qualifier =
                (s >= 3 && toks[seg[s - 1]].is_punct(':') && toks[seg[s - 2]].is_punct(':'))
                    .then(|| toks[seg[s - 3]].ident())
                    .flatten()
                    .map(String::from);
            let receiver = (s >= 2 && toks[seg[s - 1]].is_punct('.'))
                .then(|| toks[seg[s - 2]].ident())
                .flatten()
                .map(String::from);
            let mut depth = 0i32;
            let mut t = open;
            let mut args: Vec<Expr> = Vec::new();
            let mut cur: Vec<usize> = Vec::new();
            while t < seg.len() {
                match &toks[seg[t]].kind {
                    TokKind::Punct('(') => {
                        depth += 1;
                        if depth > 1 {
                            cur.push(seg[t]);
                        }
                    }
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        cur.push(seg[t]);
                    }
                    TokKind::Punct(',') if depth == 1 => {
                        if !cur.is_empty() {
                            args.push(parse_expr(toks, &cur));
                            cur.clear();
                        }
                    }
                    _ => cur.push(seg[t]),
                }
                t += 1;
            }
            if !cur.is_empty() {
                args.push(parse_expr(toks, &cur));
            }
            e.calls.push(Call {
                name: name.to_string(),
                qualifier,
                receiver,
                line: toks[k].line,
                turbofish,
                args,
            });
            s = t + 1;
            continue;
        }
        e.idents.push(name.to_string());
        s += 1;
    }
    e
}

// ---------------------------------------------------------------------------
// Taint domain
// ---------------------------------------------------------------------------

const ORDER: u8 = 1;
const VALUE: u8 = 2;

/// Where a concrete taint entered the dataflow, plus the call chain it has
/// travelled (creator first, current function last).
#[derive(Clone, Debug, PartialEq, Eq)]
struct OriginInfo {
    desc: String,
    path: String,
    line: u32,
    frames: Vec<ChainFrame>,
}

impl OriginInfo {
    fn with_frame(&self, frame: &ChainFrame) -> OriginInfo {
        let mut o = self.clone();
        if o.frames.last() != Some(frame) {
            o.frames.push(frame.clone());
        }
        o
    }
}

/// Abstract taint value of one local / expression: concrete origins (first
/// one wins; one witness suffices) plus the parameter indices whose taint
/// would flow here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct TV {
    order: Option<OriginInfo>,
    value: Option<OriginInfo>,
    p_order: BTreeSet<usize>,
    p_value: BTreeSet<usize>,
}

impl TV {
    fn merge(&mut self, other: &TV) {
        if self.order.is_none() {
            self.order = other.order.clone();
        }
        if self.value.is_none() {
            self.value = other.value.clone();
        }
        self.p_order.extend(other.p_order.iter().copied());
        self.p_value.extend(other.p_value.iter().copied());
    }

    fn kill_order(&mut self) {
        self.order = None;
        self.p_order.clear();
    }
}

/// A sink reachable from a parameter: what the sink is, where, and the
/// callee-side chain from the summarised function down to the sink.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SinkInfo {
    desc: String,
    path: String,
    line: u32,
    frames: Vec<ChainFrame>,
}

/// One function's interprocedural summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Summary {
    /// Taint of the returned value (concrete origins + param flows).
    ret: TV,
    /// Parameter index → sinks its taint reaches inside this function
    /// (transitively), with the taint kinds that get through.
    param_sink: BTreeMap<usize, Vec<(u8, SinkInfo)>>,
}

// ---------------------------------------------------------------------------
// Sources, sinks, sanitizers
// ---------------------------------------------------------------------------

/// The `sort*` family: establishes a deterministic order.
const SORT_SANITIZERS: [&str; 7] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

/// `ultra-par`'s ordered execution APIs: chunking and assembly order are
/// fixed, so results are thread-count-invariant by construction.
const ORDERED_API_SANITIZERS: [&str; 11] = [
    "reduce_ordered",
    "par_reduce_ordered",
    "ranges_map_ordered",
    "ranges_map_ordered_with",
    "chunks_map_ordered",
    "chunks_map_ordered_with",
    "map_ordered",
    "map_ordered_each",
    "par_map_ordered",
    "par_chunks_map_ordered",
    "par_ranges_map_ordered",
];

/// Order-insensitive observers: their result does not depend on iteration
/// order, so order-taint stops here (value-taint does not).
const OBSERVER_SANITIZERS: [&str; 11] = [
    "len",
    "count",
    "is_empty",
    "contains",
    "contains_key",
    "any",
    "all",
    "max",
    "min",
    "max_by_key",
    "min_by_key",
];

/// Integer types whose `sum()`/`product()` is order-insensitive (exact
/// arithmetic commutes; float sums do not).
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods that fold their argument's taint into the receiver.
const ACCUMULATORS: [&str; 5] = ["push", "insert", "extend", "append", "push_back"];

fn is_order_sanitizer(c: &Call, extra: &BTreeSet<String>) -> bool {
    let name = c.name.as_str();
    if SORT_SANITIZERS.contains(&name)
        || ORDERED_API_SANITIZERS.contains(&name)
        || OBSERVER_SANITIZERS.contains(&name)
    {
        return true;
    }
    if name == "collect"
        && c.turbofish
            .iter()
            .any(|t| t == "BTreeMap" || t == "BTreeSet")
    {
        return true;
    }
    if (name == "sum" || name == "product")
        && c.turbofish.iter().any(|t| INT_TYPES.contains(&t.as_str()))
    {
        return true;
    }
    extra.contains(name)
}

fn collect_order_sanitizers<'e>(expr: &'e Expr, extra: &BTreeSet<String>, out: &mut Vec<&'e Call>) {
    for c in &expr.calls {
        if is_order_sanitizer(c, extra) {
            out.push(c);
        }
        for a in &c.args {
            collect_order_sanitizers(a, extra, out);
        }
    }
}

/// Nondeterminism-source classification of one call. `fn_name` gates the
/// `env::var` exemption: configuration loaders may read the environment.
fn source_of(call: &Call, fn_name: &str, hash_locals: &BTreeSet<String>) -> Option<(u8, String)> {
    let name = call.name.as_str();
    let qual = call.qualifier.as_deref();
    if HASH_ITER_METHODS.contains(&name) {
        if let Some(r) = call.receiver.as_ref().filter(|r| hash_locals.contains(*r)) {
            return Some((ORDER, format!("iteration over hash-ordered `{r}`")));
        }
    }
    if name == "current" && qual == Some("thread") {
        return Some((VALUE, "thread-id observation (`thread::current()`)".into()));
    }
    if name == "now" && matches!(qual, Some("Instant") | Some("SystemTime")) {
        return Some((
            VALUE,
            format!("wall-clock read (`{}::now()`)", qual.unwrap_or("")),
        ));
    }
    if name == "thread_rng" || name == "from_entropy" {
        return Some((VALUE, format!("OS-entropy RNG (`{name}`)")));
    }
    if (name == "var" || name == "var_os") && qual == Some("env") {
        let lower = fn_name.to_lowercase();
        let configish = lower.contains("env") || lower.contains("config") || lower.contains("load");
        if !configish {
            return Some((VALUE, format!("environment read (`env::{name}`)")));
        }
    }
    if name == "as_ptr" && qual == Some("Arc") {
        return Some((VALUE, "pointer-address observation (`Arc::as_ptr`)".into()));
    }
    None
}

/// Determinism-sink classification of one call.
fn sink_of(call: &Call) -> Option<String> {
    let name = call.name.as_str();
    match name {
        "from_scores" | "from_sorted" if call.qualifier.as_deref() == Some("RankedList") => {
            Some(format!("RankedList construction (`RankedList::{name}`)"))
        }
        "write_json_response" => Some("serve response body (`write_json_response`)".into()),
        "export_dataset" => Some("dataset export (`export_dataset`)".into()),
        "push" if call.receiver.as_deref() == Some("losses") => {
            Some("loss-curve accumulation (`losses.push`)".into())
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    graph: &'a Graph<'a>,
    extra_sanitizers: &'a BTreeSet<String>,
    summaries: &'a BTreeMap<FnId, Summary>,
}

struct FnEval<'a> {
    ctx: &'a Ctx<'a>,
    file: usize,
    path: &'a str,
    fn_name: &'a str,
    me: ChainFrame,
    flow: &'a FnFlow,
    state: BTreeMap<String, TV>,
    summary: Summary,
    emit: bool,
    findings: Vec<Diagnostic>,
}

fn frame_of(m: &FileModel, f: &FnDef) -> ChainFrame {
    ChainFrame {
        function: f.name.clone(),
        path: m.path.clone(),
        line: f.line,
    }
}

impl<'a> FnEval<'a> {
    fn run(mut self) -> (Summary, Vec<Diagnostic>) {
        for p in self.flow.params.iter().enumerate() {
            let (pi, p) = p;
            let mut tv = TV::default();
            tv.p_order.insert(pi);
            tv.p_value.insert(pi);
            self.state.insert(p.name.clone(), tv);
        }
        // Two sweeps so loop-carried taint (an accumulator tainted late in
        // the body, read early in the next iteration) stabilises; findings
        // only fire on the second to avoid duplicates.
        for pass in 0..2 {
            let emit_now = self.emit && pass == 1;
            let stmts = self.flow.stmts.clone();
            for stmt in &stmts {
                self.eval_stmt(stmt, emit_now);
            }
        }
        (self.summary, self.findings)
    }

    fn eval_stmt(&mut self, stmt: &Stmt, emit: bool) {
        let mut tv = self.eval_expr(&stmt.expr, emit);
        // Statement-level order kill: any sanitizing call cleans the whole
        // statement's result and its direct receiver.
        let mut sans = Vec::new();
        collect_order_sanitizers(&stmt.expr, self.ctx.extra_sanitizers, &mut sans);
        if !sans.is_empty() || stmt.btree_let {
            tv.kill_order();
            for c in &sans {
                if let Some(r) = &c.receiver {
                    if let Some(s) = self.state.get_mut(r) {
                        s.kill_order();
                    }
                }
            }
        }
        match stmt.kind {
            StmtKind::For => {
                if stmt.hash_loop == Some(stmt.line) {
                    // This head *is* the hash-ordered iteration: the loop
                    // bindings are order-tainted at the source.
                    let what = stmt
                        .expr
                        .idents
                        .first()
                        .cloned()
                        .unwrap_or_else(|| "a hash map".into());
                    if tv.order.is_none() {
                        tv.order = Some(OriginInfo {
                            desc: format!("iteration over hash-ordered `{what}`"),
                            path: self.path.to_string(),
                            line: stmt.line,
                            frames: vec![self.me.clone()],
                        });
                    }
                }
                for b in &stmt.bound {
                    self.state.insert(b.clone(), tv.clone());
                }
            }
            StmtKind::Let => {
                if stmt.bound.len() == 1 {
                    self.state.insert(stmt.bound[0].clone(), tv);
                } else {
                    for b in &stmt.bound {
                        self.state.entry(b.clone()).or_default().merge(&tv);
                    }
                }
            }
            StmtKind::Assign => {
                // Compound assignments parse the LHS into the expression,
                // so a plain strong update preserves accumulated taint.
                if let Some(b) = stmt.bound.first() {
                    self.state.insert(b.clone(), tv);
                }
            }
            StmtKind::Return | StmtKind::Tail => {
                self.summary.ret.merge(&tv);
            }
            StmtKind::Plain => {}
        }
    }

    fn eval_expr(&mut self, expr: &Expr, emit: bool) -> TV {
        let mut tv = TV::default();
        for id in &expr.idents {
            if let Some(v) = self.state.get(id) {
                let v = v.clone();
                tv.merge(&v);
            }
        }
        for call in &expr.calls {
            let ct = self.eval_call(call, emit);
            tv.merge(&ct);
        }
        tv
    }

    fn eval_call(&mut self, call: &Call, emit: bool) -> TV {
        let arg_tvs: Vec<TV> = call.args.iter().map(|a| self.eval_expr(a, emit)).collect();
        let recv_tv = call
            .receiver
            .as_ref()
            .and_then(|r| self.state.get(r).cloned())
            .unwrap_or_default();

        // 1. Nondeterminism source?
        if let Some((kind, desc)) = source_of(call, self.fn_name, &self.flow.hash_locals) {
            let origin = OriginInfo {
                desc,
                path: self.path.to_string(),
                line: call.line,
                frames: vec![self.me.clone()],
            };
            let mut tv = TV::default();
            if kind == ORDER {
                tv.order = Some(origin);
            } else {
                tv.value = Some(origin);
            }
            return tv;
        }

        // 2. Order sanitizer? The result no longer depends on iteration
        // order; value taint (wall-clock, entropy, …) still flows — sorting
        // doesn't remove an environmental observation from the data.
        if is_order_sanitizer(call, self.ctx.extra_sanitizers) {
            let mut out = recv_tv;
            for a in &arg_tvs {
                out.merge(a);
            }
            out.kill_order();
            return out;
        }

        // 3. Determinism sink?
        if let Some(desc) = sink_of(call) {
            let mut incoming = TV::default();
            for a in &arg_tvs {
                incoming.merge(a);
            }
            if emit {
                for origin in [&incoming.order, &incoming.value].into_iter().flatten() {
                    self.report(&desc, self.path, call.line, origin, &[]);
                }
            }
            let sink = SinkInfo {
                desc: desc.clone(),
                path: self.path.to_string(),
                line: call.line,
                frames: vec![self.me.clone()],
            };
            for (&pi, kind) in incoming
                .p_order
                .iter()
                .map(|p| (p, ORDER))
                .chain(incoming.p_value.iter().map(|p| (p, VALUE)))
            {
                push_param_sink(&mut self.summary, pi, kind, sink.clone());
            }
            // The sink consumes the value; don't cascade taint further.
            return TV::default();
        }

        // 4. Workspace call with a summary: apply return and sink effects.
        let targets = self.ctx.graph.resolve(self.file, &call.name);
        if !targets.is_empty() {
            let mut out = TV::default();
            for t in targets {
                let Some(sum) = self.ctx.summaries.get(&t) else {
                    continue;
                };
                if let Some(o) = &sum.ret.order {
                    if out.order.is_none() {
                        out.order = Some(o.with_frame(&self.me));
                    }
                }
                if let Some(o) = &sum.ret.value {
                    if out.value.is_none() {
                        out.value = Some(o.with_frame(&self.me));
                    }
                }
                // Param → return flows.
                for (&pi, kind) in sum
                    .ret
                    .p_order
                    .iter()
                    .map(|p| (p, ORDER))
                    .chain(sum.ret.p_value.iter().map(|p| (p, VALUE)))
                {
                    let Some(arg) = arg_tvs.get(pi) else { continue };
                    if kind == ORDER {
                        if out.order.is_none() {
                            out.order = arg.order.clone();
                        }
                        out.p_order.extend(arg.p_order.iter().copied());
                    } else {
                        if out.value.is_none() {
                            out.value = arg.value.clone();
                        }
                        out.p_value.extend(arg.p_value.iter().copied());
                    }
                }
                // Param → sink flows: a tainted argument here reaches a sink
                // inside the callee.
                for (&pi, sinks) in &sum.param_sink {
                    let Some(arg) = arg_tvs.get(pi) else { continue };
                    for (kind, sink) in sinks {
                        let origin = if *kind == ORDER {
                            &arg.order
                        } else {
                            &arg.value
                        };
                        if let Some(origin) = origin {
                            if emit {
                                self.report(
                                    &sink.desc,
                                    &sink.path,
                                    sink.line,
                                    origin,
                                    &sink.frames,
                                );
                            }
                        }
                        let params = if *kind == ORDER {
                            &arg.p_order
                        } else {
                            &arg.p_value
                        };
                        for &pj in params {
                            let mut fwd = sink.clone();
                            let mut frames = vec![self.me.clone()];
                            frames.extend(fwd.frames);
                            fwd.frames = frames;
                            push_param_sink(&mut self.summary, pj, *kind, fwd);
                        }
                    }
                }
            }
            return out;
        }

        // 5. Unresolved (std / foreign): taint passes through from the
        // receiver and the arguments; accumulators also fold argument taint
        // back into the receiver.
        let mut out = recv_tv;
        for a in &arg_tvs {
            out.merge(a);
        }
        if ACCUMULATORS.contains(&call.name.as_str()) {
            if let Some(r) = &call.receiver {
                let mut add = TV::default();
                for a in &arg_tvs {
                    add.merge(a);
                }
                self.state.entry(r.clone()).or_default().merge(&add);
            }
        }
        out
    }

    fn report(
        &mut self,
        sink_desc: &str,
        sink_path: &str,
        sink_line: u32,
        origin: &OriginInfo,
        callee_frames: &[ChainFrame],
    ) {
        let mut chain = origin.frames.clone();
        for f in callee_frames {
            if chain.last() != Some(f) {
                chain.push(f.clone());
            }
        }
        self.findings.push(Diagnostic {
            rule: Rule::NoTaintedRanking,
            severity: Rule::NoTaintedRanking.severity(),
            path: sink_path.to_string(),
            line: sink_line,
            message: format!("{sink_desc} receives a value influenced by {}", origin.desc),
            suggestion: "establish a deterministic order before the sink (sort with a total \
                         key, collect into a BTreeMap, or use ultra_par's *_ordered APIs) — \
                         or waive with a written reason in lint.toml",
            chain,
            origin: Some(TaintOrigin {
                desc: origin.desc.clone(),
                path: origin.path.clone(),
                line: origin.line,
            }),
            region: None,
        });
    }
}

fn push_param_sink(summary: &mut Summary, pi: usize, kind: u8, sink: SinkInfo) {
    let sinks = summary.param_sink.entry(pi).or_default();
    if !sinks.iter().any(|(k, s)| *k == kind && *s == sink) {
        sinks.push((kind, sink));
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs L10/L11/L12 over the library-file models. `extra_sanitizers` are
/// the `[[sanitizer]]` function names from `lint.toml`.
pub fn check_taint(models: &[FileModel], extra_sanitizers: &[String]) -> Vec<Diagnostic> {
    let graph = Graph::build(models);
    let extra: BTreeSet<String> = extra_sanitizers.iter().cloned().collect();
    let mut summaries: BTreeMap<FnId, Summary> = BTreeMap::new();

    // Summaries to a fixpoint (capped: each round deepens visible chains by
    // one call level; ten covers any realistic workspace depth).
    for _round in 0..10 {
        let ctx = Ctx {
            graph: &graph,
            extra_sanitizers: &extra,
            summaries: &summaries,
        };
        let mut next: BTreeMap<FnId, Summary> = BTreeMap::new();
        for_each_fn(models, |fi, fj, m, f| {
            let (sum, _) = make_eval(&ctx, fi, m, f, false).run();
            next.insert((fi, fj), sum);
        });
        let stable = next == summaries;
        summaries = next;
        if stable {
            break;
        }
    }

    // Final emitting pass against the stable summaries.
    let ctx = Ctx {
        graph: &graph,
        extra_sanitizers: &extra,
        summaries: &summaries,
    };
    let mut findings = Vec::new();
    for_each_fn(models, |fi, _fj, m, f| {
        let (_, found) = make_eval(&ctx, fi, m, f, true).run();
        findings.extend(found);
    });

    // A flow can be witnessed from several functions along the chain; keep
    // the first (longest-chain reports come from the outermost caller, which
    // eval order visits in file order — dedupe purely on sink+source site).
    let mut seen: BTreeSet<(String, u32, String, u32)> = BTreeSet::new();
    findings.retain(|d| match d.origin.as_ref() {
        Some(o) => seen.insert((d.path.clone(), d.line, o.path.clone(), o.line)),
        None => true,
    });

    check_seeded_rng(models, &mut findings);
    check_ordered_float(models, &mut findings);
    findings
}

fn for_each_fn(models: &[FileModel], mut f: impl FnMut(usize, usize, &FileModel, &FnDef)) {
    for (fi, m) in models.iter().enumerate() {
        for (fj, fun) in m.fns.iter().enumerate() {
            if fun.in_test || fun.body.is_empty() {
                continue;
            }
            f(fi, fj, m, fun);
        }
    }
}

fn make_eval<'a>(
    ctx: &'a Ctx<'a>,
    file: usize,
    m: &'a FileModel,
    f: &'a FnDef,
    emit: bool,
) -> FnEval<'a> {
    FnEval {
        ctx,
        file,
        path: &m.path,
        fn_name: &f.name,
        me: frame_of(m, f),
        flow: &f.flow,
        state: BTreeMap::new(),
        summary: Summary::default(),
        emit,
        findings: Vec::new(),
    }
}

/// RNG creation entry points L11 audits.
const RNG_SEED_FNS: [&str; 3] = ["derive_rng", "seed_from_u64", "from_seed"];

/// Calls that mark a seed expression as properly derived.
const SEED_DERIVERS: [&str; 3] = ["mix_seed", "stream_label", "derive_rng"];

/// Identifier roots that count as config/query-derived state.
const SEEDISH_IDENTS: [&str; 4] = ["cfg", "config", "query", "stream"];

/// L11 — every RNG creation site must *syntactically* receive a seed that
/// traces back to config/query state: an identifier containing "seed", one
/// of the config/query roots, or a call through the seed-derivation helpers.
fn check_seeded_rng(models: &[FileModel], out: &mut Vec<Diagnostic>) {
    for m in models {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            for stmt in &f.flow.stmts {
                walk_calls(&stmt.expr, &mut |c| {
                    if RNG_SEED_FNS.contains(&c.name.as_str()) && !seed_is_derived(c) {
                        out.push(Diagnostic {
                            rule: Rule::SeededRngOnly,
                            severity: Rule::SeededRngOnly.severity(),
                            path: m.path.clone(),
                            line: c.line,
                            message: format!(
                                "`{}` without a config/query-derived seed argument",
                                c.name
                            ),
                            suggestion: "derive the seed from run state: \
                                         `ultra_core::rng::derive_rng(cfg.seed, \
                                         stream_label(\"...\"))`",
                            chain: Vec::new(),
                            origin: None,
                            region: None,
                        });
                    }
                });
            }
        }
    }
}

fn seed_is_derived(call: &Call) -> bool {
    let mut ok = false;
    for a in &call.args {
        expr_any(a, &mut |e| {
            ok |= e.idents.iter().any(|id| {
                let lower = id.to_lowercase();
                lower.contains("seed") || SEEDISH_IDENTS.contains(&lower.as_str())
            });
            ok |= e.calls.iter().any(|c| {
                SEED_DERIVERS.contains(&c.name.as_str())
                    || c.name.to_lowercase().contains("seed")
                    || c.receiver
                        .as_deref()
                        .is_some_and(|r| SEEDISH_IDENTS.contains(&r.to_lowercase().as_str()))
            });
        });
    }
    ok
}

fn expr_any(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    for c in &expr.calls {
        for a in &c.args {
            expr_any(a, f);
        }
    }
}

fn walk_calls(expr: &Expr, f: &mut impl FnMut(&Call)) {
    for c in &expr.calls {
        f(c);
        for a in &c.args {
            walk_calls(a, f);
        }
    }
}

/// L12 — float accumulation (`+=`, `-=`, `*=`, `/=`, `x = x.max(..)`)
/// inside a loop over a hash-ordered collection: float arithmetic is not
/// associative, so the iteration order changes the result.
fn check_ordered_float(models: &[FileModel], out: &mut Vec<Diagnostic>) {
    for m in models {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            for stmt in &f.flow.stmts {
                let (true, Some(loop_line)) = (stmt.compound_float_op, stmt.hash_loop) else {
                    continue;
                };
                out.push(Diagnostic {
                    rule: Rule::OrderedFloatReduction,
                    severity: Rule::OrderedFloatReduction.severity(),
                    path: m.path.clone(),
                    line: stmt.line,
                    message: format!(
                        "float accumulation in a loop over a hash-ordered collection \
                         (loop at line {loop_line}): iteration order changes the sum"
                    ),
                    suggestion: "iterate a BTreeMap / sorted keys, or reduce through \
                                 ultra_par's ordered APIs (`reduce_ordered`, \
                                 `ranges_map_ordered`)",
                    chain: Vec::new(),
                    origin: None,
                    region: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_source;
    use crate::rules::Rule;

    /// A non-ranked library path (keeps L2 out of the way so the tests see
    /// only the taint rules).
    const LIB: &str = "crates/lm/src/x.rs";

    fn taint_findings(src: &str) -> Vec<Diagnostic> {
        check_source(LIB, src)
            .into_iter()
            .filter(|d| d.rule == Rule::NoTaintedRanking)
            .collect()
    }

    #[test]
    fn file_hash_idents_sees_ascriptions_and_constructors() {
        let lexed = crate::lexer::lex(
            "struct S { cache: HashMap<u64, u32> }\n\
             fn f(m: &std::collections::HashMap<u64, u32>) {\n\
                 let mut local = HashMap::new();\n\
                 let plain: Vec<u32> = Vec::new();\n\
             }",
        );
        let hash = file_hash_idents(&lexed.tokens);
        assert!(hash.contains("cache"));
        assert!(hash.contains("m"), "qualified path walks back to the name");
        assert!(hash.contains("local"));
        assert!(!hash.contains("plain"));
    }

    #[test]
    fn three_deep_hash_iteration_chain_reaches_ranked_list() {
        let src = "\
fn collect_scores(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

fn assemble(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let pairs = collect_scores(m);
    pairs
}

fn rank(m: &HashMap<u64, f32>) -> RankedList {
    let pairs = assemble(m);
    RankedList::from_sorted(pairs)
}
";
        let found = taint_findings(src);
        assert_eq!(found.len(), 1, "exactly one flow: {found:#?}");
        let d = &found[0];
        assert_eq!(d.line, 16, "fires at the sink call");
        let names: Vec<&str> = d.chain.iter().map(|f| f.function.as_str()).collect();
        assert_eq!(names, ["collect_scores", "assemble", "rank"]);
        let origin = d.origin.as_ref().expect("L10 carries an origin");
        assert_eq!(origin.line, 3, "origin is the hash iteration");
        assert!(origin.desc.contains("hash-ordered"), "{}", origin.desc);
        // The rendered finding shows the whole story.
        let text = d.to_string();
        assert!(text.contains("source:"), "{text}");
        assert!(text.contains("collect_scores"), "{text}");
    }

    #[test]
    fn sorting_before_the_sink_silences_the_chain() {
        let src = "\
fn collect_scores(m: &HashMap<u64, f32>) -> Vec<(u64, f32)> {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

fn rank(m: &HashMap<u64, f32>) -> RankedList {
    let mut pairs = collect_scores(m);
    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    RankedList::from_sorted(pairs)
}
";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn taint_flows_through_a_callee_parameter_to_its_sink() {
        let src = "\
fn respond(body: Vec<u8>) {
    write_json_response(body);
}

fn build_response(m: &HashMap<u64, u64>) {
    let mut body = Vec::new();
    for k in m.keys() {
        body.push(*k);
    }
    respond(body);
}
";
        let found = taint_findings(src);
        assert_eq!(found.len(), 1, "{found:#?}");
        let d = &found[0];
        assert_eq!(d.line, 2, "reported at the sink inside the callee");
        let names: Vec<&str> = d.chain.iter().map(|f| f.function.as_str()).collect();
        assert_eq!(names, ["build_response", "respond"]);
        assert_eq!(d.origin.as_ref().expect("origin").line, 7);
    }

    #[test]
    fn observers_and_btree_collects_stop_order_taint() {
        let src = "\
fn summarize(m: &HashMap<u64, u64>) -> RankedList {
    let n = m.len();
    let ordered = m.iter().collect::<BTreeMap<_, _>>();
    let mut out = Vec::new();
    out.push(n);
    RankedList::from_scores(out, ordered)
}
";
        assert!(taint_findings(src).is_empty());
    }

    #[test]
    fn value_taint_is_not_sanitized_by_sorting() {
        let src = "\
fn stamp() -> u64 {
    let t = SystemTime::now();
    to_millis(t)
}

fn rank(scores: Vec<u64>) -> RankedList {
    let mut v = scores;
    let salt = stamp();
    v.push(salt);
    v.sort_unstable();
    RankedList::from_sorted(v)
}
";
        let found = taint_findings(src);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert!(found[0]
            .origin
            .as_ref()
            .expect("origin")
            .desc
            .contains("wall-clock"));
    }

    #[test]
    fn config_sanitizer_functions_kill_order_taint() {
        let src = "\
fn canonical_order(v: Vec<u64>) -> Vec<u64> {
    deterministic_sort(v)
}

fn rank(m: &HashMap<u64, u64>) -> RankedList {
    let mut raw = Vec::new();
    for k in m.keys() {
        raw.push(*k);
    }
    RankedList::from_sorted(canonical_order(raw))
}
";
        let with = crate::check_sources_with(&[(LIB, src)], &["canonical_order".to_string()]);
        assert!(
            !with
                .diagnostics
                .iter()
                .any(|d| d.rule == Rule::NoTaintedRanking),
            "{:#?}",
            with.diagnostics
        );
        assert_eq!(
            taint_findings(src).len(),
            1,
            "without the config entry it fires"
        );
    }

    #[test]
    fn unseeded_rng_construction_fires_l11() {
        let bad = "\
fn make(x: u64) -> UltraRng {
    UltraRng::seed_from_u64(x)
}
";
        let found: Vec<Diagnostic> = check_source(LIB, bad)
            .into_iter()
            .filter(|d| d.rule == Rule::SeededRngOnly)
            .collect();
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].line, 2);

        let good = "\
fn make(cfg: &Config) -> UltraRng {
    let a = UltraRng::seed_from_u64(cfg.seed);
    let b = UltraRng::seed_from_u64(mix_seed(cfg.seed, stream_label(\"expand\")));
    let c = derive_rng(query.seed, 7);
    mix(a, b, c)
}
";
        assert!(!check_source(LIB, good)
            .iter()
            .any(|d| d.rule == Rule::SeededRngOnly));
    }

    #[test]
    fn float_accumulation_in_hash_loop_fires_l12() {
        let bad = "\
fn total(m: &HashMap<u64, f32>) -> f32 {
    let mut sum = 0.0;
    for (_, v) in m.iter() {
        sum += *v;
    }
    sum
}
";
        let found: Vec<Diagnostic> = check_source(LIB, bad)
            .into_iter()
            .filter(|d| d.rule == Rule::OrderedFloatReduction)
            .collect();
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].line, 4);
        assert!(found[0].message.contains("line 3"), "{}", found[0].message);

        // Same reduction over a BTreeMap is deterministic: silent.
        let good = bad.replace("HashMap", "BTreeMap");
        assert!(!check_source(LIB, &good)
            .iter()
            .any(|d| d.rule == Rule::OrderedFloatReduction));

        // `x = x.max(..)` over hash iteration counts as accumulation too.
        let minmax = "\
fn peak(m: &HashMap<u64, f32>) -> f32 {
    let mut best = 0.0;
    for (_, v) in m.iter() {
        best = best.max(*v);
    }
    best
}
";
        assert!(check_source(LIB, minmax)
            .iter()
            .any(|d| d.rule == Rule::OrderedFloatReduction));
    }

    #[test]
    fn integer_accumulation_in_hash_loop_is_fine() {
        let src = "\
fn total(m: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (_, v) in m.iter() {
        sum += *v;
    }
    sum
}
";
        assert!(!check_source(LIB, src)
            .iter()
            .any(|d| d.rule == Rule::OrderedFloatReduction));
    }
}

//! Workspace call graph and the interprocedural rules L7–L9.
//!
//! Name resolution is heuristic and layered. Method calls whose receiver
//! can be *typed* — `self` (the enclosing `impl` target), a typed param or
//! `let` binding, or a same-file struct field — resolve through the
//! workspace-wide `(type, method)` impl index: a hit is an edge, a typed
//! miss on a workspace type stays unresolved, and a typed miss on a foreign
//! type (`Vec`, `HashMap`, `TcpStream`, …) is *external* — known
//! out-of-workspace, neither an edge nor noise in the unresolved count.
//! Smart-pointer receivers (`Arc`, `Box`, …) auto-deref, so they fall back
//! to the name layering below rather than being misclassified as foreign.
//!
//! Everything else resolves by name: a call from file `F` in crate `C` to
//! `name` resolves to (1) every non-test `fn name` in `F` itself, else (2)
//! every one in `C`, else (3) every one in a workspace crate that `F`
//! imports (`use ultra_<k>::…` / `use ultrawiki::…`). Anything else is
//! *unresolved*: counted in [`CrossAnalysis::unresolved_calls`] and never
//! traversed, so the graph over-approximates within the workspace and is
//! explicit about what it cannot see (std / vendored deps). Multiple
//! same-name matches all become edges — reachability may report a chain
//! through a same-named sibling, which errs toward reporting.
//!
//! - **L7** walks breadth-first from the serve entry points (`handle_*` in
//!   `crates/serve/**/api.rs` / `server.rs`, and `worker_loop` in
//!   `pool.rs`) and flags every reachable panic source with its full call
//!   chain. `unwrap`/`expect`/panic-macros count in any library crate;
//!   indexing counts only inside `crates/serve` (index-heavy numeric kernels
//!   are L4/L9 territory — flagging every `m[i]` reachable through the
//!   engine would drown the signal). Calls and panic sites inside a
//!   `catch_unwind(..)` argument are skipped: the panic cannot escape.
//! - **L8** computes, per crate, each function's directly-acquired lock
//!   fields plus (to a fixpoint) the locks acquired by its same-crate
//!   callees, then flags any pair of lock fields acquired in both orders.
//!   Lock scopes are not tracked — a guard dropped before the second
//!   acquisition still counts, which again errs toward reporting.
//! - **L9** flags allocation calls inside loop bodies of functions carrying
//!   a `// ultra-lint: hot` marker.

use crate::parser::{CallSite, FileModel, LockKind, PanicKind};
use crate::rules::{ChainFrame, Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Smart pointers and cells that auto-deref to their payload: a receiver
/// typed to one of these says nothing about where the method lives, so
/// resolution falls back to the name layering instead of calling it
/// foreign.
const TRANSPARENT_TYPES: [&str; 6] = ["Arc", "Rc", "Box", "RefCell", "Ref", "RefMut"];

/// How one call site relates to the workspace graph.
pub(crate) enum Resolution {
    /// Resolved to one or more workspace definitions (graph edges).
    Workspace(Vec<FnId>),
    /// Typed receiver on a foreign type — known external, not counted.
    External,
    /// No workspace definition found — counted, never traversed.
    Unresolved,
}

/// Result of the cross-file analysis.
pub struct CrossAnalysis {
    /// L7/L8/L9 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Call sites (in non-test library functions) that resolved to no
    /// workspace function — std, vendored deps, methods on foreign types.
    /// Reported so the over-approximation boundary stays visible.
    pub unresolved_calls: usize,
}

/// A function's global identity: (file index, fn index within the file).
pub(crate) type FnId = (usize, usize);

/// The heuristic workspace call graph. Shared with [`crate::dataflow`],
/// whose taint propagation follows the same resolution layering.
pub(crate) struct Graph<'a> {
    pub(crate) models: &'a [FileModel],
    /// (crate key, fn name) → definitions, in (file, fn) order.
    by_crate: BTreeMap<(&'a str, &'a str), Vec<FnId>>,
    /// (impl target type, method name) → definitions, workspace-wide.
    by_impl: BTreeMap<(&'a str, &'a str), Vec<FnId>>,
    /// Every type name the workspace defines (structs, enums, impl
    /// targets) — the boundary between "unresolved" and "external".
    type_defs: BTreeSet<&'a str>,
}

impl<'a> Graph<'a> {
    pub(crate) fn build(models: &'a [FileModel]) -> Graph<'a> {
        let mut by_crate: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut type_defs: BTreeSet<&str> = BTreeSet::new();
        for (fi, m) in models.iter().enumerate() {
            type_defs.extend(m.type_defs.iter().map(String::as_str));
            for (fj, f) in m.fns.iter().enumerate() {
                if f.in_test || m.krate.is_empty() {
                    continue;
                }
                by_crate
                    .entry((m.krate.as_str(), f.name.as_str()))
                    .or_default()
                    .push((fi, fj));
                if let Some(ty) = f.self_type.as_deref() {
                    by_impl
                        .entry((ty, f.name.as_str()))
                        .or_default()
                        .push((fi, fj));
                }
            }
        }
        Graph {
            models,
            by_crate,
            by_impl,
            type_defs,
        }
    }

    /// The syntactic type of a receiver identifier inside one function, if
    /// recoverable: `self` → impl target, then typed params/lets, then
    /// same-file struct fields.
    pub(crate) fn receiver_type(&self, file: usize, fnidx: usize, recv: &str) -> Option<&str> {
        let m = &self.models[file];
        let f = &m.fns[fnidx];
        if recv == "self" {
            return f.self_type.as_deref();
        }
        if let Some((_, t)) = f.local_types.iter().find(|(n, _)| n == recv) {
            return Some(t);
        }
        m.field_types
            .iter()
            .find(|(n, _)| n == recv)
            .map(|(_, t)| t.as_str())
    }

    /// Full resolution of one call site: typed-receiver impl lookup first,
    /// name layering as the fallback (see the module docs).
    pub(crate) fn resolve_site(&self, file: usize, fnidx: usize, call: &CallSite) -> Resolution {
        if let Some(recv) = call.recv.as_deref() {
            if let Some(ty) = self.receiver_type(file, fnidx, recv) {
                if !TRANSPARENT_TYPES.contains(&ty) {
                    if let Some(hits) = self.by_impl.get(&(ty, call.callee.as_str())) {
                        return Resolution::Workspace(hits.clone());
                    }
                    if self.type_defs.contains(ty) {
                        // A workspace type without that method in any impl:
                        // derive-generated or trait-provided — unknown.
                        return Resolution::Unresolved;
                    }
                    return Resolution::External;
                }
            }
        }
        let hits = self.resolve(file, &call.callee);
        if hits.is_empty() {
            Resolution::Unresolved
        } else {
            Resolution::Workspace(hits)
        }
    }

    /// Resolves a call made in `file` to workspace definitions (see the
    /// module docs for the same-file → same-crate → imports layering).
    /// Empty means unresolved.
    pub(crate) fn resolve(&self, file: usize, callee: &str) -> Vec<FnId> {
        let m = &self.models[file];
        let same_file: Vec<FnId> = m
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.in_test && f.name == callee)
            .map(|(fj, _)| (file, fj))
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        if let Some(hits) = self.by_crate.get(&(m.krate.as_str(), callee)) {
            if !hits.is_empty() {
                return hits.clone();
            }
        }
        let mut out = Vec::new();
        for key in &m.imports {
            if *key == m.krate {
                continue;
            }
            if let Some(hits) = self.by_crate.get(&(key.as_str(), callee)) {
                out.extend(hits.iter().copied());
            }
        }
        out
    }

    /// Same-crate-only resolution (L8's scope: lock fields are per crate).
    pub(crate) fn resolve_in_crate(&self, file: usize, callee: &str) -> Vec<FnId> {
        let m = &self.models[file];
        let same_file: Vec<FnId> = m
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.in_test && f.name == callee)
            .map(|(fj, _)| (file, fj))
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        self.by_crate
            .get(&(m.krate.as_str(), callee))
            .cloned()
            .unwrap_or_default()
    }
}

/// Runs L7, L8, L9, L13, and L14 over the per-file models of every library
/// file.
pub fn check_cross(models: &[FileModel]) -> CrossAnalysis {
    let graph = Graph::build(models);
    let mut diagnostics = Vec::new();
    check_panic_reachability(&graph, &mut diagnostics);
    check_lock_order(&graph, &mut diagnostics);
    check_hot_loops(models, &mut diagnostics);
    crate::guards::check_guards(&graph, &mut diagnostics);

    let mut unresolved = 0usize;
    for (fi, m) in models.iter().enumerate() {
        for (fj, f) in m.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            unresolved += f
                .calls
                .iter()
                .filter(|c| matches!(graph.resolve_site(fi, fj, c), Resolution::Unresolved))
                .count();
        }
    }
    CrossAnalysis {
        diagnostics,
        unresolved_calls: unresolved,
    }
}

/// Whether a function is an L7 entry point: a request handler or the worker
/// loop in `crates/serve`.
fn is_serve_entry(path: &str, name: &str) -> bool {
    if !path.starts_with("crates/serve/") {
        return false;
    }
    (name.starts_with("handle_") && (path.ends_with("/api.rs") || path.ends_with("/server.rs")))
        || (name == "worker_loop" && path.ends_with("/pool.rs"))
}

/// L7 — BFS from each serve entry; every reachable unguarded panic source
/// is a finding, reported once with the first (shortest, lowest-entry)
/// chain that reaches it.
fn check_panic_reachability(graph: &Graph<'_>, out: &mut Vec<Diagnostic>) {
    let mut entries: Vec<FnId> = Vec::new();
    for (fi, m) in graph.models.iter().enumerate() {
        for (fj, f) in m.fns.iter().enumerate() {
            if !f.in_test && is_serve_entry(&m.path, &f.name) {
                entries.push((fi, fj));
            }
        }
    }
    entries.sort_by(|a, b| {
        let (ma, mb) = (&graph.models[a.0], &graph.models[b.0]);
        (&ma.path, ma.fns[a.1].line).cmp(&(&mb.path, mb.fns[b.1].line))
    });

    // (path, line, kind tag) → already reported.
    let mut reported: BTreeSet<(String, u32, u8)> = BTreeSet::new();
    for &entry in &entries {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(id) = queue.pop_front() {
            let m = &graph.models[id.0];
            let f = &m.fns[id.1];
            for site in &f.panics {
                if site.guarded {
                    continue;
                }
                if site.kind == PanicKind::Index && !m.path.starts_with("crates/serve/") {
                    continue;
                }
                let key = (m.path.clone(), site.line, site.kind as u8);
                if reported.contains(&key) {
                    continue;
                }
                reported.insert(key);
                let entry_name = &graph.models[entry.0].fns[entry.1].name;
                out.push(Diagnostic {
                    rule: Rule::NoPanicReachableFromServe,
                    severity: Rule::NoPanicReachableFromServe.severity(),
                    path: m.path.clone(),
                    line: site.line,
                    message: format!(
                        "{}; reachable from serve entry `{entry_name}`",
                        site.kind.describe(&site.what)
                    ),
                    suggestion: "return an error (or pre-validate) on serve paths — a panic \
                                 here kills a worker; waive only with a bounds/invariant proof",
                    chain: chain_to(graph, &parent, entry, id),
                    origin: None,
                    region: None,
                });
            }
            for call in &f.calls {
                if call.guarded {
                    continue;
                }
                let Resolution::Workspace(targets) = graph.resolve_site(id.0, id.1, call) else {
                    continue;
                };
                for target in targets {
                    if seen.insert(target) {
                        parent.insert(target, id);
                        queue.push_back(target);
                    }
                }
            }
        }
    }
}

/// The entry→…→sink chain recorded by the BFS parent pointers.
fn chain_to(
    graph: &Graph<'_>,
    parent: &BTreeMap<FnId, FnId>,
    entry: FnId,
    sink: FnId,
) -> Vec<ChainFrame> {
    let mut frames = Vec::new();
    let mut cur = sink;
    loop {
        let m = &graph.models[cur.0];
        let f = &m.fns[cur.1];
        frames.push(ChainFrame {
            function: f.name.clone(),
            path: m.path.clone(),
            line: f.line,
        });
        if cur == entry {
            break;
        }
        match parent.get(&cur) {
            Some(&p) => cur = p,
            None => break,
        }
    }
    frames.reverse();
    frames
}

/// L8 — per crate: direct + transitive lock sets, then both-order pairs.
fn check_lock_order(graph: &Graph<'_>, out: &mut Vec<Diagnostic>) {
    // Crate key → lock field name → kind.
    let mut fields: BTreeMap<&str, BTreeMap<&str, LockKind>> = BTreeMap::new();
    for m in graph.models {
        for lf in &m.lock_fields {
            fields
                .entry(m.krate.as_str())
                .or_default()
                .entry(lf.name.as_str())
                .or_insert(lf.kind);
        }
    }

    for (krate, known) in &fields {
        // Direct acquisitions per fn, in token order: (tok, field, line).
        let mut direct: BTreeMap<FnId, Vec<(usize, String, u32)>> = BTreeMap::new();
        for (fi, m) in graph.models.iter().enumerate() {
            if m.krate != *krate {
                continue;
            }
            for (fj, f) in m.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let mut acqs = Vec::new();
                for site in &f.locks {
                    let field = if site.via_method {
                        // A helper that exposes a lock: attribute the
                        // acquisition to the single known field its body
                        // references (ambiguous helpers are skipped).
                        let mut touched: BTreeSet<&str> = BTreeSet::new();
                        for target in graph.resolve_in_crate(fi, &site.target) {
                            let tf = &graph.models[target.0].fns[target.1];
                            for r in &tf.field_refs {
                                if known.contains_key(r.as_str()) {
                                    touched.insert(r);
                                }
                            }
                        }
                        if touched.len() == 1 {
                            touched.into_iter().next().map(String::from)
                        } else {
                            None
                        }
                    } else if known.contains_key(site.target.as_str()) {
                        Some(site.target.clone())
                    } else {
                        None
                    };
                    let Some(field) = field else { continue };
                    let compatible = match known[field.as_str()] {
                        LockKind::Mutex => site.method == "lock",
                        LockKind::RwLock => site.method == "read" || site.method == "write",
                    };
                    if compatible {
                        acqs.push((site.tok, field, site.line));
                    }
                }
                if !acqs.is_empty() || !f.calls.is_empty() {
                    direct.insert((fi, fj), acqs);
                }
            }
        }

        // Transitive lock set per fn (fixpoint over same-crate calls).
        let mut transitive: BTreeMap<FnId, BTreeSet<String>> = direct
            .iter()
            .map(|(id, acqs)| (*id, acqs.iter().map(|(_, f, _)| f.clone()).collect()))
            .collect();
        loop {
            let mut changed = false;
            let ids: Vec<FnId> = transitive.keys().copied().collect();
            for id in ids {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for call in &graph.models[id.0].fns[id.1].calls {
                    for target in graph.resolve_in_crate(id.0, &call.callee) {
                        if target == id {
                            continue;
                        }
                        if let Some(set) = transitive.get(&target) {
                            add.extend(set.iter().cloned());
                        }
                    }
                }
                let set = transitive.entry(id).or_default();
                let before = set.len();
                set.extend(add);
                if set.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Ordered-pair edges: field A held (over-approximately) when B is
        // acquired — directly later in the same fn, or inside a later call.
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for (id, acqs) in &direct {
            let m = &graph.models[id.0];
            let f = &m.fns[id.1];
            for (tok_a, a, _) in acqs {
                for (tok_b, b, line_b) in acqs {
                    if tok_b > tok_a && a != b {
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_insert_with(|| (m.path.clone(), *line_b));
                    }
                }
                for call in &f.calls {
                    if call.tok <= *tok_a {
                        continue;
                    }
                    for target in graph.resolve_in_crate(id.0, &call.callee) {
                        if target == *id {
                            continue;
                        }
                        let Some(set) = transitive.get(&target) else {
                            continue;
                        };
                        for b in set {
                            if b != a {
                                edges
                                    .entry((a.clone(), b.clone()))
                                    .or_insert_with(|| (m.path.clone(), call.line));
                            }
                        }
                    }
                }
            }
        }

        let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
        for ((a, b), (path, line)) in &edges {
            if a >= b || flagged.contains(&(a.clone(), b.clone())) {
                continue;
            }
            let Some((rev_path, rev_line)) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            flagged.insert((a.clone(), b.clone()));
            out.push(Diagnostic {
                rule: Rule::LockOrder,
                severity: Rule::LockOrder.severity(),
                path: path.clone(),
                line: *line,
                message: format!(
                    "locks `{a}` and `{b}` are acquired in both orders: \
                     `{a}` then `{b}` here, `{b}` then `{a}` at {rev_path}:{rev_line} \
                     — two threads taking opposite orders deadlock"
                ),
                suggestion: "pick one global acquisition order, document it on the struct \
                             owning the locks, and release the first guard before crossing \
                             into code that takes the other",
                chain: Vec::new(),
                origin: None,
                region: None,
            });
        }
    }
}

/// L9 — allocations inside loops of `// ultra-lint: hot` functions.
fn check_hot_loops(models: &[FileModel], out: &mut Vec<Diagnostic>) {
    for m in models {
        for f in &m.fns {
            if !f.hot || f.in_test {
                continue;
            }
            for site in &f.allocs_in_loops {
                out.push(Diagnostic {
                    rule: Rule::NoAllocInHotLoop,
                    severity: Rule::NoAllocInHotLoop.severity(),
                    path: m.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` allocates inside a loop of hot function `{}`",
                        site.what, f.name
                    ),
                    suggestion: "hoist the allocation out of the loop (pre-size a buffer with \
                                 `with_capacity` and reuse it) or restructure into a bulk \
                                 operation outside the loop",
                    chain: Vec::new(),
                    origin: None,
                    region: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_code_mask};
    use crate::parser;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_code_mask(&lexed.tokens);
                parser::build(path, &lexed, &mask)
            })
            .collect()
    }

    fn run(files: &[(&str, &str)]) -> CrossAnalysis {
        check_cross(&models(files))
    }

    #[test]
    fn l7_reports_a_cross_crate_chain_three_deep() {
        let server = "use ultra_core::decode;\n\
                      pub fn handle_expand(b: &[u8]) -> u32 { parse_request(b) }\n\
                      fn parse_request(b: &[u8]) -> u32 { decode(b) }";
        let core = "pub fn decode(b: &[u8]) -> u32 { inner(b) }\n\
                    fn inner(b: &[u8]) -> u32 { b.first().copied().map(u32::from).unwrap() }";
        let analysis = run(&[
            ("crates/serve/src/server.rs", server),
            ("crates/core/src/lib.rs", core),
        ]);
        let l7: Vec<&Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::NoPanicReachableFromServe)
            .collect();
        assert_eq!(l7.len(), 1, "{:?}", analysis.diagnostics);
        let d = l7[0];
        assert_eq!(d.path, "crates/core/src/lib.rs");
        assert_eq!(d.line, 2);
        let names: Vec<&str> = d.chain.iter().map(|c| c.function.as_str()).collect();
        assert_eq!(
            names,
            vec!["handle_expand", "parse_request", "decode", "inner"],
            "full chain from the entry to the panicking fn"
        );
    }

    #[test]
    fn l7_skips_guarded_calls_test_fns_and_non_serve_indexing() {
        let server = "pub fn handle_x(v: &[u32]) -> u32 {\n\
                      let g = std::panic::catch_unwind(|| risky());\n\
                      safe(v)\n\
                      }\n\
                      fn risky() { panic!(\"contained\"); }\n\
                      fn safe(v: &[u32]) -> u32 { crunch(v) }\n\
                      fn crunch(v: &[u32]) -> u32 { v.iter().sum() }\n\
                      #[cfg(test)]\nmod t { fn handle_fake() { x.unwrap(); } }";
        let analysis = run(&[("crates/serve/src/server.rs", server)]);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        // The same indexing that is exempt outside serve fires inside it.
        let nn = "pub fn kernel(v: &[u32]) -> u32 { v[0] }";
        let serve_calls_nn = "use ultra_nn::kernel;\n\
                              pub fn handle_y(v: &[u32]) -> u32 { kernel(v) }";
        let analysis = run(&[
            ("crates/serve/src/api.rs", serve_calls_nn),
            ("crates/nn/src/lib.rs", nn),
        ]);
        assert!(
            analysis.diagnostics.is_empty(),
            "indexing outside crates/serve is not an L7 finding: {:?}",
            analysis.diagnostics
        );
        let serve_indexing = "pub fn handle_z(v: &[u32]) -> u32 { pick(v) }\n\
                              fn pick(v: &[u32]) -> u32 { v[0] }";
        let analysis = run(&[("crates/serve/src/server.rs", serve_indexing)]);
        assert_eq!(analysis.diagnostics.len(), 1);
        assert_eq!(analysis.diagnostics[0].line, 2);
    }

    #[test]
    fn l7_dedupes_a_site_reachable_from_two_entries() {
        let server = "pub fn handle_a(x: Option<u32>) -> u32 { shared(x) }\n\
                      pub fn handle_b(x: Option<u32>) -> u32 { shared(x) }\n\
                      fn shared(x: Option<u32>) -> u32 { x.unwrap() }";
        let analysis = run(&[("crates/serve/src/server.rs", server)]);
        let l7: Vec<&Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::NoPanicReachableFromServe)
            .collect();
        assert_eq!(l7.len(), 1, "one finding despite two entries");
        assert_eq!(l7[0].chain[0].function, "handle_a", "lowest entry wins");
    }

    #[test]
    fn l8_flags_locks_taken_in_both_orders_including_via_calls() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn fwd(&self) { let ga = self.a.lock(); self.b.lock(); }\n\
                   fn take_a(&self) { self.a.lock(); }\n\
                   fn rev(&self) { let gb = self.b.lock(); self.take_a(); }\n\
                   }";
        let analysis = run(&[("crates/serve/src/cache.rs", src)]);
        let l8: Vec<&Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::LockOrder)
            .collect();
        assert_eq!(l8.len(), 1, "{:?}", analysis.diagnostics);
        assert!(l8[0].message.contains("`a` and `b`"));
    }

    #[test]
    fn l8_is_quiet_for_consistent_order_and_self_loops() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32>, shards: Vec<Mutex<u32>> }\n\
                   impl S {\n\
                   fn one(&self) { let ga = self.a.lock(); self.b.lock(); }\n\
                   fn two(&self) { let ga = self.a.lock(); self.b.lock(); }\n\
                   fn stats(&self) { for s in &self.shards { s.lock(); } }\n\
                   }";
        let analysis = run(&[("crates/serve/src/cache.rs", src)]);
        assert!(
            analysis
                .diagnostics
                .iter()
                .all(|d| d.rule != Rule::LockOrder),
            "{:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn l9_fires_only_in_hot_fns() {
        let src = "// ultra-lint: hot\n\
                   fn kernel(v: &[u32], out: &mut Vec<u32>) {\n\
                   for x in v { out.push(*x); }\n\
                   }\n\
                   fn cold(v: &[u32], out: &mut Vec<u32>) { for x in v { out.push(*x); } }";
        let analysis = run(&[("crates/nn/src/ops.rs", src)]);
        let l9: Vec<(&str, u32)> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::NoAllocInHotLoop)
            .map(|d| (d.path.as_str(), d.line))
            .collect();
        assert_eq!(l9, vec![("crates/nn/src/ops.rs", 3)]);
    }

    #[test]
    fn unresolved_calls_are_counted_not_dropped() {
        let src = "pub fn f() { std::fs::read(\"x\").ok(); mystery(); }";
        let analysis = run(&[("crates/core/src/lib.rs", src)]);
        // `read`, `ok`, and `mystery` all resolve to nothing here.
        assert!(analysis.unresolved_calls >= 2);
        assert!(analysis.diagnostics.is_empty());
    }
}

//! CLI entry point:
//! `cargo run -p ultra-lint [-- --root <dir>] [--allow-warnings] [--format json]`.
//!
//! Exit codes: 0 = clean (or warnings only, with `--allow-warnings`),
//! 1 = violations, 2 = analyzer/config error. Tier-1 runs the strict mode
//! via `crates/lint/tests/workspace_clean.rs`.
//!
//! The differential gate: `--write-baseline lint-baseline.json` snapshots
//! the current findings; `--baseline lint-baseline.json` fails only on
//! findings beyond the snapshot (see [`ultra_lint::baseline`]).

use std::path::PathBuf;
use ultra_lint::baseline::{Baseline, BaselineDiff};
use ultra_lint::rules::{Rule, Severity};
use ultra_lint::{run_workspace, Report};

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut deny_warnings = true;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow-warnings" => deny_warnings = false,
            // Strict mode is the default; accepting the flag keeps CI
            // invocations self-documenting.
            "--deny-warnings" => deny_warnings = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ultra-lint: --baseline takes a file path");
                    std::process::exit(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ultra-lint: --write-baseline takes a file path");
                    std::process::exit(2);
                }
            },
            "--list-rules" => {
                print!("{}", list_rules());
                return;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "ultra-lint: --format takes `json` or `text`, got `{}`",
                        other.unwrap_or("<none>")
                    );
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ultra-lint: determinism & panic-safety analyzer\n\n\
                     USAGE: ultra-lint [--root <dir>] [--allow-warnings] [--format json|text]\n\
                     \x20                 [--baseline <file>] [--write-baseline <file>] [--list-rules]\n\n\
                     Scans every .rs file under the workspace root (default:\n\
                     the directory containing this crate's workspace) and\n\
                     enforces rules L1-L15 (L7-L9 run over a workspace call\n\
                     graph, L10-L12 over an interprocedural taint dataflow,\n\
                     L13-L14 over lock-guard live ranges, L15 over paired\n\
                     serializer byte sequences); `--list-rules` prints the\n\
                     rule table, README.md has the details and lint.toml the\n\
                     audited allowlist.\n\n\
                     `--format json` emits a stable machine-readable report\n\
                     on stdout. `--write-baseline <file>` snapshots current\n\
                     findings; `--baseline <file>` fails only on findings\n\
                     beyond the snapshot (the differential CI gate)."
                );
                return;
            }
            other => {
                eprintln!("ultra-lint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if baseline_path.is_some() && write_baseline_path.is_some() {
        eprintln!("ultra-lint: --baseline and --write-baseline are mutually exclusive");
        std::process::exit(2);
    }
    let root = root.unwrap_or_else(|| {
        // crates/lint -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ultra-lint: {e}");
            std::process::exit(2);
        }
    };

    if let Some(path) = write_baseline_path {
        let snapshot = Baseline::from_violations(&report.violations);
        if let Err(e) = std::fs::write(&path, snapshot.render()) {
            eprintln!("ultra-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!(
            "ultra-lint: wrote {} finding key(s) covering {} violation(s) to {}",
            snapshot.findings.len(),
            report.violations.len(),
            path.display()
        );
        // Snapshotting accepts the current state by definition; only
        // analyzer-level rot (stale allowlist entries) still fails.
        std::process::exit(if report.stale_allows.is_empty() { 0 } else { 1 });
    }

    let diff = match &baseline_path {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(base) => Some(base.diff(&report.violations)),
                Err(e) => {
                    eprintln!("ultra-lint: {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("ultra-lint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        },
    };

    if json {
        println!("{}", render_json(&report, diff.as_ref()));
    } else {
        render_text(&report, diff.as_ref());
    }
    let failed = match &diff {
        // Differential mode: only findings beyond the snapshot (plus
        // allowlist rot) fail the gate.
        Some(diff) => {
            !report.stale_allows.is_empty()
                || diff.new.iter().any(|&i| {
                    let d = &report.violations[i];
                    d.severity == Severity::Error || (deny_warnings && d.severity == Severity::Warn)
                })
        }
        None => report.failed(deny_warnings),
    };
    if failed {
        std::process::exit(1);
    }
}

/// The `--list-rules` table (also asserted against the registry in tests).
fn list_rules() -> String {
    let mut out = String::from("ID   NAME                           SEVERITY  SCOPE\n");
    for rule in Rule::ALL {
        out.push_str(&format!(
            "{:<4} {:<30} {:<9} {}\n         {}\n",
            rule.id(),
            rule.name(),
            rule.severity().to_string(),
            rule.scope(),
            rule.describe(),
        ));
    }
    out
}

fn render_text(report: &Report, diff: Option<&BaselineDiff>) {
    let new_set: Option<std::collections::BTreeSet<usize>> =
        diff.map(|d| d.new.iter().copied().collect());
    for (i, d) in report.violations.iter().enumerate() {
        match &new_set {
            Some(new) if !new.contains(&i) => println!("{d}\n    [known: in baseline]"),
            Some(_) => println!("{d}\n    [NEW: not in baseline]"),
            None => println!("{d}"),
        }
    }
    for s in &report.stale_allows {
        println!("lint.toml: stale allowlist entry: {s}");
    }
    if let Some(diff) = diff {
        for s in &diff.stale {
            println!("baseline: stale entry (rewrite the snapshot): {s}");
        }
    }
    let errors = report
        .violations
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warns = report.violations.len() - errors;
    let baseline_note = match diff {
        Some(d) => format!(
            ", {} new / {} known vs baseline",
            d.new.len(),
            report.violations.len() - d.new.len()
        ),
        None => String::new(),
    };
    println!(
        "ultra-lint: {} files scanned, {errors} errors, {warns} warnings, {} allowed, \
         {} stale allowlist entries, {} unresolved calls{baseline_note}",
        report.files_scanned,
        report.allowed.len(),
        report.stale_allows.len(),
        report.unresolved_calls
    );
}

/// Renders the report as JSON. Schema v3 (stable; additions only):
///
/// ```json
/// {"version":3,
///  "files_scanned":N, "allowed":N, "unresolved_calls":N,
///  "timing":{"lex_parse_ms":N,"analyze_ms":N,"total_ms":N},
///  "violations":[{"rule":"...","severity":"...","path":"...","line":N,
///                 "message":"...","suggestion":"...",
///                 "origin":{"desc":"...","path":"...","line":N} | null,
///                 "region":{"label":"...","path":"...",
///                           "start_line":N,"end_line":N} | null,
///                 "new":true|false,          // only with --baseline
///                 "chain":[{"function":"...","path":"...","line":N}]}],
///  "stale_allows":["..."],
///  "baseline":{"known":N,"new":N,"stale":["..."]}}  // only with --baseline
/// ```
///
/// v2 over v1: `origin` on every violation (the taint source for L10, null
/// otherwise), and the `new`/`baseline` fields in differential mode. v3
/// over v2: `region` (the guard live range for L13/L14, the reader fn span
/// for L15) and the `timing` section — timing appears *only* here, never in
/// the text report, which stays byte-identical across thread counts.
/// Hand-rolled (no crates.io in the build image); strings are escaped per
/// RFC 8259.
fn render_json(report: &Report, diff: Option<&BaselineDiff>) -> String {
    let new_set: Option<std::collections::BTreeSet<usize>> =
        diff.map(|d| d.new.iter().copied().collect());
    let mut out = String::from("{\"version\":3");
    out.push_str(&format!(",\"files_scanned\":{}", report.files_scanned));
    out.push_str(&format!(",\"allowed\":{}", report.allowed.len()));
    out.push_str(&format!(
        ",\"unresolved_calls\":{}",
        report.unresolved_calls
    ));
    out.push_str(&format!(
        ",\"timing\":{{\"lex_parse_ms\":{},\"analyze_ms\":{},\"total_ms\":{}}}",
        report.timings.lex_parse_ms, report.timings.analyze_ms, report.timings.total_ms
    ));
    out.push_str(",\"violations\":[");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{},\"suggestion\":{}",
            json_str(d.rule.name()),
            json_str(&d.severity.to_string()),
            json_str(&d.path),
            d.line,
            json_str(&d.message),
            json_str(d.suggestion),
        ));
        match &d.origin {
            Some(o) => out.push_str(&format!(
                ",\"origin\":{{\"desc\":{},\"path\":{},\"line\":{}}}",
                json_str(&o.desc),
                json_str(&o.path),
                o.line
            )),
            None => out.push_str(",\"origin\":null"),
        }
        match &d.region {
            Some(r) => out.push_str(&format!(
                ",\"region\":{{\"label\":{},\"path\":{},\"start_line\":{},\"end_line\":{}}}",
                json_str(&r.label),
                json_str(&r.path),
                r.start_line,
                r.end_line
            )),
            None => out.push_str(",\"region\":null"),
        }
        if let Some(new) = &new_set {
            out.push_str(&format!(",\"new\":{}", new.contains(&i)));
        }
        out.push_str(",\"chain\":[");
        for (j, frame) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"function\":{},\"path\":{},\"line\":{}}}",
                json_str(&frame.function),
                json_str(&frame.path),
                frame.line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"stale_allows\":[");
    for (i, s) in report.stale_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(s));
    }
    out.push(']');
    if let Some(diff) = diff {
        out.push_str(&format!(
            ",\"baseline\":{{\"known\":{},\"new\":{},\"stale\":[",
            report.violations.len() - diff.new.len(),
            diff.new.len()
        ));
        for (i, s) in diff.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(s));
        }
        out.push_str("]}");
    }
    out.push('}');
    out
}

/// JSON string literal with RFC 8259 escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_lint::rules::{ChainFrame, Diagnostic, RegionSpan, Rule, TaintOrigin};

    fn sample_report() -> Report {
        Report {
            violations: vec![
                Diagnostic {
                    rule: Rule::NoPanicReachableFromServe,
                    severity: Severity::Warn,
                    path: "crates/serve/src/cache.rs".into(),
                    line: 130,
                    message: "indexing `shards[..]` panics out of bounds".into(),
                    suggestion: "bound it",
                    chain: vec![ChainFrame {
                        function: "handle_expand".into(),
                        path: "crates/serve/src/server.rs".into(),
                        line: 279,
                    }],
                    origin: None,
                    region: None,
                },
                Diagnostic {
                    rule: Rule::NoTaintedRanking,
                    severity: Severity::Warn,
                    path: "crates/core/src/ranking.rs".into(),
                    line: 51,
                    message: "RankedList receives hash-ordered data".into(),
                    suggestion: "sort first",
                    chain: Vec::new(),
                    origin: Some(TaintOrigin {
                        desc: "iteration over hash-ordered `m`".into(),
                        path: "crates/core/src/scores.rs".into(),
                        line: 12,
                    }),
                    region: Some(RegionSpan {
                        label: "guard `shards` live".into(),
                        path: "crates/core/src/ranking.rs".into(),
                        start_line: 49,
                        end_line: 58,
                    }),
                },
            ],
            allowed: Vec::new(),
            stale_allows: vec!["no-panic-in-lib @ x.rs (gone)".into()],
            files_scanned: 3,
            unresolved_calls: 7,
            timings: ultra_lint::PhaseTimings {
                lex_parse_ms: 12,
                analyze_ms: 34,
                total_ms: 56,
            },
        }
    }

    #[test]
    fn json_escaping_is_rfc8259() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_report_round_trips_through_serde() {
        let report = sample_report();
        let text = render_json(&report, None);
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let num = |v: &serde_json::Value, k: &str| v.get(k).and_then(serde_json::Value::as_u64);
        assert_eq!(num(&value, "version"), Some(3));
        assert_eq!(num(&value, "files_scanned"), Some(3));
        assert_eq!(num(&value, "unresolved_calls"), Some(7));
        let timing = value.get("timing").expect("timing section");
        assert_eq!(
            timing
                .get("lex_parse_ms")
                .and_then(serde_json::Value::as_u64),
            Some(12)
        );
        assert_eq!(
            timing.get("total_ms").and_then(serde_json::Value::as_u64),
            Some(56)
        );
        let violations = value
            .get("violations")
            .and_then(|v| v.as_array())
            .expect("violations");
        assert_eq!(violations.len(), 2);
        assert_eq!(
            violations[0]
                .get("rule")
                .and_then(serde_json::Value::as_str),
            Some("no-panic-reachable-from-serve")
        );
        assert!(violations[0].get("origin").expect("origin key").is_null());
        assert!(violations[0].get("new").is_none(), "no baseline, no flag");
        let frame = violations[0]
            .get("chain")
            .and_then(|v| v.as_array())
            .and_then(|v| v.first())
            .expect("one chain frame");
        assert_eq!(
            frame.get("function").and_then(serde_json::Value::as_str),
            Some("handle_expand")
        );
        let origin = violations[1].get("origin").expect("taint origin");
        assert_eq!(
            origin.get("line").and_then(serde_json::Value::as_u64),
            Some(12)
        );
        assert!(violations[0].get("region").expect("region key").is_null());
        let region = violations[1].get("region").expect("region object");
        assert_eq!(
            region.get("label").and_then(serde_json::Value::as_str),
            Some("guard `shards` live")
        );
        assert_eq!(
            region.get("start_line").and_then(serde_json::Value::as_u64),
            Some(49)
        );
        assert_eq!(
            region.get("end_line").and_then(serde_json::Value::as_u64),
            Some(58)
        );
        assert_eq!(
            value
                .get("stale_allows")
                .and_then(|v| v.as_array())
                .and_then(|v| v.first())
                .and_then(serde_json::Value::as_str),
            Some("no-panic-in-lib @ x.rs (gone)")
        );
        assert!(value.get("baseline").is_none());
    }

    #[test]
    fn json_differential_mode_marks_new_findings() {
        let report = sample_report();
        // Baseline knows only the first violation.
        let base = ultra_lint::baseline::Baseline::from_violations(&report.violations[..1]);
        let diff = base.diff(&report.violations);
        let text = render_json(&report, Some(&diff));
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let violations = value
            .get("violations")
            .and_then(|v| v.as_array())
            .expect("violations");
        assert_eq!(
            violations[0]
                .get("new")
                .and_then(serde_json::Value::as_bool),
            Some(false)
        );
        assert_eq!(
            violations[1]
                .get("new")
                .and_then(serde_json::Value::as_bool),
            Some(true)
        );
        let baseline = value.get("baseline").expect("baseline summary");
        assert_eq!(
            baseline.get("known").and_then(serde_json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            baseline.get("new").and_then(serde_json::Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn list_rules_table_matches_the_registry() {
        let table = list_rules();
        for rule in Rule::ALL {
            assert!(table.contains(rule.id()), "missing id {}", rule.id());
            assert!(table.contains(rule.name()), "missing name {}", rule.name());
            assert!(
                table.contains(rule.describe()),
                "missing description for {}",
                rule.id()
            );
        }
        assert_eq!(
            table.lines().count(),
            1 + 2 * Rule::ALL.len(),
            "header plus two lines per rule"
        );
    }
}

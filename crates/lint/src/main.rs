//! CLI entry point: `cargo run -p ultra-lint [-- --root <dir>] [--allow-warnings]`.
//!
//! Exit codes: 0 = clean (or warnings only, with `--allow-warnings`),
//! 1 = violations, 2 = analyzer/config error. Tier-1 runs the strict mode
//! via `crates/lint/tests/workspace_clean.rs`.

use std::path::PathBuf;
use ultra_lint::run_workspace;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut deny_warnings = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow-warnings" => deny_warnings = false,
            "--help" | "-h" => {
                println!(
                    "ultra-lint: determinism & panic-safety analyzer\n\n\
                     USAGE: ultra-lint [--root <dir>] [--allow-warnings]\n\n\
                     Scans every .rs file under the workspace root (default:\n\
                     the directory containing this crate's workspace) and\n\
                     enforces rules L1-L5; see README.md for the rule list\n\
                     and lint.toml for the audited allowlist."
                );
                return;
            }
            other => {
                eprintln!("ultra-lint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/lint -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ultra-lint: {e}");
            std::process::exit(2);
        }
    };

    for d in &report.violations {
        println!("{d}");
    }
    for s in &report.stale_allows {
        println!("lint.toml: stale allowlist entry: {s}");
    }
    let errors = report
        .violations
        .iter()
        .filter(|d| d.severity == ultra_lint::rules::Severity::Error)
        .count();
    let warns = report.violations.len() - errors;
    println!(
        "ultra-lint: {} files scanned, {errors} errors, {warns} warnings, {} allowed, {} stale allowlist entries",
        report.files_scanned,
        report.allowed.len(),
        report.stale_allows.len()
    );
    if report.failed(deny_warnings) {
        std::process::exit(1);
    }
}

//! CLI entry point:
//! `cargo run -p ultra-lint [-- --root <dir>] [--allow-warnings] [--format json]`.
//!
//! Exit codes: 0 = clean (or warnings only, with `--allow-warnings`),
//! 1 = violations, 2 = analyzer/config error. Tier-1 runs the strict mode
//! via `crates/lint/tests/workspace_clean.rs`.

use std::path::PathBuf;
use ultra_lint::rules::Severity;
use ultra_lint::{run_workspace, Report};

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut deny_warnings = true;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow-warnings" => deny_warnings = false,
            // Strict mode is the default; accepting the flag keeps CI
            // invocations self-documenting.
            "--deny-warnings" => deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "ultra-lint: --format takes `json` or `text`, got `{}`",
                        other.unwrap_or("<none>")
                    );
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ultra-lint: determinism & panic-safety analyzer\n\n\
                     USAGE: ultra-lint [--root <dir>] [--allow-warnings] [--format json|text]\n\n\
                     Scans every .rs file under the workspace root (default:\n\
                     the directory containing this crate's workspace) and\n\
                     enforces rules L1-L9 (L7-L9 run over a workspace call\n\
                     graph); see README.md for the rule list and lint.toml\n\
                     for the audited allowlist. `--format json` emits a\n\
                     stable machine-readable report on stdout."
                );
                return;
            }
            other => {
                eprintln!("ultra-lint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/lint -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ultra-lint: {e}");
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", render_json(&report));
    } else {
        for d in &report.violations {
            println!("{d}");
        }
        for s in &report.stale_allows {
            println!("lint.toml: stale allowlist entry: {s}");
        }
        let errors = report
            .violations
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warns = report.violations.len() - errors;
        println!(
            "ultra-lint: {} files scanned, {errors} errors, {warns} warnings, {} allowed, \
             {} stale allowlist entries, {} unresolved calls",
            report.files_scanned,
            report.allowed.len(),
            report.stale_allows.len(),
            report.unresolved_calls
        );
    }
    if report.failed(deny_warnings) {
        std::process::exit(1);
    }
}

/// Renders the report as JSON. Schema (stable; additions only):
///
/// ```json
/// {"version":1,
///  "files_scanned":N, "allowed":N, "unresolved_calls":N,
///  "violations":[{"rule":"...","severity":"...","path":"...","line":N,
///                 "message":"...","suggestion":"...",
///                 "chain":[{"function":"...","path":"...","line":N}]}],
///  "stale_allows":["..."]}
/// ```
///
/// Hand-rolled (no crates.io in the build image); strings are escaped per
/// RFC 8259.
fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"version\":1");
    out.push_str(&format!(",\"files_scanned\":{}", report.files_scanned));
    out.push_str(&format!(",\"allowed\":{}", report.allowed.len()));
    out.push_str(&format!(
        ",\"unresolved_calls\":{}",
        report.unresolved_calls
    ));
    out.push_str(",\"violations\":[");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{},\"suggestion\":{},\"chain\":[",
            json_str(d.rule.name()),
            json_str(&d.severity.to_string()),
            json_str(&d.path),
            d.line,
            json_str(&d.message),
            json_str(d.suggestion),
        ));
        for (j, frame) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"function\":{},\"path\":{},\"line\":{}}}",
                json_str(&frame.function),
                json_str(&frame.path),
                frame.line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"stale_allows\":[");
    for (i, s) in report.stale_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(s));
    }
    out.push_str("]}");
    out
}

/// JSON string literal with RFC 8259 escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_lint::rules::{ChainFrame, Diagnostic, Rule};

    #[test]
    fn json_escaping_is_rfc8259() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_report_round_trips_through_serde() {
        let report = Report {
            violations: vec![Diagnostic {
                rule: Rule::NoPanicReachableFromServe,
                severity: Severity::Warn,
                path: "crates/serve/src/cache.rs".into(),
                line: 130,
                message: "indexing `shards[..]` panics out of bounds".into(),
                suggestion: "bound it",
                chain: vec![ChainFrame {
                    function: "handle_expand".into(),
                    path: "crates/serve/src/server.rs".into(),
                    line: 279,
                }],
            }],
            allowed: Vec::new(),
            stale_allows: vec!["no-panic-in-lib @ x.rs (gone)".into()],
            files_scanned: 3,
            unresolved_calls: 7,
        };
        let text = render_json(&report);
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let num = |v: &serde_json::Value, k: &str| v.get(k).and_then(serde_json::Value::as_u64);
        assert_eq!(num(&value, "version"), Some(1));
        assert_eq!(num(&value, "files_scanned"), Some(3));
        assert_eq!(num(&value, "unresolved_calls"), Some(7));
        let violation = value
            .get("violations")
            .and_then(|v| v.as_array())
            .and_then(|v| v.first())
            .expect("one violation");
        assert_eq!(
            violation.get("rule").and_then(serde_json::Value::as_str),
            Some("no-panic-reachable-from-serve")
        );
        let frame = violation
            .get("chain")
            .and_then(|v| v.as_array())
            .and_then(|v| v.first())
            .expect("one chain frame");
        assert_eq!(
            frame.get("function").and_then(serde_json::Value::as_str),
            Some("handle_expand")
        );
        assert_eq!(
            value
                .get("stale_allows")
                .and_then(|v| v.as_array())
                .and_then(|v| v.first())
                .and_then(serde_json::Value::as_str),
            Some("no-panic-in-lib @ x.rs (gone)")
        );
    }
}

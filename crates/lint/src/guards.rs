//! Guard-region concurrency analysis: **L13 `no-blocking-under-lock`** and
//! **L14 `no-guard-across-hot-loop`**.
//!
//! [`crate::parser`] computes a live range for every lock acquisition (see
//! `GuardRegion` there for the let/`if let`/temporary rules). This module
//! first decides which of those candidates are *real* lock guards — the
//! receiver must be a known crate-wide lock field (L8's set), a
//! `Mutex`/`RwLock`-typed param or local, or a helper method attributable
//! to exactly one lock field, with the acquiring method compatible with the
//! lock kind (`lock` for `Mutex`, `read`/`write` for `RwLock`) — which is
//! what keeps `stream.read(..)` and `ByteReader::read_*` from becoming
//! phantom guards.
//!
//! For each real guard, **L13** walks the call graph from every call inside
//! the live range to *blocking operations* (channel `recv`, `join`,
//! `sleep`, socket accept/connect, typed-receiver file/socket reads and
//! writes) and to *other lock acquisitions*. The latter upgrades L8 from
//! per-function acquisition sequences to true held-while-acquiring pairs:
//! a guard dropped before the second lock no longer counts, and a second
//! lock reached through callees still does. A name on the blocking list
//! that resolves to a workspace function is traversed, not reported — the
//! workspace body decides (`WorkerTeam::recv` reports at its inner channel
//! `recv`, with the chain showing both).
//!
//! Deliberate under-approximations (documented in DESIGN.md §5): `Condvar
//! wait`/`wait_timeout` release the mutex while blocked and are exempt;
//! bare `read`/`write` only count when the receiver types to a known I/O
//! struct, so untyped socket reads are missed rather than spamming every
//! `RwLock` acquisition.
//!
//! **L14** flags a guard whose live range strictly contains an entire loop
//! body inside a `// ultra-lint: hot` function — the parallel region the
//! marker promises is serialized by the lock for every iteration.

use crate::callgraph::{FnId, Graph, Resolution};
use crate::parser::{CallSite, FileModel, GuardRegion, LockKind};
use crate::rules::{ChainFrame, Diagnostic, RegionSpan, Rule, TaintOrigin};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Blocking operations by method/function name. These stall the calling
/// thread on an external event while any held guard keeps every contender
/// stalled too. Names that are also common non-blocking methods are kept
/// off this list on purpose.
fn blocking_kind(name: &str) -> Option<&'static str> {
    Some(match name {
        "accept" => "socket accept",
        "connect" => "socket connect",
        "recv" | "recv_timeout" | "recv_deadline" => "channel receive",
        "join" => "thread join",
        "sleep" | "park" | "park_timeout" => "thread sleep/park",
        "read_to_end" | "read_to_string" | "read_exact" | "read_line" => "stream read",
        "write_all" | "write_fmt" => "stream write",
        _ => return None,
    })
}

/// Foreign receiver types whose bare `read`/`write`/`flush` are real I/O.
const IO_TYPES: [&str; 9] = [
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "File",
    "Stdin",
    "Stdout",
    "Stderr",
    "BufReader",
    "BufWriter",
];

/// A validated guard: which lock it holds and where.
struct LiveGuard<'a> {
    file: usize,
    fnidx: usize,
    region: &'a GuardRegion,
    /// Display name of the lock ("`queue`" or "`shard()`").
    lock_name: String,
}

/// Crate key → lock field name → kind (L8's field map).
fn crate_lock_fields(models: &[FileModel]) -> BTreeMap<&str, BTreeMap<&str, LockKind>> {
    let mut fields: BTreeMap<&str, BTreeMap<&str, LockKind>> = BTreeMap::new();
    for m in models {
        for lf in &m.lock_fields {
            fields
                .entry(m.krate.as_str())
                .or_default()
                .entry(lf.name.as_str())
                .or_insert(lf.kind);
        }
    }
    fields
}

/// Whether the acquiring method matches the lock kind.
fn method_compatible(kind: LockKind, method: &str) -> bool {
    match kind {
        LockKind::Mutex => method == "lock",
        LockKind::RwLock => method == "read" || method == "write",
    }
}

/// Validates one guard candidate: is the receiver actually a lock? Returns
/// the display name of the lock when it is.
fn validate_guard(
    graph: &Graph<'_>,
    fields: &BTreeMap<&str, BTreeMap<&str, LockKind>>,
    file: usize,
    fnidx: usize,
    g: &GuardRegion,
) -> Option<String> {
    let m = &graph.models[file];
    let known = fields.get(m.krate.as_str());
    if g.via_method {
        // Helper exposing a lock: attributable to exactly one known field
        // (same trick as L8's via_method handling).
        let known = known?;
        let mut touched: BTreeSet<&str> = BTreeSet::new();
        for target in graph.resolve_in_crate(file, &g.target) {
            let tf = &graph.models[target.0].fns[target.1];
            for r in &tf.field_refs {
                if known.contains_key(r.as_str()) {
                    touched.insert(r);
                }
            }
        }
        if let [field] = touched.into_iter().collect::<Vec<_>>()[..] {
            if method_compatible(known[field], &g.method) {
                return Some(format!("{}()", g.target));
            }
        }
        return None;
    }
    // Crate-wide lock field.
    if let Some(kind) = known.and_then(|k| k.get(g.target.as_str())) {
        return method_compatible(*kind, &g.method).then(|| g.target.clone());
    }
    // `Mutex`/`RwLock`-typed param or local (`shared: &RwLock<..>`,
    // `let m = Mutex::new(..)`).
    if let Some(ty) = graph.receiver_type(file, fnidx, &g.target) {
        let kind = match ty {
            "Mutex" => Some(LockKind::Mutex),
            "RwLock" => Some(LockKind::RwLock),
            _ => None,
        };
        if let Some(kind) = kind {
            return method_compatible(kind, &g.method).then(|| g.target.clone());
        }
    }
    None
}

/// Whether a call site is a blocking operation *at this site* — either a
/// listed blocking name that does not resolve into the workspace, or a bare
/// `read`/`write`/`flush` on a receiver typed to a known I/O struct.
fn blocking_at(
    graph: &Graph<'_>,
    file: usize,
    fnidx: usize,
    call: &CallSite,
) -> Option<&'static str> {
    if let Some(kind) = blocking_kind(&call.callee) {
        // A workspace fn by this name is traversed instead (its body will
        // reveal the real blocking site, keeping the chain honest).
        if matches!(
            graph.resolve_site(file, fnidx, call),
            Resolution::Workspace(_)
        ) {
            return None;
        }
        return Some(kind);
    }
    if matches!(call.callee.as_str(), "read" | "write" | "flush") {
        let io_recv = call
            .recv
            .as_deref()
            .and_then(|r| graph.receiver_type(file, fnidx, r))
            .is_some_and(|ty| IO_TYPES.contains(&ty));
        if io_recv {
            return Some("stream I/O");
        }
    }
    None
}

/// Runs L13 and L14 over every validated guard region.
pub(crate) fn check_guards(graph: &Graph<'_>, out: &mut Vec<Diagnostic>) {
    let fields = crate_lock_fields(graph.models);
    let mut guards: Vec<LiveGuard<'_>> = Vec::new();
    for (fi, m) in graph.models.iter().enumerate() {
        for (fj, f) in m.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for g in &f.guards {
                if g.span.is_empty() {
                    continue;
                }
                if let Some(lock_name) = validate_guard(graph, &fields, fi, fj, g) {
                    guards.push(LiveGuard {
                        file: fi,
                        fnidx: fj,
                        region: g,
                        lock_name,
                    });
                }
            }
        }
    }

    // (guard path, guard line, sink path, sink line) → reported.
    let mut reported: BTreeSet<(String, u32, String, u32)> = BTreeSet::new();
    for lg in &guards {
        check_one_guard_l13(graph, &fields, lg, &mut reported, out);
        check_one_guard_l14(graph, lg, out);
    }
}

/// L13 for one guard: BFS from the calls inside the live range to blocking
/// ops and nested lock acquisitions.
fn check_one_guard_l13(
    graph: &Graph<'_>,
    fields: &BTreeMap<&str, BTreeMap<&str, LockKind>>,
    lg: &LiveGuard<'_>,
    reported: &mut BTreeSet<(String, u32, String, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    let m = &graph.models[lg.file];
    let f = &m.fns[lg.fnidx];
    let g = lg.region;
    let origin = || {
        Some(TaintOrigin {
            desc: format!("guard of `{}` acquired via `.{}()`", lg.lock_name, g.method),
            path: m.path.clone(),
            line: g.line,
        })
    };
    let region = || {
        Some(RegionSpan {
            label: format!("guard `{}` live", lg.lock_name),
            path: m.path.clone(),
            start_line: g.line,
            end_line: g.end_line,
        })
    };
    let mut emit = |sink_path: &str,
                    sink_line: u32,
                    message: String,
                    chain: Vec<ChainFrame>,
                    out: &mut Vec<Diagnostic>| {
        let key = (m.path.clone(), g.line, sink_path.to_string(), sink_line);
        if !reported.insert(key) {
            return;
        }
        out.push(Diagnostic {
            rule: Rule::NoBlockingUnderLock,
            severity: Rule::NoBlockingUnderLock.severity(),
            path: sink_path.to_string(),
            line: sink_line,
            message,
            suggestion: "narrow the guard: copy the needed data out and drop it before \
                         blocking, or restructure so every thread acquires locks in one \
                         global order",
            chain,
            origin: origin(),
            region: region(),
        });
    };

    // Direct nested acquisitions inside the live range (the acquisition
    // itself sits outside its own span, so the guard never flags itself).
    for other in &f.locks {
        if !g.span.contains(&other.tok) {
            continue;
        }
        let probe = GuardRegion {
            target: other.target.clone(),
            via_method: other.via_method,
            method: other.method.clone(),
            binding: None,
            line: other.line,
            span: 0..0,
            end_line: other.line,
        };
        if let Some(inner) = validate_guard(graph, fields, lg.file, lg.fnidx, &probe) {
            if inner != lg.lock_name {
                emit(
                    &m.path,
                    other.line,
                    format!(
                        "lock `{inner}` acquired while guard `{}` (acquired {}:{}) is \
                         still held — held-while-acquiring pair",
                        lg.lock_name, m.path, g.line
                    ),
                    vec![frame(graph, (lg.file, lg.fnidx))],
                    out,
                );
            }
        }
    }

    // BFS from calls inside the live range.
    let mut queue: VecDeque<FnId> = VecDeque::new();
    let mut seen: BTreeSet<FnId> = BTreeSet::new();
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let root = (lg.file, lg.fnidx);
    for call in &f.calls {
        if !g.span.contains(&call.tok) {
            continue;
        }
        if let Some(kind) = blocking_at(graph, lg.file, lg.fnidx, call) {
            emit(
                &m.path,
                call.line,
                format!(
                    "`{}` ({kind}) called while guard `{}` (acquired {}:{}) is held — \
                     every contender stalls behind this thread",
                    call.callee, lg.lock_name, m.path, g.line
                ),
                vec![frame(graph, root)],
                out,
            );
            continue;
        }
        if let Resolution::Workspace(targets) = graph.resolve_site(lg.file, lg.fnidx, call) {
            for t in targets {
                if t != root && seen.insert(t) {
                    parent.insert(t, root);
                    queue.push_back(t);
                }
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        let tm = &graph.models[id.0];
        let tf = &tm.fns[id.1];
        for other in &tf.locks {
            let probe = GuardRegion {
                target: other.target.clone(),
                via_method: other.via_method,
                method: other.method.clone(),
                binding: None,
                line: other.line,
                span: 0..0,
                end_line: other.line,
            };
            if let Some(inner) = validate_guard(graph, fields, id.0, id.1, &probe) {
                if inner != lg.lock_name || tm.krate != m.krate {
                    emit(
                        &tm.path,
                        other.line,
                        format!(
                            "lock `{inner}` acquired while guard `{}` (acquired {}:{}) is \
                             still held — held-while-acquiring pair through `{}`",
                            lg.lock_name, m.path, g.line, tf.name
                        ),
                        chain_from(graph, &parent, root, id),
                        out,
                    );
                }
            }
        }
        for call in &tf.calls {
            if let Some(kind) = blocking_at(graph, id.0, id.1, call) {
                emit(
                    &tm.path,
                    call.line,
                    format!(
                        "`{}` ({kind}) reached while guard `{}` (acquired {}:{}) is held — \
                         every contender stalls behind this thread",
                        call.callee, lg.lock_name, m.path, g.line
                    ),
                    chain_from(graph, &parent, root, id),
                    out,
                );
                continue;
            }
            if let Resolution::Workspace(targets) = graph.resolve_site(id.0, id.1, call) {
                for t in targets {
                    if t != root && seen.insert(t) {
                        parent.insert(t, id);
                        queue.push_back(t);
                    }
                }
            }
        }
    }
}

/// L14 for one guard: fires when the live range contains an entire loop
/// body of a hot function, with the loop span named.
fn check_one_guard_l14(graph: &Graph<'_>, lg: &LiveGuard<'_>, out: &mut Vec<Diagnostic>) {
    let m = &graph.models[lg.file];
    let f = &m.fns[lg.fnidx];
    if !f.hot {
        return;
    }
    let g = lg.region;
    for lp in &f.loops {
        if lp.span.is_empty() || lp.span.start < g.span.start || lp.span.end > g.span.end {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::NoGuardAcrossHotLoop,
            severity: Rule::NoGuardAcrossHotLoop.severity(),
            path: m.path.clone(),
            line: g.line,
            message: format!(
                "guard `{}` is held across the entire hot loop at lines {}-{} of `{}` — \
                 the parallel region is serialized for every iteration",
                lg.lock_name, lp.line, lp.end_line, f.name
            ),
            suggestion: "acquire the lock inside the loop for the shortest window, or take \
                         a snapshot/clone of the shared state before entering the loop",
            chain: Vec::new(),
            origin: None,
            region: Some(RegionSpan {
                label: format!("hot loop spanned by guard `{}`", lg.lock_name),
                path: m.path.clone(),
                start_line: lp.line,
                end_line: lp.end_line,
            }),
        });
        // One finding per guard: the outermost spanned loop names the span.
        break;
    }
}

/// One chain frame for a function.
fn frame(graph: &Graph<'_>, id: FnId) -> ChainFrame {
    let m = &graph.models[id.0];
    let f = &m.fns[id.1];
    ChainFrame {
        function: f.name.clone(),
        path: m.path.clone(),
        line: f.line,
    }
}

/// The root→…→sink chain from BFS parent pointers.
fn chain_from(
    graph: &Graph<'_>,
    parent: &BTreeMap<FnId, FnId>,
    root: FnId,
    sink: FnId,
) -> Vec<ChainFrame> {
    let mut frames = vec![frame(graph, sink)];
    let mut cur = sink;
    while cur != root {
        match parent.get(&cur) {
            Some(&p) => {
                frames.push(frame(graph, p));
                cur = p;
            }
            None => break,
        }
    }
    frames.reverse();
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_code_mask};
    use crate::parser;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = test_code_mask(&lexed.tokens);
                parser::build(path, &lexed, &mask)
            })
            .collect();
        let graph = Graph::build(&models);
        let mut out = Vec::new();
        check_guards(&graph, &mut out);
        out
    }

    #[test]
    fn l13_fires_on_sleep_under_let_bound_guard() {
        let src = "struct S { q: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let g = self.q.lock().unwrap_or_default();\n\
                   std::thread::sleep(d);\n\
                   }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, Rule::NoBlockingUnderLock);
        assert_eq!(out[0].line, 5);
        let region = out[0].region.as_ref().unwrap();
        assert_eq!(region.start_line, 4);
        assert!(out[0].origin.is_some());
    }

    #[test]
    fn l13_respects_early_drop() {
        let src = "struct S { q: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let g = self.q.lock().unwrap_or_default();\n\
                   drop(g);\n\
                   std::thread::sleep(d);\n\
                   }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l13_fires_on_match_temporary_guard() {
        let src = "struct S { q: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self, rx: &Receiver<u32>) {\n\
                   match self.q.lock() {\n\
                   Ok(g) => { rx.recv(); }\n\
                   Err(_) => {}\n\
                   }\n\
                   }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("channel receive"));
    }

    #[test]
    fn l13_walks_into_callees_and_reports_the_chain() {
        let src = "struct S { q: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let g = self.q.lock().unwrap_or_default();\n\
                   self.slow();\n\
                   }\n\
                   fn slow(&self) { std::thread::sleep(d); }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 7);
        let names: Vec<&str> = out[0].chain.iter().map(|c| c.function.as_str()).collect();
        assert_eq!(names, vec!["f", "slow"]);
    }

    #[test]
    fn l13_flags_nested_lock_but_not_sequential_locks() {
        let nested = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                      impl S {\n\
                      fn f(&self) {\n\
                      let ga = self.a.lock().unwrap_or_default();\n\
                      let gb = self.b.lock().unwrap_or_default();\n\
                      }\n\
                      }";
        let out = diags(&[("crates/serve/src/x.rs", nested)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("held-while-acquiring"));

        // Guard dropped before the second acquisition: L8's false-negative
        // class, correctly quiet here.
        let sequential = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                          impl S {\n\
                          fn f(&self) {\n\
                          let ga = self.a.lock().unwrap_or_default();\n\
                          drop(ga);\n\
                          let gb = self.b.lock().unwrap_or_default();\n\
                          }\n\
                          }";
        let out = diags(&[("crates/serve/src/x.rs", sequential)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l13_ignores_condvar_wait_and_reader_homonyms() {
        let src = "struct S { q: Mutex<u32>, cv: Condvar }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let g = self.q.lock().unwrap_or_default();\n\
                   let g = self.cv.wait(g).unwrap_or_default();\n\
                   }\n\
                   fn parse(&self, r: &mut ByteReader) { r.read(); stream.read(); }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l14_fires_when_guard_spans_a_hot_loop() {
        let src = "struct S { q: Mutex<Vec<u32>> }\n\
                   impl S {\n\
                   // ultra-lint: hot\n\
                   fn f(&self, v: &[u32]) {\n\
                   let g = self.q.lock().unwrap_or_default();\n\
                   for x in v { observe(*x); }\n\
                   }\n\
                   fn observe(x: u32) {}\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        let l14: Vec<&Diagnostic> = out
            .iter()
            .filter(|d| d.rule == Rule::NoGuardAcrossHotLoop)
            .collect();
        assert_eq!(l14.len(), 1, "{out:?}");
        assert_eq!(l14[0].line, 5);
        assert!(l14[0].region.is_some());
    }

    #[test]
    fn l14_is_quiet_when_guard_lives_inside_the_loop() {
        let src = "struct S { q: Mutex<Vec<u32>> }\n\
                   impl S {\n\
                   // ultra-lint: hot\n\
                   fn f(&self, v: &[u32]) {\n\
                   for x in v { let g = self.q.lock().unwrap_or_default(); }\n\
                   }\n\
                   }";
        let out = diags(&[("crates/serve/src/x.rs", src)]);
        assert!(
            out.iter().all(|d| d.rule != Rule::NoGuardAcrossHotLoop),
            "{out:?}"
        );
    }
}

//! A small Rust lexer, sufficient for token-level lint rules.
//!
//! The build environment has no crates.io access, so `syn` is unavailable;
//! instead the analyzer works on a token stream with line numbers. The lexer
//! handles everything that would make naive text matching lie: string
//! literals (plain, raw, byte), char literals vs. lifetimes, nested block
//! comments, and line comments. Comments are not tokens, but
//! `ultra-lint: allow(rule)` directives inside them are collected so rules
//! can honour inline waivers.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `:`, `(`, …).
    Punct(char),
    /// String/char/byte literal (contents dropped).
    Literal,
    /// Integer literal (no decimal point).
    Number,
    /// Float literal (contains a decimal point) — L12 uses the distinction
    /// to recognise float accumulator initialisers like `0.0`.
    Float,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// A token plus its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// An `ultra-lint: allow(...)` directive found in a comment.
#[derive(Clone, Debug)]
pub struct InlineAllow {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Rule names listed in the directive.
    pub rules: Vec<String>,
}

/// Lexer output: tokens plus inline allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub tokens: Vec<Tok>,
    /// Inline waivers, in source order.
    pub allows: Vec<InlineAllow>,
    /// Lines carrying an `ultra-lint: hot` marker. The marker attaches to
    /// the next function definition at or below it (L9's scope).
    pub hots: Vec<u32>,
}

/// Lexes Rust source. Unterminated literals or comments simply end the
/// affected token at end-of-file — good enough for analysis of code that
/// `rustc` already accepts.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Helper: number of newlines inside a consumed span.
    let count_lines = |from: usize, to: usize| -> u32 {
        bytes[from..to].iter().filter(|&&b| b == b'\n').count() as u32
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                scan_directive(&src[i..end], line, &mut out);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_directive(&src[start..i], start_line, &mut out);
                line += count_lines(start, i.min(bytes.len()));
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                line += count_lines(start, i.min(bytes.len()));
            }
            // Byte-string literal `b"..."` — same escape rules as a plain
            // string, with the `b` prefix consumed so it does not surface as
            // a stray identifier.
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let start = i;
                i += 2;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                line += count_lines(start, i.min(bytes.len()));
            }
            // Byte-char literal `b'x'`: skip the prefix and let the `'` arm
            // classify what follows (it is never a lifetime).
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i += 1;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let start = i;
                // Skip `r`/`br`/`rb` prefix.
                while matches!(bytes.get(i), Some(b'r' | b'b')) {
                    i += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&closer) {
                    i += 1;
                }
                i = (i + closer.len()).min(bytes.len());
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                line += count_lines(start, i);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(c), next) if is_ident_start(*c) => next != Some(&b'\''),
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    while matches!(bytes.get(i), Some(&c) if is_ident_continue(c)) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                    });
                } else {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while matches!(bytes.get(i), Some(&c) if is_ident_continue(c)) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (incl. hex/underscores/floats); precise shape is
                // irrelevant beyond int-vs-float, so consume greedily.
                let mut saw_dot = false;
                while matches!(bytes.get(i), Some(&c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
                {
                    // Stop a method call on a literal (`1.max(2)`) from
                    // swallowing the ident: only consume `.` when followed
                    // by a digit.
                    if bytes[i] == b'.' {
                        if !matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                        saw_dot = true;
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: if saw_dot {
                        TokKind::Float
                    } else {
                        TokKind::Number
                    },
                    line,
                });
            }
            c => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Raw-string starts: `r"`, `r#`, `br"`, `br#`, `rb"` (future-proof).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    for prefix in [&b"r"[..], &b"br"[..], &b"rb"[..]] {
        if rest.starts_with(prefix) {
            match rest.get(prefix.len()) {
                Some(b'"') | Some(b'#') => return true,
                _ => {}
            }
        }
    }
    false
}

/// Extracts `ultra-lint: allow(rule-a, rule-b)` or `ultra-lint: hot` from a
/// comment's text.
fn scan_directive(comment: &str, line: u32, out: &mut Lexed) {
    // Doc comments *describe* directives; only plain comments *are*
    // directives.
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| comment.starts_with(p))
    {
        return;
    }
    let Some(pos) = comment.find("ultra-lint:") else {
        return;
    };
    let rest = &comment[pos + "ultra-lint:".len()..];
    let rest = rest.trim_start();
    if rest == "hot" || rest.starts_with("hot ") || rest.starts_with("hot:") {
        out.hots.push(line);
        return;
    }
    let Some(args) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = args.find(')') else {
        return;
    };
    let rules: Vec<String> = args[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.is_empty() {
        out.allows.push(InlineAllow { line, rules });
    }
}

/// Marks tokens that belong to test-only code: the bodies of items annotated
/// `#[cfg(test)]` or `#[test]` (including whole `mod tests` blocks).
///
/// Returns one flag per token. The scan finds each test attribute, then
/// marks everything from the attribute through the end of the next balanced
/// `{...}` block.
pub fn test_code_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_len) = test_attribute_at(tokens, i) {
            // Find the opening brace of the annotated item, skipping over
            // any further attributes and the item header.
            let mut j = i + attr_len;
            let mut depth = 0i32;
            let mut opened = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokKind::Punct('{') => {
                        depth += 1;
                        opened = true;
                    }
                    TokKind::Punct('}') => {
                        depth -= 1;
                    }
                    // An item-level `;` before any `{` means a body-less item
                    // (e.g. `#[cfg(test)] use …;`): stop at the semicolon.
                    TokKind::Punct(';') if !opened => {
                        break;
                    }
                    _ => {}
                }
                j += 1;
                if opened && depth == 0 {
                    break;
                }
            }
            for flag in mask.iter_mut().take(j.min(tokens.len())).skip(i) {
                *flag = true;
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i..]` starts a `#[test]`, `#[cfg(test)]`, or `#[cfg(any(test,…))]`
/// attribute, returns the attribute's token length.
fn test_attribute_at(tokens: &[Tok], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    // Collect the bracketed attribute tokens.
    let mut j = i + 2;
    let mut depth = 1i32;
    let mut body: Vec<&Tok> = Vec::new();
    while j < tokens.len() && depth > 0 {
        match &tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => depth -= 1,
            _ => {}
        }
        if depth > 0 {
            body.push(&tokens[j]);
        }
        j += 1;
    }
    let is_test = match body.first().and_then(|t| t.ident()) {
        Some("test") => true,
        Some("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    if is_test {
        Some(j - i)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let s = "thread_rng inside a string";
            // thread_rng inside a line comment
            /* thread_rng inside /* a nested */ block comment */
            let r = r#"thread_rng inside a raw string"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"x\ny\";\nafter();";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("token");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn method_calls_on_numbers_are_not_swallowed() {
        let ids = idents("let x = 1.max(2);");
        assert!(ids.contains(&"max".to_string()));
    }

    #[test]
    fn directives_are_collected() {
        let src = "// ultra-lint: allow(no-panic-in-lib, no-unseeded-rng) reason\nfoo();";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(
            lexed.allows[0].rules,
            vec!["no-panic-in-lib", "no-unseeded-rng"]
        );
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn lib2() {}";
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        let pos_of = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!mask[pos_of("x")]);
        assert!(mask[pos_of("y")]);
        assert!(!mask[pos_of("lib2")]);
    }

    #[test]
    fn hot_markers_are_collected_with_their_lines() {
        let src = "fn cold() {}\n// ultra-lint: hot\nfn kernel() {}\n// ultra-lint: hot (blocked scoring)\nfn kernel2() {}";
        let lexed = lex(src);
        assert_eq!(lexed.hots, vec![2, 4]);
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn hot_marker_requires_the_exact_word() {
        // `hotel` or `allow(...)` must not register as a hot marker.
        let lexed = lex("// ultra-lint: hotel\n// ultra-lint: allow(no-panic-in-lib) r\nfn f() {}");
        assert!(lexed.hots.is_empty());
        assert_eq!(lexed.allows.len(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_span_lines_and_hide_contents() {
        let src =
            "let s = r##\"first \"# not the end\nthread_rng() // not a comment\n\"##;\nafter();";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(ids, vec!["let", "s", "after"], "raw contents invisible");
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4, "newlines inside the raw string counted");
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still_comment() */\nreal();\n/* /* /* deep */ */ also_comment() */\nreal2();";
        let ids = idents(src);
        assert_eq!(ids, vec!["real", "real2"]);
        let lexed = lex(src);
        let real2 = lexed.tokens.iter().find(|t| t.is_ident("real2")).unwrap();
        assert_eq!(real2.line, 4, "multi-line nested comments keep line counts");
    }

    #[test]
    fn lifetimes_escaped_chars_and_quote_chars_disambiguate() {
        // 'a' is a char; '\n' is a char; 'a (no closing quote) is a lifetime;
        // '_ in `&'_ str` is a lifetime too.
        let src = "fn f<'long_name>(x: &'_ str) { let c = 'a'; let n = '\\n'; let q = '\\''; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2, "'long_name and '_");
        assert_eq!(literals, 3, "'a', '\\n', '\\''");
        // The lexer must not lose the identifiers that follow the literals.
        assert!(lexed.tokens.iter().any(|t| t.is_ident("q")));
    }

    #[test]
    fn test_mask_ends_exactly_at_the_closing_brace() {
        let src = "#[cfg(test)]\nmod tests { fn t() { inner(); } }\nfn lib_after() { outer(); }";
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        let pos_of = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(mask[pos_of("inner")]);
        assert!(!mask[pos_of("lib_after")], "mask stops at the balanced }}");
        assert!(!mask[pos_of("outer")]);
    }

    #[test]
    fn test_mask_handles_bodyless_cfg_test_items() {
        // `#[cfg(test)] use …;` has no braces: the mask must stop at the `;`
        // instead of swallowing the next item's body.
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        let pos_of = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(mask[pos_of("HashMap")]);
        assert!(!mask[pos_of("unwrap")], "the following fn is live code");
    }

    #[test]
    fn byte_strings_hide_contents_and_emit_no_stray_ident() {
        let src = "let magic = b\"thread_rng bytes\";\nlet raw = br#\"thread_rng raw \" bytes\"#;\nlet c = b'x';\nafter();";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(
            ids,
            vec!["let", "magic", "let", "raw", "let", "c", "after"],
            "no `b` prefix ident, no literal contents"
        );
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(literals, 3, "b\"..\", br#\"..\"#, b'x'");
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn byte_string_escapes_and_multiline_contents_are_consumed() {
        let src = "let a = b\"quote \\\" inside\nsecond line\";\nnext();";
        let lexed = lex(src);
        let next = lexed.tokens.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3, "newline inside the byte string counted");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("inside")));
    }

    #[test]
    fn unterminated_byte_string_ends_at_eof() {
        let lexed = lex("let a = b\"never closed");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn floats_and_integers_are_distinguished() {
        let lexed = lex("let a = 0.0; let b = 42; let c = 1_000.5f32; let d = 0x1f;");
        let kinds: Vec<&TokKind> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Number | TokKind::Float))
            .map(|t| &t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                &TokKind::Float,
                &TokKind::Number,
                &TokKind::Float,
                &TokKind::Number
            ]
        );
    }

    #[test]
    fn test_mask_covers_test_fn_only() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn lib() { b.unwrap(); }";
        let lexed = lex(src);
        let mask = test_code_mask(&lexed.tokens);
        let pos_of = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(mask[pos_of("a")]);
        assert!(!mask[pos_of("b")]);
    }
}
